// bench_serving: load generator for the online serving tier.
//
// Default mode builds a synthetic taxonomy, compiles it into a
// ServingIndex, and drives ServingService::Handle directly (no kernel,
// no sockets) so the numbers isolate the service layer: dictionary
// lookup, JSON rendering, and the response cache. Reports QPS and
// p50/p90/p95/p99/p999 latency per endpoint, plus an identity block
// (endpoint set, error counts, index version) that bench/perf_diff.py
// gates on in CI.
//
// --socket switches to an open-loop harness against the real HTTP
// server: requests are scheduled at a fixed arrival rate and each
// latency is measured from the request's *intended* send time, so a
// stalled server inflates the tail instead of silently slowing the
// load generator down (the coordinated-omission trap of closed loops).
//
//   bench_serving [--entities N --threads T --requests R]
//                 [--json_out BENCH_serving.json]
//   bench_serving --socket --rate 2000 --duration 5 [--connections 4]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/http_server.h"
#include "serve/service.h"
#include "serve/serving_index.h"
#include "util/rcu.h"

namespace {

using namespace shoal;

struct EndpointResult {
  std::string name;
  size_t requests = 0;
  size_t errors = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

// Percent-encodes a query value for use in a socket request target
// (in-process requests skip the wire format and do not need this).
std::string UrlEncode(const std::string& text) {
  std::string out;
  for (unsigned char c : text) {
    const bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out += util::StringPrintf("%%%02X", c);
    }
  }
  return out;
}

double Percentile(std::vector<double>& sorted_latencies, double p) {
  if (sorted_latencies.empty()) return 0.0;
  const size_t n = sorted_latencies.size();
  size_t rank = static_cast<size_t>(p * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return sorted_latencies[rank];
}

// Runs `requests` requests round-robin over `targets` across `threads`
// workers against one shared service (mirroring concurrent HTTP
// traffic), then aggregates QPS and latency percentiles.
EndpointResult DriveEndpoint(serve::ServingService& service,
                             const std::string& name,
                             const std::vector<serve::HttpRequest>& targets,
                             size_t requests, size_t threads) {
  EndpointResult result;
  result.name = name;
  result.requests = requests;

  // Warm pass: touches every distinct target once (fills the cache the
  // way steady-state production traffic would have).
  size_t warm_errors = 0;
  for (const auto& request : targets) {
    if (service.Handle(request).status >= 400) ++warm_errors;
  }
  result.errors += warm_errors;

  std::vector<std::vector<double>> latencies(threads);
  std::atomic<size_t> errors{0};
  util::Stopwatch wall;
  std::vector<std::thread> workers;
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      auto& local = latencies[w];
      local.reserve(requests / threads + 1);
      // Deterministic per-worker slice of the request stream.
      for (size_t i = w; i < requests; i += threads) {
        const auto& request = targets[i % targets.size()];
        util::Stopwatch timer;
        const int status = service.Handle(request).status;
        local.push_back(timer.ElapsedSeconds() * 1e6);
        if (status >= 400) errors.fetch_add(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (auto& local : latencies) {
    all.insert(all.end(), local.begin(), local.end());
  }
  std::sort(all.begin(), all.end());
  result.errors += errors.load();
  result.qps = seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  result.p50_us = Percentile(all, 0.50);
  result.p90_us = Percentile(all, 0.90);
  result.p95_us = Percentile(all, 0.95);
  result.p99_us = Percentile(all, 0.99);
  result.p999_us = Percentile(all, 0.999);
  return result;
}

// Minimal keep-alive HTTP/1.1 GET client for the open-loop harness: one
// persistent connection per load-generator worker, reconnecting if the
// server drops it. Returns the HTTP status, or -1 on transport errors.
class KeepAliveClient {
 public:
  KeepAliveClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}
  ~KeepAliveClient() { Close(); }

  int Get(const std::string& target) {
    if (fd_ < 0 && !Connect()) return -1;
    const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " +
                                host_ + "\r\n\r\n";
    if (!SendAll(request)) {
      // The server may have closed an idle keep-alive connection; one
      // reconnect attempt keeps the stream going.
      Close();
      if (!Connect() || !SendAll(request)) return -1;
    }
    return ReadResponse();
  }

 private:
  bool Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      Close();
      return false;
    }
    buffer_.clear();
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool SendAll(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool Fill() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  // Parses one response off the stream, leaving any pipelined bytes in
  // the buffer for the next call.
  int ReadResponse() {
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) {
        Close();
        return -1;
      }
    }
    const std::string_view head(buffer_.data(), header_end);
    int status = -1;
    const size_t sp = head.find(' ');
    if (head.compare(0, 5, "HTTP/") == 0 && sp != std::string_view::npos) {
      status = 0;
      for (size_t i = sp + 1;
           i < head.size() && head[i] >= '0' && head[i] <= '9'; ++i) {
        status = status * 10 + (head[i] - '0');
      }
    }
    size_t content_length = 0;
    size_t pos = 0;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string_view::npos) eol = head.size();
      std::string_view line = head.substr(pos, eol - pos);
      pos = eol + 2;
      constexpr std::string_view kPrefix = "content-length:";
      if (line.size() > kPrefix.size()) {
        bool match = true;
        for (size_t i = 0; i < kPrefix.size(); ++i) {
          char c = line[i];
          if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
          if (c != kPrefix[i]) {
            match = false;
            break;
          }
        }
        if (match) {
          for (char c : line.substr(kPrefix.size())) {
            if (c >= '0' && c <= '9') {
              content_length = content_length * 10 +
                               static_cast<size_t>(c - '0');
            }
          }
        }
      }
    }
    const size_t total = header_end + 4 + content_length;
    while (buffer_.size() < total) {
      if (!Fill()) {
        Close();
        return -1;
      }
    }
    buffer_.erase(0, total);
    if (status < 100 || status > 599) {
      Close();
      return -1;
    }
    return status;
  }

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::string buffer_;
};

struct OpenLoopResult {
  double rate_per_sec = 0.0;
  double duration_sec = 0.0;
  size_t connections = 0;
  size_t requests = 0;
  size_t errors = 0;
  double achieved_rps = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

// Open-loop run: request i has intended send time start + i/rate on a
// shared schedule; workers claim slots with an atomic counter, sleep
// until the slot's time, fire over their keep-alive connection, and
// measure latency from the *intended* send time. A server stall
// therefore charges queueing delay to every request scheduled during
// the stall — the coordinated-omission-safe definition of latency.
OpenLoopResult DriveOpenLoop(const std::string& host, uint16_t port,
                             const std::vector<std::string>& targets,
                             double rate, double duration_sec,
                             size_t connections) {
  OpenLoopResult result;
  result.rate_per_sec = rate;
  result.duration_sec = duration_sec;
  result.connections = connections;
  const size_t total = static_cast<size_t>(rate * duration_sec);
  result.requests = total;

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now() + std::chrono::milliseconds(10);
  const double interval_ns = 1e9 / rate;
  std::atomic<size_t> next{0};
  std::atomic<size_t> errors{0};
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> workers;
  for (size_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      KeepAliveClient client(host, port);
      auto& local = latencies[w];
      local.reserve(total / connections + 1);
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= total) break;
        const auto intended =
            start + std::chrono::nanoseconds(
                        static_cast<int64_t>(interval_ns *
                                             static_cast<double>(i)));
        std::this_thread::sleep_until(intended);
        const int status = client.Get(targets[i % targets.size()]);
        const auto done = Clock::now();
        if (status < 0 || status >= 400) errors.fetch_add(1);
        local.push_back(
            std::chrono::duration<double, std::micro>(done - intended)
                .count());
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (auto& local : latencies) {
    all.insert(all.end(), local.begin(), local.end());
  }
  std::sort(all.begin(), all.end());
  result.errors = errors.load();
  result.achieved_rps =
      wall > 0 ? static_cast<double>(all.size()) / wall : 0.0;
  result.p50_us = Percentile(all, 0.50);
  result.p90_us = Percentile(all, 0.90);
  result.p99_us = Percentile(all, 0.99);
  result.p999_us = Percentile(all, 0.999);
  result.max_us = all.empty() ? 0.0 : all.back();
  return result;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 1500, "synthetic dataset size");
  flags.AddInt64("seed", 2019, "dataset seed");
  flags.AddInt64("threads", 1, "concurrent request workers");
  flags.AddInt64("requests", 50000, "timed requests per endpoint");
  flags.AddInt64("cache-entries", 4096, "response cache entries (0 = off)");
  flags.AddBool("socket", false,
                "also run the open-loop socket harness against a real "
                "HttpServer on an ephemeral port");
  flags.AddString("rate", "1000",
                  "comma-separated open-loop arrival rates in requests/sec "
                  "(--socket); the last entry is the headline open_loop row");
  flags.AddDouble("duration", 3.0,
                  "open-loop run length in seconds (--socket)");
  flags.AddInt64("connections", 4,
                 "open-loop keep-alive connections (--socket)");
  flags.AddString("json_out", "",
                  "append machine-readable results to this JSON file, "
                  "e.g. BENCH_serving.json");
  bench::AddObsFlags(flags);
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;
  bench::InitObsFromFlags(flags);

  const size_t entities = static_cast<size_t>(flags.GetInt64("entities"));
  const size_t threads =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt64("threads")));
  const size_t requests = static_cast<size_t>(flags.GetInt64("requests"));

  bench::PrintHeader(
      "Serving throughput (in-process, cache warm)",
      "online tier sustains >= 10k QPS on /v1/query on one core");

  auto workload = bench::BuildWorkload(
      bench::ScaledDataset(entities, flags.GetInt64("seed")),
      core::ShoalOptions());
  const core::ShoalInput input = workload.bundle.View();
  core::DescriberInput describe_input;
  describe_input.taxonomy = &workload.model.taxonomy();
  describe_input.query_item_graph = input.query_item_graph;
  describe_input.query_words = input.query_words;
  describe_input.query_texts = input.query_texts;
  describe_input.entity_title_words = input.entity_title_words;
  util::Stopwatch compile_timer;
  auto compiled = serve::CompileServingIndex(
      workload.model.taxonomy(), describe_input, core::DescriberOptions(),
      input.entity_categories, serve::CompileOptions());
  SHOAL_CHECK(compiled.ok()) << compiled.status().ToString();
  const double compile_seconds = compile_timer.ElapsedSeconds();
  auto built = compiled->Build();
  SHOAL_CHECK(built.ok()) << built.status().ToString();
  auto index =
      std::make_shared<const serve::ServingIndex>(std::move(built).value());
  std::printf("index: %zu topics, %zu entities, %zu queries "
              "(build %.2fs, compile %.3fs)\n",
              index->num_topics(), index->num_entities(),
              index->num_queries(), workload.build_seconds, compile_seconds);

  serve::ServiceOptions service_options;
  service_options.cache_entries =
      static_cast<size_t>(flags.GetInt64("cache-entries"));
  serve::ServingService service(index, service_options);

  // Deterministic target mixes. Queries cycle through the dictionary's
  // raw texts — every one resolves, as production cache-warm traffic
  // would.
  std::vector<serve::HttpRequest> query_targets;
  for (size_t q = 0; q < index->num_queries(); ++q) {
    query_targets.push_back(serve::ParseRequestTarget(
        "GET",
        "/v1/query?q=" + std::string(index->query_text(q)) + "&k=5"));
  }
  if (query_targets.empty()) {
    query_targets.push_back(
        serve::ParseRequestTarget("GET", "/v1/query?q=empty"));
  }
  std::vector<serve::HttpRequest> topic_targets;
  for (size_t t = 0; t < index->num_topics(); ++t) {
    topic_targets.push_back(serve::ParseRequestTarget(
        "GET", "/v1/topic/" + std::to_string(t)));
  }
  std::vector<serve::HttpRequest> item_targets;
  for (size_t e = 0; e < index->num_entities(); ++e) {
    item_targets.push_back(serve::ParseRequestTarget(
        "GET", "/v1/item/" + std::to_string(e)));
  }
  std::vector<serve::HttpRequest> health_targets;
  health_targets.push_back(serve::ParseRequestTarget("GET", "/healthz"));

  std::vector<EndpointResult> results;
  results.push_back(DriveEndpoint(service, "/v1/query", query_targets,
                                  requests, threads));
  results.push_back(DriveEndpoint(service, "/v1/topic", topic_targets,
                                  requests, threads));
  results.push_back(
      DriveEndpoint(service, "/v1/item", item_targets, requests, threads));
  results.push_back(DriveEndpoint(service, "/healthz", health_targets,
                                  requests, threads));

  std::printf("%-10s %9s %7s %12s %9s %9s %9s %9s %9s\n", "endpoint",
              "requests", "errors", "qps", "p50_us", "p90_us", "p95_us",
              "p99_us", "p999_us");
  for (const auto& r : results) {
    std::printf("%-10s %9zu %7zu %12.0f %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                r.name.c_str(), r.requests, r.errors, r.qps, r.p50_us,
                r.p90_us, r.p95_us, r.p99_us, r.p999_us);
  }

  // Install-time bench: how long until a freshly published file is
  // servable. v1 decodes and rebuilds the whole index (O(index size));
  // v2 copy validates and memcpys the image; v2 mmap binds the mapping
  // and validates — with the CRC off this is O(1) in index size, the
  // swap cost a production publisher pays.
  struct InstallResult {
    const char* name;
    double micros;
  };
  std::vector<InstallResult> installs;
  size_t index_file_bytes = 0;
  {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        util::StringPrintf("shoal_bench_install_%d",
                           static_cast<int>(::getpid()));
    std::error_code ec;
    fs::create_directories(dir, ec);
    SHOAL_CHECK(!ec) << ec.message();
    const std::string v1_path = (dir / "v1.idx").string();
    const std::string v2_path = (dir / "v2.idx").string();
    SHOAL_CHECK(serve::WriteServingIndexFileV1(v1_path, *compiled).ok());
    SHOAL_CHECK(serve::WriteServingIndexFile(v2_path, *compiled).ok());
    index_file_bytes = static_cast<size_t>(fs::file_size(v2_path, ec));
    auto time_load = [](const std::string& path,
                        serve::LoadOptions options) {
      double best = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        util::Stopwatch timer;
        auto loaded = serve::ReadServingIndexFile(path, options);
        const double micros = timer.ElapsedSeconds() * 1e6;
        SHOAL_CHECK(loaded.ok()) << loaded.status().ToString();
        SHOAL_CHECK(loaded->version() > 0);
        best = std::min(best, micros);
      }
      return best;
    };
    serve::LoadOptions copy_options;
    copy_options.use_mmap = false;
    serve::LoadOptions mmap_nocrc;
    mmap_nocrc.verify_crc = false;
    installs.push_back({"install/v1_decode", time_load(v1_path, {})});
    installs.push_back({"install/v2_copy", time_load(v2_path, copy_options)});
    installs.push_back({"install/v2_mmap_crc", time_load(v2_path, {})});
    installs.push_back(
        {"install/v2_mmap_nocrc", time_load(v2_path, mmap_nocrc)});
    fs::remove_all(dir, ec);
  }
  std::printf("install (best of 5, %zu-byte v2 image):\n", index_file_bytes);
  for (const auto& r : installs) {
    std::printf("  %-24s %10.1f us\n", r.name, r.micros);
  }

  // Index-acquisition microbench: the mutex-guarded shared_ptr copy the
  // service used before vs the RCU cell it uses now, at this run's
  // thread count.
  auto drive_acquire = [&](auto&& snapshot) {
    constexpr size_t kOps = 1 << 20;
    std::atomic<uint64_t> sink{0};
    std::vector<std::thread> workers;
    util::Stopwatch timer;
    for (size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&] {
        uint64_t local = 0;
        for (size_t i = 0; i < kOps; ++i) local += snapshot()->version();
        sink.fetch_add(local);
      });
    }
    for (auto& worker : workers) worker.join();
    const double seconds = timer.ElapsedSeconds();
    SHOAL_CHECK(sink.load() == kOps * threads);
    return seconds * 1e9 / static_cast<double>(kOps * threads);
  };
  double acquire_mutex_ns = 0.0;
  double acquire_rcu_ns = 0.0;
  {
    std::mutex mu;
    std::shared_ptr<const serve::ServingIndex> guarded = index;
    acquire_mutex_ns = drive_acquire([&] {
      std::lock_guard<std::mutex> lock(mu);
      return guarded;
    });
  }
  {
    util::RcuCell<const serve::ServingIndex> cell(index);
    acquire_rcu_ns = drive_acquire([&] { return cell.Read(); });
  }
  std::printf("acquire: mutex %.1f ns/op, rcu %.1f ns/op (%zu threads)\n",
              acquire_mutex_ns, acquire_rcu_ns, threads);

  // Open-loop passes over real sockets (coordinated-omission-safe
  // tails), one per --rate ladder entry; the last entry is the headline
  // `open_loop` row perf_diff.py gates on.
  std::vector<OpenLoopResult> ladder;
  if (flags.GetBool("socket")) {
    serve::HttpServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.threads =
        std::max<size_t>(2, static_cast<size_t>(
                                flags.GetInt64("connections")));
    serve::HttpServer server(&service, server_options);
    auto started = server.Start();
    SHOAL_CHECK(started.ok()) << started.ToString();

    std::vector<std::string> socket_targets;
    for (size_t q = 0; q < index->num_queries(); ++q) {
      socket_targets.push_back(
          "/v1/query?q=" + UrlEncode(std::string(index->query_text(q))) +
          "&k=5");
    }
    if (socket_targets.empty()) socket_targets.push_back("/healthz");

    const double duration = std::max(0.1, flags.GetDouble("duration"));
    const size_t connections = std::max<size_t>(
        1, static_cast<size_t>(flags.GetInt64("connections")));
    for (const std::string& token :
         util::Split(flags.GetString("rate"), ',')) {
      const std::string trimmed(util::Trim(token));
      if (trimmed.empty()) continue;
      const double rate = std::max(1.0, std::atof(trimmed.c_str()));
      const OpenLoopResult open_loop = DriveOpenLoop(
          server.host(), server.port(), socket_targets, rate, duration,
          connections);
      std::printf(
          "open-loop: rate %.0f/s for %.1fs over %zu conns -> "
          "%zu requests, %zu errors, achieved %.0f rps\n"
          "open-loop: p50 %.1fus p90 %.1fus p99 %.1fus p999 %.1fus "
          "max %.1fus (from intended send time)\n",
          open_loop.rate_per_sec, open_loop.duration_sec,
          open_loop.connections, open_loop.requests, open_loop.errors,
          open_loop.achieved_rps, open_loop.p50_us, open_loop.p90_us,
          open_loop.p99_us, open_loop.p999_us, open_loop.max_us);
      ladder.push_back(open_loop);
    }
    server.Stop();
  }

  const std::string& json_path = flags.GetString("json_out");
  if (!json_path.empty()) {
    util::JsonValue json = util::JsonValue::Object();
    json.Set("bench", util::JsonValue::Str("bench_serving"));
    json.Set("seed", util::JsonValue::Number(
                         static_cast<double>(flags.GetInt64("seed"))));
    json.Set("entities",
             util::JsonValue::Number(static_cast<double>(entities)));
    json.Set("threads",
             util::JsonValue::Number(static_cast<double>(threads)));
    json.Set("index_version", util::JsonValue::Number(
                                  static_cast<double>(index->version())));
    json.Set("index_queries", util::JsonValue::Number(
                                  static_cast<double>(index->num_queries())));
    util::JsonValue endpoints = util::JsonValue::Array();
    for (const auto& r : results) {
      util::JsonValue row = util::JsonValue::Object();
      row.Set("name", util::JsonValue::Str(r.name));
      row.Set("requests",
              util::JsonValue::Number(static_cast<double>(r.requests)));
      row.Set("errors",
              util::JsonValue::Number(static_cast<double>(r.errors)));
      row.Set("qps", util::JsonValue::Number(r.qps));
      row.Set("p50_us", util::JsonValue::Number(r.p50_us));
      row.Set("p90_us", util::JsonValue::Number(r.p90_us));
      row.Set("p95_us", util::JsonValue::Number(r.p95_us));
      row.Set("p99_us", util::JsonValue::Number(r.p99_us));
      row.Set("p999_us", util::JsonValue::Number(r.p999_us));
      endpoints.Append(std::move(row));
    }
    json.Set("endpoints", std::move(endpoints));
    util::JsonValue install_rows = util::JsonValue::Array();
    for (const auto& r : installs) {
      util::JsonValue row = util::JsonValue::Object();
      row.Set("name", util::JsonValue::Str(r.name));
      row.Set("micros", util::JsonValue::Number(r.micros));
      install_rows.Append(std::move(row));
    }
    json.Set("install", std::move(install_rows));
    json.Set("index_file_bytes", util::JsonValue::Number(
                                     static_cast<double>(index_file_bytes)));
    util::JsonValue acquire = util::JsonValue::Object();
    acquire.Set("threads",
                util::JsonValue::Number(static_cast<double>(threads)));
    acquire.Set("mutex_ns_per_op", util::JsonValue::Number(acquire_mutex_ns));
    acquire.Set("rcu_ns_per_op", util::JsonValue::Number(acquire_rcu_ns));
    json.Set("acquire", std::move(acquire));
    auto open_loop_json = [](const OpenLoopResult& open_loop) {
      util::JsonValue ol = util::JsonValue::Object();
      ol.Set("rate_per_sec", util::JsonValue::Number(open_loop.rate_per_sec));
      ol.Set("duration_sec", util::JsonValue::Number(open_loop.duration_sec));
      ol.Set("connections", util::JsonValue::Number(
                                static_cast<double>(open_loop.connections)));
      ol.Set("requests", util::JsonValue::Number(
                             static_cast<double>(open_loop.requests)));
      ol.Set("errors", util::JsonValue::Number(
                           static_cast<double>(open_loop.errors)));
      ol.Set("achieved_rps", util::JsonValue::Number(open_loop.achieved_rps));
      ol.Set("p50_us", util::JsonValue::Number(open_loop.p50_us));
      ol.Set("p90_us", util::JsonValue::Number(open_loop.p90_us));
      ol.Set("p99_us", util::JsonValue::Number(open_loop.p99_us));
      ol.Set("p999_us", util::JsonValue::Number(open_loop.p999_us));
      ol.Set("max_us", util::JsonValue::Number(open_loop.max_us));
      return ol;
    };
    if (!ladder.empty()) {
      util::JsonValue rungs = util::JsonValue::Array();
      for (const auto& rung : ladder) rungs.Append(open_loop_json(rung));
      json.Set("open_loop_ladder", std::move(rungs));
      json.Set("open_loop", open_loop_json(ladder.back()));
    }
    auto written = util::WriteJsonFile(json_path, json);
    SHOAL_CHECK(written.ok()) << written.ToString();
    std::printf("wrote %s\n", json_path.c_str());
  }
  bench::FinishObs(flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
