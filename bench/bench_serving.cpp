// bench_serving: in-process load generator for the online serving tier.
//
// Builds a synthetic taxonomy, compiles it into a ServingIndex, and
// drives ServingService::Handle directly (no kernel, no sockets) so the
// numbers isolate the service layer: dictionary lookup, JSON rendering,
// and the response cache. Reports QPS and p50/p95/p99 latency per
// endpoint, plus an identity block (endpoint set, error counts, index
// version) that bench/perf_diff.py gates on in CI.
//
//   bench_serving [--entities N --threads T --requests R]
//                 [--json_out BENCH_serving.json]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/service.h"
#include "serve/serving_index.h"

namespace {

using namespace shoal;

struct EndpointResult {
  std::string name;
  size_t requests = 0;
  size_t errors = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

double Percentile(std::vector<double>& sorted_latencies, double p) {
  if (sorted_latencies.empty()) return 0.0;
  const size_t n = sorted_latencies.size();
  size_t rank = static_cast<size_t>(p * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return sorted_latencies[rank];
}

// Runs `requests` requests round-robin over `targets` across `threads`
// workers against one shared service (mirroring concurrent HTTP
// traffic), then aggregates QPS and latency percentiles.
EndpointResult DriveEndpoint(serve::ServingService& service,
                             const std::string& name,
                             const std::vector<serve::HttpRequest>& targets,
                             size_t requests, size_t threads) {
  EndpointResult result;
  result.name = name;
  result.requests = requests;

  // Warm pass: touches every distinct target once (fills the cache the
  // way steady-state production traffic would have).
  size_t warm_errors = 0;
  for (const auto& request : targets) {
    if (service.Handle(request).status >= 400) ++warm_errors;
  }
  result.errors += warm_errors;

  std::vector<std::vector<double>> latencies(threads);
  std::atomic<size_t> errors{0};
  util::Stopwatch wall;
  std::vector<std::thread> workers;
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      auto& local = latencies[w];
      local.reserve(requests / threads + 1);
      // Deterministic per-worker slice of the request stream.
      for (size_t i = w; i < requests; i += threads) {
        const auto& request = targets[i % targets.size()];
        util::Stopwatch timer;
        const int status = service.Handle(request).status;
        local.push_back(timer.ElapsedSeconds() * 1e6);
        if (status >= 400) errors.fetch_add(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (auto& local : latencies) {
    all.insert(all.end(), local.begin(), local.end());
  }
  std::sort(all.begin(), all.end());
  result.errors += errors.load();
  result.qps = seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  result.p50_us = Percentile(all, 0.50);
  result.p95_us = Percentile(all, 0.95);
  result.p99_us = Percentile(all, 0.99);
  return result;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 1500, "synthetic dataset size");
  flags.AddInt64("seed", 2019, "dataset seed");
  flags.AddInt64("threads", 1, "concurrent request workers");
  flags.AddInt64("requests", 50000, "timed requests per endpoint");
  flags.AddInt64("cache-entries", 4096, "response cache entries (0 = off)");
  flags.AddString("json_out", "",
                  "append machine-readable results to this JSON file, "
                  "e.g. BENCH_serving.json");
  bench::AddObsFlags(flags);
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;
  bench::InitObsFromFlags(flags);

  const size_t entities = static_cast<size_t>(flags.GetInt64("entities"));
  const size_t threads =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt64("threads")));
  const size_t requests = static_cast<size_t>(flags.GetInt64("requests"));

  bench::PrintHeader(
      "Serving throughput (in-process, cache warm)",
      "online tier sustains >= 10k QPS on /v1/query on one core");

  auto workload = bench::BuildWorkload(
      bench::ScaledDataset(entities, flags.GetInt64("seed")),
      core::ShoalOptions());
  const core::ShoalInput input = workload.bundle.View();
  core::DescriberInput describe_input;
  describe_input.taxonomy = &workload.model.taxonomy();
  describe_input.query_item_graph = input.query_item_graph;
  describe_input.query_words = input.query_words;
  describe_input.query_texts = input.query_texts;
  describe_input.entity_title_words = input.entity_title_words;
  util::Stopwatch compile_timer;
  auto compiled = serve::CompileServingIndex(
      workload.model.taxonomy(), describe_input, core::DescriberOptions(),
      input.entity_categories, serve::CompileOptions());
  SHOAL_CHECK(compiled.ok()) << compiled.status().ToString();
  const double compile_seconds = compile_timer.ElapsedSeconds();
  auto index =
      std::make_shared<const serve::ServingIndex>(std::move(compiled).value());
  std::printf("index: %zu topics, %zu entities, %zu queries "
              "(build %.2fs, compile %.3fs)\n",
              index->num_topics(), index->num_entities(),
              index->num_queries(), workload.build_seconds, compile_seconds);

  serve::ServiceOptions service_options;
  service_options.cache_entries =
      static_cast<size_t>(flags.GetInt64("cache-entries"));
  serve::ServingService service(index, service_options);

  // Deterministic target mixes. Queries cycle through the dictionary's
  // raw texts — every one resolves, as production cache-warm traffic
  // would.
  std::vector<serve::HttpRequest> query_targets;
  for (size_t q = 0; q < index->num_queries(); ++q) {
    query_targets.push_back(serve::ParseRequestTarget(
        "GET", "/v1/query?q=" + index->query_text[q] + "&k=5"));
  }
  if (query_targets.empty()) {
    query_targets.push_back(
        serve::ParseRequestTarget("GET", "/v1/query?q=empty"));
  }
  std::vector<serve::HttpRequest> topic_targets;
  for (size_t t = 0; t < index->num_topics(); ++t) {
    topic_targets.push_back(serve::ParseRequestTarget(
        "GET", "/v1/topic/" + std::to_string(t)));
  }
  std::vector<serve::HttpRequest> item_targets;
  for (size_t e = 0; e < index->num_entities(); ++e) {
    item_targets.push_back(serve::ParseRequestTarget(
        "GET", "/v1/item/" + std::to_string(e)));
  }
  std::vector<serve::HttpRequest> health_targets;
  health_targets.push_back(serve::ParseRequestTarget("GET", "/healthz"));

  std::vector<EndpointResult> results;
  results.push_back(DriveEndpoint(service, "/v1/query", query_targets,
                                  requests, threads));
  results.push_back(DriveEndpoint(service, "/v1/topic", topic_targets,
                                  requests, threads));
  results.push_back(
      DriveEndpoint(service, "/v1/item", item_targets, requests, threads));
  results.push_back(DriveEndpoint(service, "/healthz", health_targets,
                                  requests, threads));

  std::printf("%-10s %9s %7s %12s %9s %9s %9s\n", "endpoint", "requests",
              "errors", "qps", "p50_us", "p95_us", "p99_us");
  for (const auto& r : results) {
    std::printf("%-10s %9zu %7zu %12.0f %9.2f %9.2f %9.2f\n",
                r.name.c_str(), r.requests, r.errors, r.qps, r.p50_us,
                r.p95_us, r.p99_us);
  }

  const std::string& json_path = flags.GetString("json_out");
  if (!json_path.empty()) {
    util::JsonValue json = util::JsonValue::Object();
    json.Set("bench", util::JsonValue::Str("bench_serving"));
    json.Set("seed", util::JsonValue::Number(
                         static_cast<double>(flags.GetInt64("seed"))));
    json.Set("entities",
             util::JsonValue::Number(static_cast<double>(entities)));
    json.Set("threads",
             util::JsonValue::Number(static_cast<double>(threads)));
    json.Set("index_version", util::JsonValue::Number(
                                  static_cast<double>(index->version)));
    json.Set("index_queries", util::JsonValue::Number(
                                  static_cast<double>(index->num_queries())));
    util::JsonValue endpoints = util::JsonValue::Array();
    for (const auto& r : results) {
      util::JsonValue row = util::JsonValue::Object();
      row.Set("name", util::JsonValue::Str(r.name));
      row.Set("requests",
              util::JsonValue::Number(static_cast<double>(r.requests)));
      row.Set("errors",
              util::JsonValue::Number(static_cast<double>(r.errors)));
      row.Set("qps", util::JsonValue::Number(r.qps));
      row.Set("p50_us", util::JsonValue::Number(r.p50_us));
      row.Set("p95_us", util::JsonValue::Number(r.p95_us));
      row.Set("p99_us", util::JsonValue::Number(r.p99_us));
      endpoints.Append(std::move(row));
    }
    json.Set("endpoints", std::move(endpoints));
    auto written = util::WriteJsonFile(json_path, json);
    SHOAL_CHECK(written.ok()) << written.ToString();
    std::printf("wrote %s\n", json_path.c_str());
  }
  bench::FinishObs(flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
