// E9 (Sec 2.3): topic description matching. r(q,t) = sqrt(pop * con)
// picks the most representative queries per topic. Scores the chosen
// descriptions against the planted ground truth: a description is a hit
// when its query's planted intent matches the topic's majority intent
// (same-root counted separately), and compares against a
// popularity-only ranking to show the concentration term matters.

#include <unordered_map>

#include "bench_common.h"
#include "core/topic_describer.h"
#include "util/flags.h"

namespace {

using namespace shoal;

uint32_t MajorityIntent(const core::Topic& topic,
                        const std::vector<uint32_t>& intents) {
  std::unordered_map<uint32_t, size_t> counts;
  for (uint32_t e : topic.entities) ++counts[intents[e]];
  uint32_t best = 0;
  size_t best_count = 0;
  for (const auto& [intent, count] : counts) {
    if (count > best_count) {
      best = intent;
      best_count = count;
    }
  }
  return best;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 3000, "entity count");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E9 bench_description",
      "topics are tagged with representative queries via r(q,t) = "
      "sqrt(pop(q,t) * con(q,t)) (Sec 2.3)");

  auto workload = bench::BuildWorkload(
      bench::ScaledDataset(
          static_cast<size_t>(flags.GetInt64("entities")),
          static_cast<uint64_t>(flags.GetInt64("seed"))),
      core::ShoalOptions{});
  auto& taxonomy = workload.model.taxonomy();
  auto intents = workload.dataset.EntityIntentLabels();

  // Re-run the describer to get full rankings (the pipeline discarded
  // them) — const_cast-free: build a fresh taxonomy copy.
  core::Taxonomy scored_taxonomy = taxonomy;
  core::DescriberInput input;
  input.taxonomy = &scored_taxonomy;
  input.query_item_graph = &workload.bundle.query_item_graph;
  input.query_words = &workload.bundle.query_words;
  input.query_texts = &workload.bundle.query_texts;
  input.entity_title_words = &workload.bundle.entity_title_words;
  auto rankings = core::TopicDescriber::Describe(scored_taxonomy, input,
                                                 core::DescriberOptions{});
  SHOAL_CHECK(rankings.ok()) << rankings.status().ToString();

  // Score: top-1 by r(q,t) vs top-1 by popularity alone.
  size_t evaluated = 0;
  size_t exact_r = 0;
  size_t same_root_r = 0;
  size_t exact_pop = 0;
  for (uint32_t t : scored_taxonomy.roots()) {
    const auto& ranking = (*rankings)[t];
    if (ranking.empty()) continue;
    ++evaluated;
    uint32_t majority = MajorityIntent(scored_taxonomy.topic(t), intents);

    uint32_t top_r_query = ranking[0].query;
    uint32_t top_r_intent = workload.dataset.queries[top_r_query].intent;
    if (top_r_intent == majority) {
      ++exact_r;
    } else if (workload.dataset.intents.RootOf(top_r_intent) ==
               workload.dataset.intents.RootOf(majority)) {
      ++same_root_r;
    }

    auto by_pop = ranking;
    std::sort(by_pop.begin(), by_pop.end(),
              [](const core::ScoredQuery& a, const core::ScoredQuery& b) {
                return a.popularity > b.popularity;
              });
    if (workload.dataset.queries[by_pop[0].query].intent == majority) {
      ++exact_pop;
    }
  }

  std::printf("root topics evaluated: %zu\n\n", evaluated);
  std::printf("%-28s %-14s %-14s\n", "ranking", "exact_intent",
              "same_scenario");
  std::printf("%-28s %-14.4f %-14.4f\n", "r = sqrt(pop*con)  (paper)",
              static_cast<double>(exact_r) / evaluated,
              static_cast<double>(exact_r + same_root_r) / evaluated);
  std::printf("%-28s %-14.4f %-14s\n", "popularity only (ablation)",
              static_cast<double>(exact_pop) / evaluated, "-");

  // Show a few qualitative examples.
  std::printf("\nsample descriptions (largest roots):\n");
  std::vector<uint32_t> roots = scored_taxonomy.roots();
  std::sort(roots.begin(), roots.end(), [&](uint32_t a, uint32_t b) {
    return scored_taxonomy.topic(a).entities.size() >
           scored_taxonomy.topic(b).entities.size();
  });
  for (size_t i = 0; i < roots.size() && i < 5; ++i) {
    const auto& topic = scored_taxonomy.topic(roots[i]);
    uint32_t majority = MajorityIntent(topic, intents);
    std::printf("  topic #%u (%zu items, planted intent '%s'):\n",
                topic.id, topic.entities.size(),
                workload.dataset.intents.intent(majority).name.c_str());
    for (size_t d = 0; d < topic.description.size() && d < 3; ++d) {
      std::printf("    \"%s\"\n", topic.description[d].c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
