// E6 (Sec 2.4): category correlation mining. Correlation strength is the
// number of root topics in which two categories co-occur (Eq. 5); the
// paper keeps pairs with strength > 10. Sweeps the threshold and scores
// mined pairs against the planted scenario structure.

#include "bench_common.h"
#include "core/category_correlation.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 6000, "entity count");
  flags.AddString("thresholds", "0,1,2,5,10", "min-strength sweep");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E6 bench_correlation",
      "categories co-occurring in the same root topic are correlated; a "
      "correlation exists only if Sc(Ci,Cj) > 10 (Eq. 5)");

  auto workload = bench::BuildWorkload(
      bench::ScaledDataset(
          static_cast<size_t>(flags.GetInt64("entities")),
          static_cast<uint64_t>(flags.GetInt64("seed"))),
      core::ShoalOptions{});
  const auto& taxonomy = workload.model.taxonomy();
  std::printf("taxonomy: %zu roots over %zu leaf categories\n\n",
              taxonomy.roots().size(),
              workload.dataset.ontology.leaves().size());

  // All planted-related pairs, for recall.
  const auto& leaves = workload.dataset.ontology.leaves();
  size_t planted_pairs = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      if (workload.dataset.CategoriesRelated(leaves[i], leaves[j])) {
        ++planted_pairs;
      }
    }
  }

  std::printf("%-12s %-10s %-12s %-10s %-10s\n", "threshold", "pairs",
              "precision", "recall", "max_Sc");
  for (const std::string& threshold_text :
       util::Split(flags.GetString("thresholds"), ',')) {
    uint32_t threshold =
        static_cast<uint32_t>(std::strtoul(threshold_text.c_str(), nullptr, 10));
    core::CategoryCorrelationOptions options;
    options.min_strength = threshold;
    auto correlation = core::CategoryCorrelation::Mine(taxonomy, options);
    size_t true_positive = 0;
    uint32_t max_strength = 0;
    for (const auto& pair : correlation.pairs()) {
      if (workload.dataset.CategoriesRelated(pair.c1, pair.c2)) {
        ++true_positive;
      }
      max_strength = std::max(max_strength, pair.strength);
    }
    double precision =
        correlation.pairs().empty()
            ? 0.0
            : static_cast<double>(true_positive) / correlation.pairs().size();
    double recall = planted_pairs == 0
                        ? 0.0
                        : static_cast<double>(true_positive) /
                              static_cast<double>(planted_pairs);
    std::printf("%-12u %-10zu %-12.4f %-10.4f %-10u\n", threshold,
                correlation.pairs().size(), precision, recall, max_strength);
  }
  std::printf(
      "\nexpected shape: raising the threshold trades recall for precision;\n"
      "the paper's production threshold (10) suits platform-scale topic\n"
      "counts — the right scaled threshold is where precision saturates.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
