// E5 (Sec 3 + Figure 4): online A/B test. Control arm recommends by
// matching ontology-driven categories; treatment matches SHOAL topics.
// The paper reports a +5% CTR boost over 3M users. The simulator runs
// paired sessions against the planted intent model with a position-aware
// click model; sweeps session counts to show convergence of the lift.

#include "baselines/ontology_recommender.h"
#include "baselines/topic_recommender.h"
#include "bench_common.h"
#include "eval/ctr_sim.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 3000, "entity count");
  flags.AddString("sessions", "5000,20000,80000", "session counts");
  flags.AddInt64("slate", 8, "slate size");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader("E5 bench_ctr",
                     "SHOAL topic-matched recommendations boost CTR by 5% "
                     "over ontology-category matching (A/B, 3M users)");

  auto workload = bench::BuildWorkload(
      bench::ScaledDataset(
          static_cast<size_t>(flags.GetInt64("entities")),
          static_cast<uint64_t>(flags.GetInt64("seed"))),
      core::ShoalOptions{});

  baselines::OntologyRecommender control(workload.dataset.ontology,
                                         workload.bundle.entity_categories);
  baselines::TopicRecommender treatment(workload.model.taxonomy(), &control);
  auto intents = workload.dataset.EntityIntentLabels();
  std::vector<uint32_t> intent_roots(workload.dataset.intents.size());
  for (uint32_t i = 0; i < workload.dataset.intents.size(); ++i) {
    intent_roots[i] = workload.dataset.intents.RootOf(i);
  }

  std::printf("%-12s %-14s %-14s %-10s %-8s\n", "sessions", "control_CTR",
              "treatment_CTR", "lift", "z");
  for (const std::string& session_text :
       util::Split(flags.GetString("sessions"), ',')) {
    eval::CtrSimOptions options;
    options.num_sessions = std::strtoull(session_text.c_str(), nullptr, 10);
    options.slate_size = static_cast<size_t>(flags.GetInt64("slate"));
    options.seed = static_cast<uint64_t>(flags.GetInt64("seed")) + 13;
    auto result = eval::RunCtrSimulation(
        control, treatment, intents, workload.bundle.entity_categories,
        intent_roots, options);
    SHOAL_CHECK(result.ok()) << result.status().ToString();
    std::printf("%-12zu %-14.4f %-14.4f %+-9.2f%% %-8.1f\n",
                options.num_sessions, result->control.ctr(),
                result->treatment.ctr(), result->Lift() * 100.0,
                result->ZScore());
  }

  std::printf("\nslate-size sweep at 20000 sessions:\n");
  std::printf("%-8s %-14s %-14s %-10s\n", "slate", "control_CTR",
              "treatment_CTR", "lift");
  for (size_t slate : {4u, 8u, 12u}) {
    eval::CtrSimOptions options;
    options.num_sessions = 20000;
    options.slate_size = slate;
    options.seed = static_cast<uint64_t>(flags.GetInt64("seed")) + 17;
    auto result = eval::RunCtrSimulation(
        control, treatment, intents, workload.bundle.entity_categories,
        intent_roots, options);
    SHOAL_CHECK(result.ok()) << result.status().ToString();
    std::printf("%-8zu %-14.4f %-14.4f %+.2f%%\n", slate,
                result->control.ctr(), result->treatment.ctr(),
                result->Lift() * 100.0);
  }
  std::printf(
      "\nexpected shape: a stable positive single/low-double-digit lift —\n"
      "the treatment's extra intent-matched items win the margin while\n"
      "navigational clicks keep both arms close (paper: +5%%).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
