#ifndef SHOAL_BENCH_BENCH_COMMON_H_
#define SHOAL_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment harness binaries. Each bench binary
// regenerates one table/figure-level claim of the paper (see DESIGN.md's
// experiment index) and prints self-describing rows so the output can be
// pasted into EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <vector>

#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace shoal::bench {

// Observability plumbing shared by the experiment binaries: every bench
// accepts --trace-out / --metrics-out / --log-level so a run can be
// profiled (Perfetto) or its metrics snapshot archived next to the
// printed table.
inline void AddObsFlags(util::FlagParser& flags) {
  flags.AddString("trace-out", "",
                  "write a Chrome trace-event JSON file (Perfetto loadable)");
  flags.AddString("metrics-out", "",
                  "write a metrics-registry JSON snapshot");
  flags.AddString("log-level", "info",
                  "log verbosity: debug, info, warning, error");
}

inline void InitObsFromFlags(const util::FlagParser& flags) {
  util::LogLevel level = util::LogLevel::kInfo;
  SHOAL_CHECK(util::ParseLogLevel(flags.GetString("log-level"), &level))
      << "unknown --log-level '" << flags.GetString("log-level") << "'";
  util::SetLogLevel(level);
  if (!flags.GetString("trace-out").empty()) obs::Tracer::Global().Enable();
  if (!flags.GetString("metrics-out").empty()) {
    obs::MetricsRegistry::Global().Enable();
  }
}

// Writes the artefacts requested via flags at the end of a bench run.
inline void FinishObs(const util::FlagParser& flags) {
  const std::string& trace_path = flags.GetString("trace-out");
  if (!trace_path.empty()) {
    auto status = obs::Tracer::Global().WriteChromeJson(trace_path);
    SHOAL_CHECK(status.ok()) << status.ToString();
    std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
  }
  const std::string& metrics_path = flags.GetString("metrics-out");
  if (!metrics_path.empty()) {
    util::JsonValue out = util::JsonValue::Object();
    out.Set("metrics", obs::MetricsRegistry::Global().ToJson());
    auto status = util::WriteJsonFile(metrics_path, out);
    SHOAL_CHECK(status.ok()) << status.ToString();
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
}

// A generated workload plus the built SHOAL model and ground truth.
struct Workload {
  data::Dataset dataset;
  data::ShoalInputBundle bundle;
  core::ShoalModel model;
  double build_seconds = 0.0;
};

inline data::DatasetOptions ScaledDataset(size_t entities, uint64_t seed) {
  data::DatasetOptions options;
  options.num_entities = entities;
  options.num_queries = std::max<size_t>(200, entities * 3 / 4);
  options.num_clicks = entities * 50;
  // Keep ~60 entities per leaf intent as the dataset grows.
  options.num_root_intents = std::max<size_t>(4, entities / 180);
  options.children_per_root = 3;
  options.num_departments = std::max<size_t>(4, entities / 500);
  options.leaves_per_department = 8;
  options.seed = seed;
  return options;
}

inline Workload BuildWorkload(const data::DatasetOptions& data_options,
                              const core::ShoalOptions& shoal_options) {
  Workload w;
  auto dataset = data::GenerateDataset(data_options);
  SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();
  w.dataset = std::move(dataset).value();
  w.bundle = data::MakeShoalInput(w.dataset);
  util::Stopwatch timer;
  auto model = core::BuildShoal(w.bundle.View(), shoal_options);
  SHOAL_CHECK(model.ok()) << model.status().ToString();
  w.model = std::move(model).value();
  w.build_seconds = timer.ElapsedSeconds();
  return w;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

}  // namespace shoal::bench

#endif  // SHOAL_BENCH_BENCH_COMMON_H_
