#ifndef SHOAL_BENCH_BENCH_COMMON_H_
#define SHOAL_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment harness binaries. Each bench binary
// regenerates one table/figure-level claim of the paper (see DESIGN.md's
// experiment index) and prints self-describing rows so the output can be
// pasted into EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <vector>

#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace shoal::bench {

// A generated workload plus the built SHOAL model and ground truth.
struct Workload {
  data::Dataset dataset;
  data::ShoalInputBundle bundle;
  core::ShoalModel model;
  double build_seconds = 0.0;
};

inline data::DatasetOptions ScaledDataset(size_t entities, uint64_t seed) {
  data::DatasetOptions options;
  options.num_entities = entities;
  options.num_queries = std::max<size_t>(200, entities * 3 / 4);
  options.num_clicks = entities * 50;
  // Keep ~60 entities per leaf intent as the dataset grows.
  options.num_root_intents = std::max<size_t>(4, entities / 180);
  options.children_per_root = 3;
  options.num_departments = std::max<size_t>(4, entities / 500);
  options.leaves_per_department = 8;
  options.seed = seed;
  return options;
}

inline Workload BuildWorkload(const data::DatasetOptions& data_options,
                              const core::ShoalOptions& shoal_options) {
  Workload w;
  auto dataset = data::GenerateDataset(data_options);
  SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();
  w.dataset = std::move(dataset).value();
  w.bundle = data::MakeShoalInput(w.dataset);
  util::Stopwatch timer;
  auto model = core::BuildShoal(w.bundle.View(), shoal_options);
  SHOAL_CHECK(model.ok()) << model.status().ToString();
  w.model = std::move(model).value();
  w.build_seconds = timer.ElapsedSeconds();
  return w;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

}  // namespace shoal::bench

#endif  // SHOAL_BENCH_BENCH_COMMON_H_
