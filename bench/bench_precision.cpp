// E4 (Sec 3): placement precision. "Experts pick 1000 topics and
// randomly select 100 items placed under each topic; the feedback shows
// precision of more than 98%." The oracle-expert simulator reproduces
// that protocol against the planted intents, with a judge-noise sweep
// modelling human disagreement.

#include "bench_common.h"
#include "eval/precision_eval.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 4000, "entity count");
  flags.AddInt64("topics", 1000, "topics sampled by the experts");
  flags.AddInt64("items", 100, "items sampled per topic");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E4 bench_precision",
      "precision of item placement > 98% under expert sampling of 1000 "
      "topics x 100 items");

  auto workload = bench::BuildWorkload(
      bench::ScaledDataset(
          static_cast<size_t>(flags.GetInt64("entities")),
          static_cast<uint64_t>(flags.GetInt64("seed"))),
      core::ShoalOptions{});
  auto intents = workload.dataset.EntityIntentLabels();
  std::printf("taxonomy: %zu topics under %zu roots\n\n",
              workload.model.taxonomy().num_topics(),
              workload.model.taxonomy().roots().size());

  std::printf("%-14s %-16s %-14s %-12s\n", "judge_noise", "topics_sampled",
              "items_judged", "precision");
  for (double noise : {0.0, 0.01, 0.02, 0.05}) {
    eval::PrecisionEvalOptions options;
    options.topics_to_sample = static_cast<size_t>(flags.GetInt64("topics"));
    options.items_per_topic = static_cast<size_t>(flags.GetInt64("items"));
    options.judge_noise = noise;
    options.seed = static_cast<uint64_t>(flags.GetInt64("seed")) + 7;
    auto result = eval::EvaluatePlacementPrecision(workload.model.taxonomy(),
                                                   intents, options);
    SHOAL_CHECK(result.ok()) << result.status().ToString();
    std::printf("%-14.2f %-16zu %-14zu %-12.4f\n", noise,
                result->topics_sampled, result->items_judged,
                result->precision);
  }

  std::printf("\nroot-topics-only protocol (evaluating final clusters):\n");
  {
    eval::PrecisionEvalOptions options;
    options.topics_to_sample = static_cast<size_t>(flags.GetInt64("topics"));
    options.items_per_topic = static_cast<size_t>(flags.GetInt64("items"));
    options.roots_only = true;
    auto result = eval::EvaluatePlacementPrecision(workload.model.taxonomy(),
                                                   intents, options);
    SHOAL_CHECK(result.ok()) << result.status().ToString();
    std::printf("precision = %.4f over %zu roots (%zu items)\n",
                result->precision, result->topics_sampled,
                result->items_judged);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
