#!/usr/bin/env python3
"""Diff two benchmark metrics JSON files (e.g. BENCH_hac.json runs).

Walks both documents, aligns numeric leaves by their JSON path, and
prints old -> new with absolute and relative deltas. Array elements that
carry an identifying key (entities, threads) are aligned by that key
rather than by index, so a run with an extra size row still lines up.

Leaves split into two classes with different CI semantics:

  * identity leaves (rounds, merges, messages, supersteps, edges) —
    counters that are a pure function of the input and the algorithm.
    Any change means the candidate run is computing something different
    from the baseline, which is a hard failure, never machine noise.
  * timing leaves (everything else, *_seconds in particular) — vary
    with runner hardware, so the diff is informational unless an
    explicit --fail_above bound is requested.

A third mode, `--mode messages`, gates the delta-diffusion message
economy across *intentional* protocol changes, where the exact-match
identity gate cannot be used because message counts legitimately moved:
it fails only when a messages_per_merge leaf regresses (grows) by more
than --messages_tolerance percent. Message counts are deterministic, so
any regression is algorithmic, never machine noise.

A fourth mode, `--mode latency`, gates serving-latency coverage: every
quantile leaf (p50_us/p90_us/p99_us/p999_us) present in the baseline
must still be reported by the candidate — a harness change that stops
reporting tail quantiles is a coverage regression even when nothing got
slower. Quantile *values* vary with runner hardware, so they diff
informationally unless --latency_fail_above bounds the allowed growth.

A fifth mode, `--mode recall`, gates the MinHash/LSH candidate
generation of BENCH_lsh.json runs: every lsh_recall leaf present in the
baseline must still be reported by the candidate (coverage), and every
candidate lsh_recall leaf must stay at or above --min_recall. Recall is
deterministic (fixed seeds, fixed hash functions), so a drop below the
floor is an algorithmic regression, never machine noise; the companion
count leaves (lsh_candidate_pairs, exact_edges, lsh_edges, common_edges,
thread_identical) are identity leaves and gate under --mode identity.

A sixth mode, `--mode incremental`, gates the taxonomy daemon's
update-vs-rebuild contract in BENCH_incremental.json runs: every
stability and speedup leaf present in the baseline must still be
reported by the candidate (coverage), every candidate stability leaf —
tier minima and per-cycle values alike — must stay at or above
--min_stability, and every candidate speedup leaf at a size tier of at
least --speedup_min_entities entities must stay at or above
--min_speedup (smaller tiers diff informationally: fixed per-cycle
costs dominate tiny windows, so the paper-scale claim is gated where
it is meaningful). Stability is deterministic (seeded drift workload,
bit-identical topic comparison), so a drop below the floor is an
algorithmic regression; speedup is a wall-clock ratio whose noise is
shared between numerator and denominator, so the floor is set well
below the committed value. The companion counters (delta_entries,
dirty_entities, *_topics, graph_identical, thread_identical) are
identity leaves and gate under --mode identity.

Usage: perf_diff.py OLD.json NEW.json
           [--mode all|identity|timing|messages|latency|recall|incremental]

Exit codes: 0 clean; 1 identity mismatch (modes all/identity) or a
timing regression beyond --fail_above; 2 usage/IO errors (argparse);
3 messages_per_merge regression (mode messages); 4 missing quantile
coverage or a latency regression beyond --latency_fail_above (mode
latency); 5 missing lsh_recall coverage or recall below --min_recall
(mode recall); 6 missing stability/speedup coverage, stability below
--min_stability, or gated speedup below --min_speedup (mode
incremental).
"""

import argparse
import json
import re
import sys

# Keys that identify an array element (checked in order).
_ID_KEYS = ("entities", "threads", "name", "bench", "day")

# Leaves where a change is identity-relevant, not perf-relevant: a
# changed merge count means the run is not comparable at all. For
# serving runs (BENCH_serving.json) the same applies to error counts
# and the served artefact version — a candidate that errors or serves a
# different index version is not a timing data point; and because
# endpoint rows are keyed by "name", a missing endpoint surfaces as a
# missing identity leaf rather than silently shrinking the diff.
# messages_per_merge is a pure ratio of two identity counters, and
# crossover_entities reports which baseline-table size (if any) first
# has parallel at or below sequential — both are part of the committed
# run identity, so drift is a gate failure, not a perf footnote.
_INVARIANT_KEYS = {"rounds", "merges", "messages", "supersteps", "edges",
                   "errors", "index_version", "messages_per_merge",
                   "crossover_entities", "lsh_candidate_pairs",
                   "exact_candidate_pairs", "exact_edges", "lsh_edges",
                   "common_edges", "thread_identical",
                   # bench_incremental daemon-cycle counters: the drift
                   # workload is seeded and every maintenance stage is
                   # deterministic, so these are pure functions of the
                   # committed flags on any machine.
                   "delta_entries", "dirty_entities", "num_topics",
                   "touched_topics", "carried_topics", "untouched_topics",
                   "stable_topics", "graph_identical"}

# Leaves the `messages` mode gates (see module docstring).
_MESSAGE_GATE_KEYS = {"messages_per_merge"}

# Leaves the `latency` mode gates: the coordinated-omission-safe
# quantiles the serving harness must keep reporting.
_LATENCY_GATE_KEYS = {"p50_us", "p90_us", "p99_us", "p999_us"}

# Leaves the `recall` mode gates (see module docstring).
_RECALL_GATE_KEYS = {"lsh_recall"}

# Leaves the `incremental` mode gates (see module docstring).
_INCREMENTAL_GATE_KEYS = {"stability", "speedup"}


def _element_key(value, index):
    if isinstance(value, dict):
        for key in _ID_KEYS:
            if key in value:
                return f"{key}={value[key]}"
    return f"[{index}]"


def flatten(value, prefix=""):
    """Yields (path, number) for every numeric leaf."""
    if isinstance(value, dict):
        for key in sorted(value):
            yield from flatten(value[key], f"{prefix}/{key}")
    elif isinstance(value, list):
        for index, element in enumerate(value):
            yield from flatten(element,
                               f"{prefix}/{_element_key(element, index)}")
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        yield prefix, float(value)


def _is_identity(path):
    return path.rsplit("/", 1)[-1] in _INVARIANT_KEYS


def check_identity(old, new):
    """Returns a list of human-readable identity violations."""
    problems = []
    identity_paths = sorted(p for p in set(old) | set(new) if _is_identity(p))
    for path in identity_paths:
        if path not in new:
            problems.append(f"{path}: missing from candidate "
                            f"(baseline {old[path]:g})")
        elif path not in old:
            problems.append(f"{path}: missing from baseline "
                            f"(candidate {new[path]:g})")
        elif old[path] != new[path]:
            problems.append(f"{path}: {old[path]:g} -> {new[path]:g}")
    return problems


def check_messages(old, new, tolerance):
    """Returns a list of messages-per-merge regressions beyond tolerance%."""
    problems = []
    gate_paths = sorted(
        p for p in set(old) | set(new)
        if p.rsplit("/", 1)[-1] in _MESSAGE_GATE_KEYS)
    for path in gate_paths:
        if path not in new:
            problems.append(f"{path}: missing from candidate "
                            f"(baseline {old[path]:g})")
        elif path not in old:
            # New coverage cannot regress anything; report nothing.
            continue
        elif old[path] > 0:
            pct = (new[path] - old[path]) / old[path] * 100.0
            if pct > tolerance:
                problems.append(f"{path}: {old[path]:g} -> {new[path]:g} "
                                f"({pct:+.1f}% > {tolerance:.1f}%)")
        elif new[path] > old[path]:
            problems.append(f"{path}: {old[path]:g} -> {new[path]:g}")
    return problems


def check_latency(old, new, fail_above, gate_quantiles=None, floor_us=0.0):
    """Returns (coverage_problems, regressions, info_rows) for quantiles.

    Coverage (every baseline quantile leaf must survive) always gates all
    of _LATENCY_GATE_KEYS. Growth gating applies only to `gate_quantiles`
    when given — on shared runners, high quantiles of a few thousand
    open-loop samples swing orders of magnitude on a single scheduler
    stall, while medians stay within a few percent, so CI gates the
    stable quantiles hard and keeps the tails informational. `floor_us`
    additionally waives growth while the candidate value stays below an
    absolute bound: a tail that "regressed" to a few ms is runner noise,
    one that regressed past the floor is an event-loop stall.
    """
    gate_paths = sorted(
        p for p in set(old) | set(new)
        if p.rsplit("/", 1)[-1] in _LATENCY_GATE_KEYS)
    coverage, regressions, rows = [], [], []
    for path in gate_paths:
        if path not in new:
            coverage.append(f"{path}: missing from candidate "
                            f"(baseline {old[path]:g})")
            continue
        if path not in old:
            rows.append(f"{path}: new coverage = {new[path]:g}")
            continue
        before, after = old[path], new[path]
        pct = ((after - before) / before * 100.0) if before else 0.0
        rows.append(f"{path}: {before:g} -> {after:g} ({pct:+.1f}%)")
        gated = (gate_quantiles is None
                 or path.rsplit("/", 1)[-1] in gate_quantiles)
        if (gated and fail_above is not None and pct > fail_above
                and after >= floor_us):
            regressions.append(f"{path}: {before:g} -> {after:g} "
                               f"({pct:+.1f}% > {fail_above:.1f}%)")
    return coverage, regressions, rows


def check_recall(old, new, min_recall):
    """Returns (coverage_problems, floor_problems, info_rows).

    Coverage: every baseline lsh_recall leaf must survive in the
    candidate — a bench change that stops measuring recall at a size
    tier is a regression even if the surviving tiers pass. Floor: every
    candidate lsh_recall leaf (including new tiers the baseline lacks)
    must be >= min_recall.
    """
    gate_paths = sorted(
        p for p in set(old) | set(new)
        if p.rsplit("/", 1)[-1] in _RECALL_GATE_KEYS)
    coverage, floors, rows = [], [], []
    for path in gate_paths:
        if path not in new:
            coverage.append(f"{path}: missing from candidate "
                            f"(baseline {old[path]:g})")
            continue
        value = new[path]
        if path in old:
            rows.append(f"{path}: {old[path]:g} -> {value:g}")
        else:
            rows.append(f"{path}: new coverage = {value:g}")
        if value < min_recall:
            floors.append(f"{path}: {value:g} < {min_recall:g}")
    return coverage, floors, rows


def _path_entities(path):
    """Returns the entities=N tier a leaf belongs to, or None."""
    match = re.search(r"entities=(\d+)", path)
    return int(match.group(1)) if match else None


def check_incremental(old, new, min_stability, min_speedup,
                      speedup_min_entities):
    """Returns (coverage_problems, floor_problems, info_rows).

    Coverage: every baseline stability/speedup leaf must survive in the
    candidate — a bench change that stops measuring a tier or a cycle is
    a regression even if the surviving leaves pass. Floors: every
    candidate stability leaf must be >= min_stability; every candidate
    speedup leaf whose path sits under an entities=N tier with
    N >= speedup_min_entities must be >= min_speedup (smaller tiers are
    informational — see module docstring).
    """
    gate_paths = sorted(
        p for p in set(old) | set(new)
        if p.rsplit("/", 1)[-1] in _INCREMENTAL_GATE_KEYS)
    coverage, floors, rows = [], [], []
    for path in gate_paths:
        if path not in new:
            coverage.append(f"{path}: missing from candidate "
                            f"(baseline {old[path]:g})")
            continue
        value = new[path]
        if path in old:
            rows.append(f"{path}: {old[path]:g} -> {value:g}")
        else:
            rows.append(f"{path}: new coverage = {value:g}")
        leaf = path.rsplit("/", 1)[-1]
        if leaf == "stability":
            if value < min_stability:
                floors.append(f"{path}: {value:g} < {min_stability:g}")
        elif leaf == "speedup":
            tier = _path_entities(path)
            if tier is not None and tier >= speedup_min_entities:
                if value < min_speedup:
                    floors.append(f"{path}: {value:g} < {min_speedup:g} "
                                  f"(gated: {tier} entities)")
            else:
                rows.append(f"{path}: informational "
                            f"(tier below {speedup_min_entities} entities)")
    return coverage, floors, rows


def diff_timing(old, new, threshold):
    """Returns (rows, only_old, only_new, worst_seconds_regression_pct)."""
    shared = sorted(set(old) & set(new))
    worst_regression = 0.0
    rows = []
    for path in shared:
        if _is_identity(path):
            continue
        before, after = old[path], new[path]
        delta = after - before
        pct = (delta / before * 100.0) if before else float("inf")
        if "seconds" in path.rsplit("/", 1)[-1]:
            worst_regression = max(worst_regression, pct)
        if delta == 0 or abs(pct) < threshold:
            continue
        rows.append((path, before, after, delta, pct))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    return rows, only_old, only_new, worst_regression


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline metrics JSON")
    parser.add_argument("new", help="candidate metrics JSON")
    parser.add_argument("--mode",
                        choices=("all", "identity", "timing", "messages",
                                 "latency", "recall", "incremental"),
                        default="all",
                        help="identity: hard-fail determinism check only; "
                             "timing: informational perf diff only; "
                             "all: both (default); messages: gate "
                             "messages_per_merge regressions only "
                             "(exit 3 on regression); latency: gate "
                             "p50/p90/p99/p999_us coverage and optional "
                             "regressions (exit 4); recall: gate "
                             "lsh_recall coverage and the --min_recall "
                             "floor (exit 5); incremental: gate "
                             "stability/speedup coverage and the "
                             "--min_stability/--min_speedup floors "
                             "(exit 6)")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="suppress timing rows whose |delta| is below "
                             "this percent (default 2)")
    parser.add_argument("--fail_above", type=float, default=None,
                        help="exit 1 if any *_seconds leaf regresses by "
                             "more than this percent (timing/all modes)")
    parser.add_argument("--messages_tolerance", type=float, default=0.0,
                        help="messages mode: allowed messages_per_merge "
                             "growth in percent before exit 3 (default 0)")
    parser.add_argument("--latency_fail_above", type=float, default=None,
                        help="latency mode: exit 4 if any gated quantile "
                             "grows by more than this percent (default: "
                             "values diff informationally)")
    parser.add_argument("--latency_gate_quantiles", default=None,
                        help="latency mode: comma-separated quantile keys "
                             "(e.g. p50_us,p90_us) the growth gate applies "
                             "to; others stay informational. Coverage is "
                             "always checked for all quantiles. Default: "
                             "gate every quantile")
    parser.add_argument("--latency_floor_us", type=float, default=0.0,
                        help="latency mode: waive a growth regression while "
                             "the candidate value stays below this many "
                             "microseconds (default 0 = never waive)")
    parser.add_argument("--min_recall", type=float, default=0.95,
                        help="recall mode: exit 5 if any candidate "
                             "lsh_recall leaf is below this floor "
                             "(default 0.95)")
    parser.add_argument("--min_stability", type=float, default=0.95,
                        help="incremental mode: exit 6 if any candidate "
                             "stability leaf is below this floor "
                             "(default 0.95)")
    parser.add_argument("--min_speedup", type=float, default=5.0,
                        help="incremental mode: exit 6 if any candidate "
                             "speedup leaf at a gated size tier is below "
                             "this floor (default 5)")
    parser.add_argument("--speedup_min_entities", type=int, default=20000,
                        help="incremental mode: gate the --min_speedup "
                             "floor only at size tiers with at least this "
                             "many entities; smaller tiers diff "
                             "informationally (default 20000)")
    args = parser.parse_args()

    with open(args.old) as f:
        old = dict(flatten(json.load(f)))
    with open(args.new) as f:
        new = dict(flatten(json.load(f)))

    failed = False

    if args.mode == "latency":
        gate_quantiles = None
        if args.latency_gate_quantiles is not None:
            gate_quantiles = {
                key.strip() for key in
                args.latency_gate_quantiles.split(",") if key.strip()}
        coverage, regressions, rows = check_latency(
            old, new, args.latency_fail_above, gate_quantiles,
            args.latency_floor_us)
        for row in rows:
            print(f"  {row}")
        if coverage:
            print("LATENCY COVERAGE REGRESSION — quantile leaves "
                  "disappeared from the candidate:")
            for problem in coverage:
                print(f"  {problem}")
            return 4
        if regressions:
            print("LATENCY REGRESSION — quantiles grew beyond "
                  f"{args.latency_fail_above:.1f}%:")
            for problem in regressions:
                print(f"  {problem}")
            return 4
        gated = sum(1 for p in old
                    if p.rsplit("/", 1)[-1] in _LATENCY_GATE_KEYS)
        print(f"latency: {gated} quantile leaves covered")
        return 0

    if args.mode == "recall":
        coverage, floors, rows = check_recall(old, new, args.min_recall)
        for row in rows:
            print(f"  {row}")
        if coverage:
            print("RECALL COVERAGE REGRESSION — lsh_recall leaves "
                  "disappeared from the candidate:")
            for problem in coverage:
                print(f"  {problem}")
            return 5
        if floors:
            print(f"RECALL REGRESSION — lsh_recall below "
                  f"{args.min_recall:g}:")
            for problem in floors:
                print(f"  {problem}")
            return 5
        gated = sum(1 for p in new
                    if p.rsplit("/", 1)[-1] in _RECALL_GATE_KEYS)
        print(f"recall: {gated} leaves at or above {args.min_recall:g}")
        return 0

    if args.mode == "incremental":
        coverage, floors, rows = check_incremental(
            old, new, args.min_stability, args.min_speedup,
            args.speedup_min_entities)
        for row in rows:
            print(f"  {row}")
        if coverage:
            print("INCREMENTAL COVERAGE REGRESSION — stability/speedup "
                  "leaves disappeared from the candidate:")
            for problem in coverage:
                print(f"  {problem}")
            return 6
        if floors:
            print(f"INCREMENTAL REGRESSION — floors violated "
                  f"(stability >= {args.min_stability:g}, gated speedup "
                  f">= {args.min_speedup:g}):")
            for problem in floors:
                print(f"  {problem}")
            return 6
        gated = sum(1 for p in new
                    if p.rsplit("/", 1)[-1] in _INCREMENTAL_GATE_KEYS)
        print(f"incremental: {gated} leaves within floors "
              f"(stability >= {args.min_stability:g}, speedup >= "
              f"{args.min_speedup:g} at >= {args.speedup_min_entities} "
              f"entities)")
        return 0

    if args.mode == "messages":
        problems = check_messages(old, new, args.messages_tolerance)
        if problems:
            print("MESSAGE ECONOMY REGRESSION — "
                  "messages_per_merge leaves grew:")
            for problem in problems:
                print(f"  {problem}")
            return 3
        gated = sum(1 for p in old
                    if p.rsplit("/", 1)[-1] in _MESSAGE_GATE_KEYS)
        print(f"messages: {gated} leaves within "
              f"{args.messages_tolerance:.1f}% tolerance")
        return 0

    if args.mode in ("all", "identity"):
        problems = check_identity(old, new)
        if problems:
            print("IDENTITY MISMATCH — run-identity leaves differ:")
            for problem in problems:
                print(f"  {problem}")
            failed = True
        else:
            identity_count = sum(1 for p in old if _is_identity(p))
            print(f"identity: {identity_count} leaves match")

    if args.mode in ("all", "timing"):
        rows, only_old, only_new, worst = diff_timing(
            old, new, args.threshold)
        shared = len(set(old) & set(new))
        print(f"{shared} aligned leaves; "
              f"{len(rows)} changed beyond {args.threshold:.1f}%")
        for path, before, after, delta, pct in rows:
            print(f"  {path}: {before:g} -> {after:g}  "
                  f"({delta:+g}, {pct:+.1f}%)")
        for path in only_old:
            print(f"  removed: {path} (was {old[path]:g})")
        for path in only_new:
            print(f"  added: {path} = {new[path]:g}")
        if args.fail_above is not None and worst > args.fail_above:
            print(f"FAIL: worst seconds regression {worst:+.1f}% "
                  f"exceeds {args.fail_above:.1f}%")
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
