#!/usr/bin/env python3
"""Diff two benchmark metrics JSON files (e.g. BENCH_hac.json runs).

Walks both documents, aligns numeric leaves by their JSON path, and
prints old -> new with absolute and relative deltas. Array elements that
carry an identifying key (entities, threads) are aligned by that key
rather than by index, so a run with an extra size row still lines up.

Usage: perf_diff.py OLD.json NEW.json [--threshold PCT]

Exit code is always 0 unless --fail_above is given: the diff is
informational by default so CI can surface regressions without being
flaky about machine noise.
"""

import argparse
import json
import sys

# Keys that identify an array element (checked in order).
_ID_KEYS = ("entities", "threads", "name", "bench")

# Leaves where a change is identity-relevant, not perf-relevant: a
# changed merge count means the run is not comparable, which the diff
# flags separately from slow/fast.
_INVARIANT_KEYS = {"rounds", "merges", "messages", "supersteps", "edges"}


def _element_key(value, index):
    if isinstance(value, dict):
        for key in _ID_KEYS:
            if key in value:
                return f"{key}={value[key]}"
    return f"[{index}]"


def flatten(value, prefix=""):
    """Yields (path, number) for every numeric leaf."""
    if isinstance(value, dict):
        for key in sorted(value):
            yield from flatten(value[key], f"{prefix}/{key}")
    elif isinstance(value, list):
        for index, element in enumerate(value):
            yield from flatten(element,
                               f"{prefix}/{_element_key(element, index)}")
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        yield prefix, float(value)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline metrics JSON")
    parser.add_argument("new", help="candidate metrics JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="suppress rows whose |delta| is below this "
                             "percent (default 2)")
    parser.add_argument("--fail_above", type=float, default=None,
                        help="exit 1 if any *_seconds leaf regresses by "
                             "more than this percent")
    args = parser.parse_args()

    with open(args.old) as f:
        old = dict(flatten(json.load(f)))
    with open(args.new) as f:
        new = dict(flatten(json.load(f)))

    shared = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    invariant_broken = []
    worst_regression = 0.0
    rows = []
    for path in shared:
        before, after = old[path], new[path]
        delta = after - before
        pct = (delta / before * 100.0) if before else float("inf")
        leaf = path.rsplit("/", 1)[-1]
        if leaf in _INVARIANT_KEYS and before != after:
            invariant_broken.append((path, before, after))
            continue
        if "seconds" in leaf:
            worst_regression = max(worst_regression, pct)
        if abs(pct) < args.threshold and delta != 0:
            continue
        if delta == 0:
            continue
        rows.append((path, before, after, delta, pct))

    print(f"{len(shared)} aligned leaves; "
          f"{len(rows)} changed beyond {args.threshold:.1f}%")
    for path, before, after, delta, pct in rows:
        print(f"  {path}: {before:g} -> {after:g}  "
              f"({delta:+g}, {pct:+.1f}%)")
    if invariant_broken:
        print("NOT COMPARABLE — run-identity leaves differ:")
        for path, before, after in invariant_broken:
            print(f"  {path}: {before:g} -> {after:g}")
    for path in only_old:
        print(f"  removed: {path} (was {old[path]:g})")
    for path in only_new:
        print(f"  added: {path} = {new[path]:g}")

    if args.fail_above is not None and worst_regression > args.fail_above:
        print(f"FAIL: worst seconds regression {worst_regression:+.1f}% "
              f"exceeds {args.fail_above:.1f}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
