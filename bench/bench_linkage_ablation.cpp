// E8 (Eq. 4 ablation): the paper updates merged similarities with a
// sqrt-normalised weighted average. Compares that rule against classic
// linkage alternatives (size-weighted mean, single/max, complete/min)
// on identical entity graphs.

#include "bench_common.h"
#include "eval/cluster_metrics.h"
#include "graph/modularity.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 2500, "entity count");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E8 bench_linkage_ablation",
      "S(AB,C) = sqrt(nA)/(sqrt(nA)+sqrt(nB))*S(A,C) + ... (Eq. 4) — the "
      "sqrt normalisation vs classic linkage rules");

  auto workload = bench::BuildWorkload(
      bench::ScaledDataset(
          static_cast<size_t>(flags.GetInt64("entities")),
          static_cast<uint64_t>(flags.GetInt64("seed"))),
      core::ShoalOptions{});
  const auto& graph = workload.model.entity_graph();
  auto truth = workload.dataset.EntityIntentLabels();
  std::printf("entity graph: %zu vertices, %zu edges\n\n",
              graph.num_vertices(), graph.num_edges());

  std::printf("%-18s %-10s %-10s %-8s %-8s %-12s %-8s\n", "linkage",
              "merges", "rounds", "NMI", "purity", "modularity", "time_s");
  for (core::LinkageRule rule :
       {core::LinkageRule::kSqrtNormalized,
        core::LinkageRule::kArithmeticMean, core::LinkageRule::kMax,
        core::LinkageRule::kMin}) {
    core::ParallelHacOptions options;
    options.hac.linkage = rule;
    options.num_threads = 2;
    core::ParallelHacStats stats;
    util::Stopwatch timer;
    auto d = core::ParallelHac(graph, options, &stats);
    double seconds = timer.ElapsedSeconds();
    SHOAL_CHECK(d.ok()) << d.status().ToString();
    auto labels = d->FlatClusters();
    auto nmi = eval::NormalizedMutualInformation(labels, truth);
    auto purity = eval::Purity(labels, truth);
    auto modularity = graph::Modularity(graph, labels);
    SHOAL_CHECK(nmi.ok() && purity.ok() && modularity.ok());
    std::printf("%-18s %-10zu %-10zu %-8.4f %-8.4f %-12.4f %-8.3f\n",
                core::LinkageRuleName(rule), stats.total_merges,
                stats.rounds, nmi.value(), purity.value(),
                modularity.value(), seconds);
  }
  std::printf(
      "\nexpected shape: max/single linkage chains clusters together (high\n"
      "recall, low purity); min/complete fragments; the paper's sqrt rule\n"
      "and the weighted mean balance both, with sqrt favouring balanced\n"
      "cluster growth.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
