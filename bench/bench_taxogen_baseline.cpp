// E10 (related work): SHOAL vs an embedding-only taxonomy-induction
// baseline (TaxoGen-lite, after the paper's reference [6]). SHOAL claims
// the advantage of combining *structural* (query coalition) and
// *textual* similarity; the baseline uses text embeddings alone.

#include "baselines/louvain.h"
#include "baselines/taxogen_lite.h"
#include "bench_common.h"
#include "core/similarity.h"
#include "eval/cluster_metrics.h"
#include "text/word2vec.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 2500, "entity count");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E10 bench_taxogen_baseline",
      "SHOAL (structural + textual similarity, parallel clustering) vs "
      "TaxoGen-style embedding-only recursive clustering");

  util::Stopwatch shoal_timer;
  auto workload = bench::BuildWorkload(
      bench::ScaledDataset(
          static_cast<size_t>(flags.GetInt64("entities")),
          static_cast<uint64_t>(flags.GetInt64("seed"))),
      core::ShoalOptions{});
  double shoal_seconds = workload.build_seconds;
  auto truth_leaf = workload.dataset.EntityIntentLabels();
  auto truth_root = workload.dataset.EntityRootIntentLabels();

  // Baseline input: entity content embeddings from the same word2vec
  // space SHOAL trains (mean of unit title-word vectors).
  text::Word2VecOptions w2v_options;
  auto corpus = data::BuildTrainingCorpus(workload.dataset);
  auto w2v = text::Word2Vec::Train(workload.dataset.lexicon.vocab(), corpus,
                                   w2v_options);
  SHOAL_CHECK(w2v.ok()) << w2v.status().ToString();
  std::vector<std::vector<float>> embeddings;
  embeddings.reserve(workload.dataset.entities.size());
  for (const auto& entity : workload.dataset.entities) {
    auto profile =
        core::BuildContentProfile(w2v->vectors(), entity.title_words);
    if (profile.mean_unit_vector.empty()) {
      profile.mean_unit_vector.assign(w2v->dim(), 0.0f);
    }
    embeddings.push_back(std::move(profile.mean_unit_vector));
  }
  // Mean-centre the embeddings: word2vec spaces share a dominant common
  // direction that would otherwise swamp cosine k-means. TaxoGen gets
  // the same effect from its tf-idf-weighted local embeddings, so this
  // keeps the baseline fair.
  std::vector<double> mean(w2v->dim(), 0.0);
  for (const auto& row : embeddings) {
    for (size_t d = 0; d < row.size(); ++d) mean[d] += row[d];
  }
  for (double& m : mean) m /= static_cast<double>(embeddings.size());
  for (auto& row : embeddings) {
    for (size_t d = 0; d < row.size(); ++d) {
      row[d] -= static_cast<float>(mean[d]);
    }
  }

  baselines::TaxoGenLiteOptions baseline_options;
  baseline_options.branching =
      std::max<size_t>(2, workload.dataset.intents.roots().size());
  baseline_options.max_depth = 2;
  baseline_options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  util::Stopwatch baseline_timer;
  auto baseline = baselines::RunTaxoGenLite(embeddings, baseline_options);
  double baseline_seconds = baseline_timer.ElapsedSeconds();
  SHOAL_CHECK(baseline.ok()) << baseline.status().ToString();

  auto score = [&](const std::vector<uint32_t>& predicted,
                   const std::vector<uint32_t>& truth) {
    auto nmi = eval::NormalizedMutualInformation(predicted, truth);
    auto purity = eval::Purity(predicted, truth);
    SHOAL_CHECK(nmi.ok() && purity.ok());
    return std::make_pair(nmi.value(), purity.value());
  };

  // Louvain on the same entity graph: a flat graph-clustering baseline
  // that directly optimises modularity (no hierarchy, no threshold).
  util::Stopwatch louvain_timer;
  auto louvain = baselines::RunLouvain(workload.model.entity_graph(),
                                       baselines::LouvainOptions{});
  double louvain_seconds = louvain_timer.ElapsedSeconds();
  SHOAL_CHECK(louvain.ok()) << louvain.status().ToString();

  auto shoal_root = score(workload.model.taxonomy().RootLabels(), truth_root);
  auto shoal_leaf = score(workload.model.taxonomy().RootLabels(), truth_leaf);
  auto taxogen_root = score(baseline->root_labels, truth_root);
  auto taxogen_leaf = score(baseline->leaf_labels, truth_leaf);
  auto louvain_root = score(louvain->labels, truth_root);
  auto louvain_leaf = score(louvain->labels, truth_leaf);

  std::printf("%-26s %-12s %-12s %-12s %-12s %-10s\n", "method",
              "NMI(root)", "purity(root)", "NMI(leaf)", "purity(leaf)",
              "time_s");
  std::printf("%-26s %-12.4f %-12.4f %-12.4f %-12.4f %-10.2f\n",
              "SHOAL (query coalition)", shoal_root.first,
              shoal_root.second, shoal_leaf.first, shoal_leaf.second,
              shoal_seconds);
  std::printf("%-26s %-12.4f %-12.4f %-12.4f %-12.4f %-10.2f\n",
              "TaxoGen-lite (text only)", taxogen_root.first,
              taxogen_root.second, taxogen_leaf.first, taxogen_leaf.second,
              baseline_seconds);
  std::printf("%-26s %-12.4f %-12.4f %-12.4f %-12.4f %-10.2f\n",
              "Louvain (graph only)", louvain_root.first,
              louvain_root.second, louvain_leaf.first, louvain_leaf.second,
              louvain_seconds);
  std::printf(
      "\nexpected shape: SHOAL wins on both levels because query coalition\n"
      "separates intents that share title vocabulary, which text-only\n"
      "clustering conflates.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
