# Observability smoke test, run via `cmake -P` from ctest (see
# examples/CMakeLists.txt): drives shoal_cli generate -> build with
# --trace-out / --metrics-out / --log-level and validates that both
# artefacts are well-formed JSON carrying the expected span / metric
# names, using the json_lint binary (no external JSON tooling needed).
#
# Required -D variables: SHOAL_CLI, JSON_LINT, WORK_DIR.

foreach(var SHOAL_CLI JSON_LINT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_obs_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "cli_obs_smoke: '${ARGN}' exited with ${rv}")
  endif()
endfunction()

run_checked("${SHOAL_CLI}" generate
  "--out=${WORK_DIR}/log" --entities=500 --seed=2019)

run_checked("${SHOAL_CLI}" build
  "--in=${WORK_DIR}/log" "--out=${WORK_DIR}/taxonomy"
  "--trace-out=${WORK_DIR}/trace.json"
  "--metrics-out=${WORK_DIR}/metrics.json"
  --log-level=debug)

# The trace must contain at least one span per pipeline stage and the
# per-round HAC spans; the metrics snapshot must carry the thread-pool
# gauges and per-round merge counts.
run_checked("${JSON_LINT}"
  --expect=shoal.build --expect=shoal.entity_graph --expect=shoal.hac
  --expect=shoal.taxonomy --expect=hac.round --expect=bsp.superstep
  "${WORK_DIR}/trace.json")
run_checked("${JSON_LINT}"
  --expect=bsp.pool.peak_queue_depth --expect=hac.round.merges
  --expect=hac.rounds --expect=merges_per_round
  "${WORK_DIR}/metrics.json")

# Same build through the MinHash/LSH candidate path: the entity_graph
# lsh.* gauges must land in the metrics snapshot.
run_checked("${SHOAL_CLI}" build
  "--in=${WORK_DIR}/log" "--out=${WORK_DIR}/taxonomy_lsh"
  --candidate-strategy=lsh
  "--metrics-out=${WORK_DIR}/metrics_lsh.json")
run_checked("${JSON_LINT}"
  --expect=entity_graph.lsh.candidate_pairs
  --expect=entity_graph.lsh.signed_entities
  --expect=entity_graph.lsh.buckets
  "${WORK_DIR}/metrics_lsh.json")

message(STATUS "cli_obs_smoke: trace.json and metrics.json validated")
