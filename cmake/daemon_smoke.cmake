# End-to-end incremental-maintenance drill, run via `cmake -P` from
# ctest (see examples/CMakeLists.txt):
#
#   1. shoal_daemon --generate-out writes a reproducible 3-day drift
#      workload (static catalog + one clicks file per day).
#   2. Days 1-2 are dropped into a spool; `shoal_daemon --once` drains
#      them (two incremental cycles) and publishes index v2.
#   3. A real shoal_serve boots on the published index with --poll-sec 1.
#   4. Day 3 arrives; a SECOND `shoal_daemon --once` process restores
#      the standing window from the snapshot, runs one cycle, and
#      publishes v3 — which the live server must hot-reload.
#   5. http_probe asserts against the live server: ready at v2, the
#      day-2 query resolves, v3 appears after the reload, and the
#      day-3 query (born that day) resolves. Every request must come
#      back 200, and the access log must contain no 5xx at all.
#
# Required -D variables: SHOAL_DAEMON, SHOAL_SERVE, HTTP_PROBE,
# WORK_DIR. Optional: PORT (default 18973).

foreach(var SHOAL_DAEMON SHOAL_SERVE HTTP_PROBE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "daemon_smoke: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED PORT)
  set(PORT 18973)
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(STAGE "${WORK_DIR}/staging")
set(SPOOL "${WORK_DIR}/spool")
file(MAKE_DIRECTORY "${SPOOL}")

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "daemon_smoke: '${ARGN}' exited with ${rv}")
  endif()
endfunction()

# ---- produce the workload --------------------------------------------------

run_checked("${SHOAL_DAEMON}"
  "--generate-out=${STAGE}" --days=3 --entities=600 --queries=500
  --background-pairs=4000 --drift-clicks=1500 --seed=2019)

# probe_queries.tsv: day <TAB> query_id <TAB> text, one query per day
# that first receives clicks that day.
file(STRINGS "${STAGE}/probe_queries.tsv" PROBE_LINES)
function(probe_text day out_var)
  list(GET PROBE_LINES ${day} line)
  string(REPLACE "\t" ";" fields "${line}")
  list(GET fields 2 text)
  string(REPLACE " " "%20" text "${text}")
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()
probe_text(1 DAY2_QUERY)
probe_text(2 DAY3_QUERY)

# ---- first drill: drain days 1-2, publish v2 -------------------------------

file(COPY "${STAGE}/items.tsv" "${STAGE}/queries.tsv"
  "${STAGE}/day-0000.clicks.tsv" "${STAGE}/day-0001.clicks.tsv"
  DESTINATION "${SPOOL}")

run_checked("${SHOAL_DAEMON}"
  "--spool=${SPOOL}" "--index=${WORK_DIR}/taxonomy.idx"
  "--snapshot=${WORK_DIR}/daemon.snap" --once --threads=2)

# ---- boot the live serving tier --------------------------------------------

# cmake script mode cannot background a process, so fork through sh and
# keep the pid for cleanup (and for the kill on any failed assertion).
execute_process(COMMAND sh -c
  "'${SHOAL_SERVE}' --index='${WORK_DIR}/taxonomy.idx' --host=127.0.0.1 \
   --port=${PORT} --threads=2 --poll-sec=1 \
   --access-log='${WORK_DIR}/access.log' \
   > '${WORK_DIR}/serve.log' 2>&1 & echo $! > '${WORK_DIR}/serve.pid'"
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "daemon_smoke: cannot fork shoal_serve")
endif()

function(kill_server)
  execute_process(COMMAND sh -c
    "kill $(cat '${WORK_DIR}/serve.pid') 2>/dev/null; true")
endfunction()

# run_checked for assertions made while the server is live: the server
# must not outlive a FATAL_ERROR.
function(live_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    kill_server()
    execute_process(COMMAND ${CMAKE_COMMAND} -E cat "${WORK_DIR}/serve.log")
    message(FATAL_ERROR "daemon_smoke: '${ARGN}' exited with ${rv}")
  endif()
endfunction()

# Ready at v2 (days 1-2 consumed), with the freshness fields populated.
live_checked("${HTTP_PROBE}" --port=${PORT} --target=/readyz
  --retries=60 --retry-delay-ms=500 "--out=${WORK_DIR}/readyz_v2.json"
  "\"status\": \"ready\"" "\"index_version\": 2" "index_staleness_sec")

# A query from day 2 resolves with scored results on the live server.
live_checked("${HTTP_PROBE}" --port=${PORT}
  "--target=/v1/query?q=${DAY2_QUERY}&k=3"
  "\"match\": \"exact\"" "\"score\"")

# ---- day 3 arrives: second drill restores the snapshot, publishes v3 -------

file(COPY "${STAGE}/day-0002.clicks.tsv" DESTINATION "${SPOOL}")

execute_process(COMMAND "${SHOAL_DAEMON}"
  "--spool=${SPOOL}" "--index=${WORK_DIR}/taxonomy.idx"
  "--snapshot=${WORK_DIR}/daemon.snap" --once --threads=2
  RESULT_VARIABLE rv OUTPUT_VARIABLE second_run)
message(STATUS "${second_run}")
if(NOT rv EQUAL 0)
  kill_server()
  message(FATAL_ERROR "daemon_smoke: second daemon run exited with ${rv}")
endif()
# The second process must have resumed from the checkpoint, not rebuilt.
if(NOT second_run MATCHES "restored snapshot")
  kill_server()
  message(FATAL_ERROR "daemon_smoke: second run did not restore the snapshot")
endif()

# The live server hot-reloads v3 via its mtime poller — no restart.
live_checked("${HTTP_PROBE}" --port=${PORT} --target=/readyz
  --retries=60 --retry-delay-ms=500 "--out=${WORK_DIR}/readyz_v3.json"
  "\"status\": \"ready\"" "\"index_version\": 3")

# The day-3 probe query (born on day 3, clicks only in the newest day
# file) resolves against the freshly published index.
live_checked("${HTTP_PROBE}" --port=${PORT}
  "--target=/v1/query?q=${DAY3_QUERY}&k=3"
  "\"match\": \"exact\"" "\"score\"")

kill_server()

# Zero 5xx across everything the drill sent (the probes individually
# demanded 200s; the access log catches anything else, e.g. a failed
# hot reload surfacing as a 503 burst).
file(READ "${WORK_DIR}/access.log" access)
if(access MATCHES "\"status\": *5")
  message(FATAL_ERROR "daemon_smoke: access log contains a 5xx:\n${access}")
endif()

message(STATUS "daemon_smoke: two incremental drills, hot reload, and "
  "day-3 resolution all validated")
