# Serving smoke test, run via `cmake -P` from ctest (see
# examples/CMakeLists.txt): shoal_cli generate -> build with
# --serving-index-out compiles an online index, then shoal_serve
# --selftest-out boots the HTTP server on an ephemeral port, hits every
# endpoint (including a hot reload and the error paths) and writes each
# response body to disk; json_lint then proves every JSON body is
# well-formed and carries the expected fields.
#
# Required -D variables: SHOAL_CLI, SHOAL_SERVE, JSON_LINT, PROM_LINT,
# WORK_DIR.

foreach(var SHOAL_CLI SHOAL_SERVE JSON_LINT PROM_LINT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_serve_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "cli_serve_smoke: '${ARGN}' exited with ${rv}")
  endif()
endfunction()

run_checked("${SHOAL_CLI}" generate
  "--out=${WORK_DIR}/log" --entities=600 --seed=2019)

run_checked("${SHOAL_CLI}" build
  "--in=${WORK_DIR}/log" "--out=${WORK_DIR}/taxonomy"
  "--serving-index-out=${WORK_DIR}/taxonomy.idx")

# The selftest covers /v1/query (twice: the repeat must hit the response
# cache), /v1/topic, /v1/item, /healthz, /metrics, /admin/reload, and
# the 400/404 error paths, failing on any unexpected status code.
run_checked("${SHOAL_SERVE}"
  "--index=${WORK_DIR}/taxonomy.idx"
  "--selftest-out=${WORK_DIR}/bodies")

# Every captured body must be strict JSON; spot-check the load-bearing
# fields so a handler that regresses to an empty object still fails.
run_checked("${JSON_LINT}"
  --expect=results --expect=index_version "${WORK_DIR}/bodies/query.json")
run_checked("${JSON_LINT}"
  --expect=children --expect=path "${WORK_DIR}/bodies/topic.json")
run_checked("${JSON_LINT}"
  --expect=topic --expect=category "${WORK_DIR}/bodies/item.json")
run_checked("${JSON_LINT}"
  --expect=ok --expect=queries "${WORK_DIR}/bodies/healthz.json")
run_checked("${JSON_LINT}"
  --expect=reloaded "${WORK_DIR}/bodies/reload.json")
run_checked("${JSON_LINT}"
  --expect=serve.cache.hits --expect=serve.index.version
  "${WORK_DIR}/bodies/metrics.json")
# An empty q is a valid request that matches nothing (200, no results);
# the remaining bodies are the 400/404 error envelope.
run_checked("${JSON_LINT}"
  --expect=results --expect=none "${WORK_DIR}/bodies/query_empty.json")
run_checked("${JSON_LINT}"
  --expect=error
  "${WORK_DIR}/bodies/topic_bad.json"
  "${WORK_DIR}/bodies/item_miss.json"
  "${WORK_DIR}/bodies/not_found.json")

# Readiness is distinct from liveness: /readyz reports the loaded index
# version, uptime, and freshness (when the index was installed and how
# stale it is) once serving.
run_checked("${JSON_LINT}"
  --expect=ready --expect=uptime_seconds --expect=index_version
  --expect=index_installed_unix_ms --expect=index_staleness_sec
  "${WORK_DIR}/bodies/readyz.json")

# The Prometheus exposition must survive the strict checker: sanitized
# names, cumulative le buckets, +Inf == _count, _sum present.
run_checked("${PROM_LINT}"
  --expect=serve_requests_total --expect=serve_query_latency_us
  --expect=serve_index_version --expect=serve_index_staleness_sec
  "${WORK_DIR}/bodies/metrics.prom")

# Every request the selftest issued must have produced one JSONL access
# log line, each independently parseable.
run_checked("${JSON_LINT}" --jsonl
  --expect=request_id --expect=latency_us --expect=endpoint
  "${WORK_DIR}/bodies/access.log")

message(STATUS "cli_serve_smoke: all endpoint bodies validated")
