# Crash-recovery smoke test, run via `cmake -P` from ctest (see
# examples/CMakeLists.txt) and mirrored by the CI crash-recovery job:
#
#   1. build a reference taxonomy with no interference,
#   2. rebuild with SHOAL_FAULT=crash_at_round:3 and checkpointing on —
#      the process hard-exits (std::_Exit(42)) mid-HAC, leaving only
#      the checkpoint directory behind,
#   3. `shoal_cli resume` from the checkpoint at a different thread
#      count,
#   4. byte-compare every taxonomy artefact against the reference.
#
# Required -D variables: SHOAL_CLI, WORK_DIR.

foreach(var SHOAL_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_crash_resume_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "cli_crash_resume_smoke: '${ARGN}' exited with ${rv}")
  endif()
endfunction()

run_checked("${SHOAL_CLI}" generate
  "--out=${WORK_DIR}/log" --entities=600 --seed=2027)

# Reference: uninterrupted build at 2 threads.
run_checked("${SHOAL_CLI}" build
  "--in=${WORK_DIR}/log" "--out=${WORK_DIR}/tax_ref" --threads=2)

# Interrupted build: the injected fault crashes the process at HAC round
# 3 with exit code 42 (a real process death, not a clean error return).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SHOAL_FAULT=crash_at_round:3
    "${SHOAL_CLI}" build
    "--in=${WORK_DIR}/log" "--out=${WORK_DIR}/tax_crash"
    "--checkpoint-dir=${WORK_DIR}/ckpt" --checkpoint-every=1 --threads=2
  RESULT_VARIABLE crash_rv)
if(NOT crash_rv EQUAL 42)
  message(FATAL_ERROR
    "cli_crash_resume_smoke: expected injected crash (exit 42), got "
    "'${crash_rv}'")
endif()
if(EXISTS "${WORK_DIR}/tax_crash/topics.tsv")
  message(FATAL_ERROR
    "cli_crash_resume_smoke: crashed build must not have written taxonomy "
    "artefacts")
endif()
if(NOT EXISTS "${WORK_DIR}/ckpt/MANIFEST.json")
  message(FATAL_ERROR
    "cli_crash_resume_smoke: crashed build left no checkpoint manifest")
endif()

# Resume from the checkpoint at a different thread count; determinism
# means the thread count cannot matter.
run_checked("${SHOAL_CLI}" resume
  "--in=${WORK_DIR}/log" "--out=${WORK_DIR}/tax_resumed"
  "--checkpoint-dir=${WORK_DIR}/ckpt" --checkpoint-every=1 --threads=8)

# Every artefact must be byte-for-byte identical to the reference.
foreach(artefact
    categories.tsv correlations.tsv descriptions.tsv members.tsv topics.tsv)
  if(NOT EXISTS "${WORK_DIR}/tax_resumed/${artefact}")
    message(FATAL_ERROR
      "cli_crash_resume_smoke: resumed build is missing ${artefact}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      "${WORK_DIR}/tax_ref/${artefact}" "${WORK_DIR}/tax_resumed/${artefact}"
    RESULT_VARIABLE diff_rv)
  if(NOT diff_rv EQUAL 0)
    message(FATAL_ERROR
      "cli_crash_resume_smoke: ${artefact} differs between the reference "
      "and the resumed build")
  endif()
endforeach()

message(STATUS
  "cli_crash_resume_smoke: resumed taxonomy byte-identical to reference")
