#include "eval/cluster_metrics.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace shoal::eval {
namespace {

TEST(ClusterMetricsTest, ValidatesInputs) {
  EXPECT_FALSE(NormalizedMutualInformation({}, {}).ok());
  EXPECT_FALSE(NormalizedMutualInformation({1}, {1, 2}).ok());
  EXPECT_FALSE(AdjustedRandIndex({}, {}).ok());
  EXPECT_FALSE(Purity({1}, {}).ok());
  EXPECT_FALSE(PairwiseF1({}, {1}).ok());
}

TEST(ClusterMetricsTest, PerfectAgreement) {
  std::vector<uint32_t> labels = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(labels, labels).value(), 1.0,
              1e-12);
  EXPECT_NEAR(AdjustedRandIndex(labels, labels).value(), 1.0, 1e-12);
  EXPECT_NEAR(Purity(labels, labels).value(), 1.0, 1e-12);
  auto f1 = PairwiseF1(labels, labels).value();
  EXPECT_NEAR(f1.f1, 1.0, 1e-12);
}

TEST(ClusterMetricsTest, RelabeledPartitionsStillPerfect) {
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  std::vector<uint32_t> relabeled = {7, 7, 3, 3};
  EXPECT_NEAR(NormalizedMutualInformation(relabeled, truth).value(), 1.0,
              1e-12);
  EXPECT_NEAR(AdjustedRandIndex(relabeled, truth).value(), 1.0, 1e-12);
}

TEST(ClusterMetricsTest, AriNearZeroForRandomLabels) {
  util::Rng rng(5);
  std::vector<uint32_t> truth(2000);
  std::vector<uint32_t> predicted(2000);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<uint32_t>(rng.Uniform(5));
    predicted[i] = static_cast<uint32_t>(rng.Uniform(5));
  }
  EXPECT_NEAR(AdjustedRandIndex(predicted, truth).value(), 0.0, 0.02);
}

TEST(ClusterMetricsTest, NmiZeroForIndependentLabels) {
  // Predicted splits each truth class exactly in half: the contingency
  // is independent, MI = 0.
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  std::vector<uint32_t> predicted = {0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(predicted, truth).value(), 0.0,
              1e-12);
}

TEST(ClusterMetricsTest, PurityOfMergedClusters) {
  // One predicted cluster over two equal truth classes: purity 0.5.
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  std::vector<uint32_t> predicted = {9, 9, 9, 9};
  EXPECT_NEAR(Purity(predicted, truth).value(), 0.5, 1e-12);
}

TEST(ClusterMetricsTest, PuritySingletonsAlwaysOne) {
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  std::vector<uint32_t> predicted = {0, 1, 2, 3};
  EXPECT_NEAR(Purity(predicted, truth).value(), 1.0, 1e-12);
}

TEST(ClusterMetricsTest, PairwiseScoresOnKnownExample) {
  // truth pairs: (0,1) and (2,3); predicted groups {0,1,2} and {3}.
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  std::vector<uint32_t> predicted = {5, 5, 5, 6};
  auto scores = PairwiseF1(predicted, truth).value();
  // predicted same-pairs: (0,1),(0,2),(1,2) = 3; of those only (0,1) is a
  // truth pair -> precision 1/3. truth pairs = 2; recall = 1/2.
  EXPECT_NEAR(scores.precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(scores.recall, 0.5, 1e-12);
  EXPECT_NEAR(scores.f1, 2.0 * (1.0 / 3.0) * 0.5 / (1.0 / 3.0 + 0.5),
              1e-12);
}

TEST(ClusterMetricsTest, FinerPartitionHasPerfectPairPrecision) {
  // Splitting truth clusters keeps all predicted pairs correct.
  std::vector<uint32_t> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<uint32_t> predicted = {0, 0, 1, 1, 2, 2, 3, 3};
  auto scores = PairwiseF1(predicted, truth).value();
  EXPECT_NEAR(scores.precision, 1.0, 1e-12);
  EXPECT_LT(scores.recall, 1.0);
}

TEST(ClusterMetricsTest, MetricsDegradeWithNoise) {
  util::Rng rng(11);
  std::vector<uint32_t> truth(500);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<uint32_t>(i % 10);
  }
  auto corrupt = [&](double rate) {
    std::vector<uint32_t> labels = truth;
    for (auto& l : labels) {
      if (rng.Bernoulli(rate)) l = static_cast<uint32_t>(rng.Uniform(10));
    }
    return labels;
  };
  double nmi_low = NormalizedMutualInformation(corrupt(0.1), truth).value();
  double nmi_high = NormalizedMutualInformation(corrupt(0.6), truth).value();
  EXPECT_GT(nmi_low, nmi_high);
  EXPECT_GT(nmi_low, 0.6);
}

TEST(ClusterMetricsTest, BothTrivialPartitionsAgree) {
  std::vector<uint32_t> all_same = {3, 3, 3};
  EXPECT_NEAR(NormalizedMutualInformation(all_same, all_same).value(), 1.0,
              1e-12);
  EXPECT_NEAR(AdjustedRandIndex(all_same, all_same).value(), 1.0, 1e-12);
}

}  // namespace
}  // namespace shoal::eval
