#include "eval/ctr_sim.h"

#include <gtest/gtest.h>

namespace shoal::eval {
namespace {

// Recommender that always returns items with the given intent label.
class FixedPoolRecommender : public Recommender {
 public:
  FixedPoolRecommender(std::vector<uint32_t> pool, const char* name)
      : pool_(std::move(pool)), name_(name) {}

  std::vector<uint32_t> Recommend(uint32_t seed_entity, size_t k,
                                  util::Rng& rng) const override {
    std::vector<uint32_t> slate;
    while (slate.size() < k) {
      uint32_t e = pool_[rng.Uniform(pool_.size())];
      if (e != seed_entity) slate.push_back(e);
    }
    return slate;
  }

  const char* name() const override { return name_; }

 private:
  std::vector<uint32_t> pool_;
  const char* name_;
};

// 10 entities: 0-4 intent 0 (root 0), 5-9 intent 1 (root 0 too).
struct SimFixture {
  std::vector<uint32_t> intents = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  std::vector<uint32_t> categories = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  std::vector<uint32_t> intent_roots = {0, 0};
};

TEST(CtrSimTest, ValidatesInputs) {
  SimFixture f;
  FixedPoolRecommender r({0, 1}, "r");
  CtrSimOptions options;
  EXPECT_FALSE(
      RunCtrSimulation(r, r, {}, {}, f.intent_roots, options).ok());
  options.slate_size = 0;
  EXPECT_FALSE(RunCtrSimulation(r, r, f.intents, f.categories,
                                f.intent_roots, options)
                   .ok());
}

TEST(CtrSimTest, ImpressionsCounted) {
  SimFixture f;
  FixedPoolRecommender r({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, "r");
  CtrSimOptions options;
  options.num_sessions = 100;
  options.slate_size = 4;
  auto result = RunCtrSimulation(r, r, f.intents, f.categories,
                                 f.intent_roots, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->control.impressions, 400u);
  EXPECT_EQ(result->treatment.impressions, 400u);
}

TEST(CtrSimTest, IntentMatchedArmWinsOverRandom) {
  // Intents in different roots so relevance separation is sharp; every
  // entity gets its own category so the navigational component is inert.
  std::vector<uint32_t> intents = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  std::vector<uint32_t> categories = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<uint32_t> intent_roots = {0, 1};
  // "Smart" arm recommends from the seed's intent group; "random" arm
  // recommends uniformly.
  class IntentRecommender : public Recommender {
   public:
    explicit IntentRecommender(const std::vector<uint32_t>& intents)
        : intents_(intents) {}
    std::vector<uint32_t> Recommend(uint32_t seed, size_t k,
                                    util::Rng& rng) const override {
      std::vector<uint32_t> slate;
      while (slate.size() < k) {
        uint32_t e = static_cast<uint32_t>(rng.Uniform(intents_.size()));
        if (e != seed && intents_[e] == intents_[seed]) slate.push_back(e);
      }
      return slate;
    }
    const char* name() const override { return "intent"; }

   private:
    const std::vector<uint32_t>& intents_;
  };
  IntentRecommender smart(intents);
  FixedPoolRecommender random({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, "random");
  CtrSimOptions options;
  options.num_sessions = 4000;
  options.seed = 9;
  auto result = RunCtrSimulation(random, smart, intents, categories,
                                 intent_roots, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->treatment.ctr(), result->control.ctr());
  EXPECT_GT(result->Lift(), 0.2);
}

TEST(CtrSimTest, IdenticalArmsHaveNearZeroLift) {
  SimFixture f;
  FixedPoolRecommender r({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, "same");
  CtrSimOptions options;
  options.num_sessions = 40000;
  auto result = RunCtrSimulation(r, r, f.intents, f.categories,
                                 f.intent_roots, options);
  ASSERT_TRUE(result.ok());
  // Arms draw independent samples, so only sampling noise remains:
  // ~40k sessions x 8 slots keeps the lift within a few percent.
  EXPECT_NEAR(result->Lift(), 0.0, 0.05);
}

TEST(CtrSimTest, DeterministicForSeed) {
  SimFixture f;
  FixedPoolRecommender r({0, 1, 2, 3, 4}, "r");
  CtrSimOptions options;
  options.num_sessions = 500;
  auto a = RunCtrSimulation(r, r, f.intents, f.categories, f.intent_roots,
                            options);
  auto b = RunCtrSimulation(r, r, f.intents, f.categories, f.intent_roots,
                            options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->control.clicks, b->control.clicks);
  EXPECT_EQ(a->treatment.clicks, b->treatment.clicks);
}

TEST(CtrSimTest, PositionDecayLowersDeepSlotClicks) {
  SimFixture f;
  FixedPoolRecommender r({0, 1, 2, 3, 4}, "r");
  CtrSimOptions strong_decay;
  strong_decay.num_sessions = 4000;
  strong_decay.position_decay = 0.3;
  CtrSimOptions no_decay = strong_decay;
  no_decay.position_decay = 1.0;
  auto with_decay = RunCtrSimulation(r, r, f.intents, f.categories,
                                     f.intent_roots, strong_decay);
  auto without = RunCtrSimulation(r, r, f.intents, f.categories,
                                  f.intent_roots, no_decay);
  ASSERT_TRUE(with_decay.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_LT(with_decay->control.ctr(), without->control.ctr());
}

TEST(CtrSimTest, ArmResultCtrMath) {
  ArmResult arm;
  EXPECT_EQ(arm.ctr(), 0.0);
  arm.impressions = 200;
  arm.clicks = 10;
  EXPECT_DOUBLE_EQ(arm.ctr(), 0.05);
  CtrSimResult result;
  result.control = arm;
  result.treatment.impressions = 200;
  result.treatment.clicks = 11;
  EXPECT_NEAR(result.Lift(), 0.1, 1e-12);
}

TEST(CtrSimTest, ZScoreBehaviour) {
  CtrSimResult result;
  // Empty arms: no evidence.
  EXPECT_EQ(result.ZScore(), 0.0);
  // Identical arms: z = 0.
  result.control.impressions = 10000;
  result.control.clicks = 500;
  result.treatment.impressions = 10000;
  result.treatment.clicks = 500;
  EXPECT_DOUBLE_EQ(result.ZScore(), 0.0);
  // Clearly better treatment: strongly positive z.
  result.treatment.clicks = 700;
  EXPECT_GT(result.ZScore(), 5.0);
  // Worse treatment: negative z.
  result.treatment.clicks = 300;
  EXPECT_LT(result.ZScore(), -5.0);
}

TEST(CtrSimTest, ZScoreScalesWithSampleSize) {
  CtrSimResult small;
  small.control = {1000, 50};
  small.treatment = {1000, 60};
  CtrSimResult large;
  large.control = {100000, 5000};
  large.treatment = {100000, 6000};
  EXPECT_GT(large.ZScore(), small.ZScore() * 5.0);
}

}  // namespace
}  // namespace shoal::eval
