#include "eval/precision_eval.h"

#include <gtest/gtest.h>

namespace shoal::eval {
namespace {

// Taxonomy with two topics: one pure, one 3/4 pure.
struct PrecisionFixture {
  core::Dendrogram dendrogram{8};
  core::Taxonomy taxonomy;
  // Topic A = {0,1,2,3} intents {7,7,7,7}; topic B = {4,5,6,7} intents
  // {8,8,8,9}.
  std::vector<uint32_t> intents{7, 7, 7, 7, 8, 8, 8, 9};

  PrecisionFixture() {
    auto chain = [this](uint32_t a, uint32_t b, uint32_t c, uint32_t e) {
      uint32_t m1 = dendrogram.Merge(a, b, 0.9).value();
      uint32_t m2 = dendrogram.Merge(m1, c, 0.8).value();
      (void)dendrogram.Merge(m2, e, 0.7).value();
    };
    chain(0, 1, 2, 3);
    chain(4, 5, 6, 7);
    core::TaxonomyOptions options;
    options.min_topic_size = 4;
    options.min_root_size = 4;
    taxonomy = core::Taxonomy::Build(dendrogram, intents, options);
    EXPECT_EQ(taxonomy.roots().size(), 2u);
  }
};

TEST(PrecisionEvalTest, ValidatesInputs) {
  PrecisionFixture f;
  std::vector<uint32_t> wrong_size = {1, 2};
  EXPECT_FALSE(EvaluatePlacementPrecision(f.taxonomy, wrong_size,
                                          PrecisionEvalOptions{})
                   .ok());
  PrecisionEvalOptions bad;
  bad.judge_noise = 2.0;
  EXPECT_FALSE(EvaluatePlacementPrecision(f.taxonomy, f.intents, bad).ok());
}

TEST(PrecisionEvalTest, NoiselessOracleMeasuresMajorityAgreement) {
  PrecisionFixture f;
  PrecisionEvalOptions options;
  options.topics_to_sample = 10;
  options.items_per_topic = 100;
  options.roots_only = true;
  auto result = EvaluatePlacementPrecision(f.taxonomy, f.intents, options);
  ASSERT_TRUE(result.ok());
  // Topic A: 4/4 correct; topic B: 3/4 correct -> 7/8 overall.
  EXPECT_EQ(result->topics_sampled, 2u);
  EXPECT_EQ(result->items_judged, 8u);
  EXPECT_NEAR(result->precision, 7.0 / 8.0, 1e-12);
}

TEST(PrecisionEvalTest, PerfectClusteringGivesFullPrecision) {
  PrecisionFixture f;
  std::vector<uint32_t> pure_intents = {7, 7, 7, 7, 8, 8, 8, 8};
  auto result = EvaluatePlacementPrecision(f.taxonomy, pure_intents,
                                           PrecisionEvalOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->precision, 1.0);
}

TEST(PrecisionEvalTest, SamplingCapsRespected) {
  PrecisionFixture f;
  PrecisionEvalOptions options;
  options.topics_to_sample = 1;
  options.items_per_topic = 2;
  options.roots_only = true;
  auto result = EvaluatePlacementPrecision(f.taxonomy, f.intents, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->topics_sampled, 1u);
  EXPECT_EQ(result->items_judged, 2u);
}

TEST(PrecisionEvalTest, JudgeNoiseFlipsVerdicts) {
  PrecisionFixture f;
  std::vector<uint32_t> pure_intents = {7, 7, 7, 7, 8, 8, 8, 8};
  PrecisionEvalOptions options;
  options.judge_noise = 1.0;  // every verdict flipped
  auto result = EvaluatePlacementPrecision(f.taxonomy, pure_intents, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->precision, 0.0);
}

TEST(PrecisionEvalTest, ModerateNoiseLowersPrecision) {
  PrecisionFixture f;
  std::vector<uint32_t> pure_intents = {7, 7, 7, 7, 8, 8, 8, 8};
  PrecisionEvalOptions options;
  options.judge_noise = 0.3;
  options.seed = 3;
  auto result = EvaluatePlacementPrecision(f.taxonomy, pure_intents, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->precision, 1.0);
  EXPECT_GT(result->precision, 0.3);
}

TEST(PrecisionEvalTest, MinTopicSizeFiltersTinyTopics) {
  PrecisionFixture f;
  PrecisionEvalOptions options;
  options.min_topic_size = 100;  // nothing qualifies
  auto result = EvaluatePlacementPrecision(f.taxonomy, f.intents, options);
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(PrecisionEvalTest, DeterministicForSeed) {
  PrecisionFixture f;
  PrecisionEvalOptions options;
  options.judge_noise = 0.2;
  options.seed = 42;
  auto a = EvaluatePlacementPrecision(f.taxonomy, f.intents, options);
  auto b = EvaluatePlacementPrecision(f.taxonomy, f.intents, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->precision, b->precision);
}

}  // namespace
}  // namespace shoal::eval
