#include "engine/bsp_engine.h"

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace shoal::engine {
namespace {

using IntEngine = BspEngine<int, int>;

IntEngine::Options SmallOptions(size_t partitions = 4, size_t threads = 2) {
  IntEngine::Options options;
  options.num_partitions = partitions;
  options.num_threads = threads;
  return options;
}

TEST(BspEngineTest, RejectsEmptyComputeFunction) {
  IntEngine engine(4, SmallOptions());
  EXPECT_FALSE(engine.Run(nullptr).ok());
}

TEST(BspEngineTest, HaltsImmediatelyWhenAllVote) {
  IntEngine engine(8, SmallOptions());
  auto status = engine.Run([](IntEngine::Context& ctx, uint32_t, int& value,
                              const std::vector<int>&) {
    value = 1;
    ctx.VoteToHalt();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(engine.superstep(), 1u);
  for (uint32_t v = 0; v < 8; ++v) EXPECT_EQ(engine.VertexValue(v), 1);
}

TEST(BspEngineTest, MessagesDeliveredNextSuperstep) {
  // Vertex 0 sends its id to vertex 1 in superstep 0; vertex 1 must see
  // it in superstep 1.
  IntEngine engine(2, SmallOptions());
  auto status = engine.Run([](IntEngine::Context& ctx, uint32_t v, int& value,
                              const std::vector<int>& messages) {
    if (ctx.superstep() == 0 && v == 0) {
      ctx.SendMessage(1, 41);
    }
    for (int m : messages) value = m + 1;
    ctx.VoteToHalt();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(engine.VertexValue(1), 42);
  EXPECT_EQ(engine.total_messages(), 1u);
}

TEST(BspEngineTest, MessageToInvalidVertexFails) {
  IntEngine engine(2, SmallOptions());
  auto status = engine.Run([](IntEngine::Context& ctx, uint32_t, int&,
                              const std::vector<int>&) {
    ctx.SendMessage(99, 1);
    ctx.VoteToHalt();
  });
  EXPECT_EQ(status.code(), util::StatusCode::kOutOfRange);
}

TEST(BspEngineTest, ChainPropagation) {
  // Value travels down a chain one hop per superstep: classic BSP.
  const size_t n = 6;
  IntEngine engine(n, SmallOptions());
  auto status = engine.Run([n](IntEngine::Context& ctx, uint32_t v,
                               int& value,
                               const std::vector<int>& messages) {
    if (ctx.superstep() == 0 && v == 0) {
      value = 1;
      ctx.SendMessage(1, 1);
    }
    for (int m : messages) {
      value = m;
      if (v + 1 < n) ctx.SendMessage(v + 1, m);
    }
    ctx.VoteToHalt();
  });
  ASSERT_TRUE(status.ok());
  for (uint32_t v = 0; v < n; ++v) EXPECT_EQ(engine.VertexValue(v), 1);
  EXPECT_EQ(engine.superstep(), n);  // n-1 hops + final quiescent step
}

TEST(BspEngineTest, CombinerFoldsMessages) {
  // All vertices send to vertex 0 with a max-combiner; vertex 0 must see
  // exactly one message carrying the max.
  const size_t n = 10;
  IntEngine engine(n, SmallOptions());
  engine.SetCombiner([](int& acc, const int& incoming) {
    acc = std::max(acc, incoming);
  });
  auto status = engine.Run([](IntEngine::Context& ctx, uint32_t v,
                              int& value,
                              const std::vector<int>& messages) {
    if (ctx.superstep() == 0) {
      ctx.SendMessage(0, static_cast<int>(v) * 10);
    } else if (!messages.empty()) {
      EXPECT_EQ(messages.size(), 1u);
      value = messages[0];
    }
    ctx.VoteToHalt();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(engine.VertexValue(0), 90);
}

TEST(BspEngineTest, AggregatorSumVisibleNextSuperstep) {
  const size_t n = 5;
  BspEngine<double, int> engine(n, {4, 2, 1000, PartitionStrategy::kRange});
  auto status = engine.Run(
      [](BspEngine<double, int>::Context& ctx, uint32_t v, double& value,
         const std::vector<int>&) {
        if (ctx.superstep() == 0) {
          ctx.AggregateSum("degree", 1.0);
          ctx.SendMessage(v, 0);  // keep self alive one more step
        } else {
          value = ctx.GetAggregate("degree");
        }
        ctx.VoteToHalt();
      });
  ASSERT_TRUE(status.ok());
  for (uint32_t v = 0; v < n; ++v) {
    EXPECT_DOUBLE_EQ(engine.VertexValue(v), 5.0);
  }
}

TEST(BspEngineTest, MaxSuperstepsBoundsRunawayPrograms) {
  IntEngine::Options options = SmallOptions();
  options.max_supersteps = 3;
  IntEngine engine(2, options);
  auto status = engine.Run([](IntEngine::Context& ctx, uint32_t v, int&,
                              const std::vector<int>&) {
    ctx.SendMessage(1 - v, 1);  // ping-pong forever
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(engine.superstep(), 3u);
}

TEST(BspEngineTest, DeterministicAcrossThreadCounts) {
  // Same program, 1 thread vs 4 threads: identical vertex values. The
  // program sums incoming neighbour ids over a ring.
  auto run_with_threads = [&](size_t threads) {
    const size_t n = 64;
    IntEngine::Options options;
    options.num_partitions = 8;
    options.num_threads = threads;
    IntEngine engine(n, options);
    auto status = engine.Run([n](IntEngine::Context& ctx, uint32_t v,
                                 int& value,
                                 const std::vector<int>& messages) {
      if (ctx.superstep() == 0) {
        ctx.SendMessage((v + 1) % n, static_cast<int>(v));
        ctx.SendMessage((v + n - 1) % n, static_cast<int>(v));
      }
      for (int m : messages) value += m;
      ctx.VoteToHalt();
    });
    EXPECT_TRUE(status.ok());
    std::vector<int> values;
    for (uint32_t v = 0; v < n; ++v) values.push_back(engine.VertexValue(v));
    return values;
  };
  EXPECT_EQ(run_with_threads(1), run_with_threads(4));
}

TEST(BspEngineTest, HaltedVertexReactivatedByMessage) {
  IntEngine engine(2, SmallOptions());
  auto status = engine.Run([](IntEngine::Context& ctx, uint32_t v, int& value,
                              const std::vector<int>& messages) {
    if (ctx.superstep() == 0) {
      if (v == 1) {
        ctx.VoteToHalt();  // vertex 1 halts immediately
        return;
      }
      ctx.SendMessage(1, 7);  // vertex 0 wakes it back up
      ctx.VoteToHalt();
      return;
    }
    for (int m : messages) value = m;  // must run again to see 7
    ctx.VoteToHalt();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(engine.VertexValue(1), 7);
}

TEST(BspEngineTest, InjectedPoolSpawnsNoThreads) {
  util::ThreadPool pool(2);
  const uint64_t threads_before = util::ThreadPool::TotalThreadsCreated();
  IntEngine::Options options = SmallOptions();
  options.pool = &pool;
  // Constructing and running several engines on a borrowed pool must not
  // create a single thread.
  for (int run = 0; run < 3; ++run) {
    IntEngine engine(16, options);
    auto status = engine.Run([](IntEngine::Context& ctx, uint32_t v,
                                int& value, const std::vector<int>& messages) {
      if (ctx.superstep() == 0) ctx.SendMessage((v + 1) % 16, 1);
      for (int m : messages) value += m;
      ctx.VoteToHalt();
    });
    ASSERT_TRUE(status.ok());
    for (uint32_t v = 0; v < 16; ++v) EXPECT_EQ(engine.VertexValue(v), 1);
  }
  EXPECT_EQ(util::ThreadPool::TotalThreadsCreated(), threads_before);
}

TEST(BspEngineTest, InjectedPoolMatchesOwnedPoolResults) {
  auto program = [](IntEngine::Context& ctx, uint32_t v, int& value,
                    const std::vector<int>& messages) {
    if (ctx.superstep() == 0) {
      ctx.SendMessage((v + 3) % 32, static_cast<int>(v));
    }
    for (int m : messages) value += m;
    ctx.VoteToHalt();
  };
  IntEngine owned(32, SmallOptions(5, 3));
  ASSERT_TRUE(owned.Run(program).ok());

  util::ThreadPool pool(3);
  IntEngine::Options options = SmallOptions(5, 3);
  options.pool = &pool;
  IntEngine borrowed(32, options);
  ASSERT_TRUE(borrowed.Run(program).ok());

  for (uint32_t v = 0; v < 32; ++v) {
    EXPECT_EQ(borrowed.VertexValue(v), owned.VertexValue(v)) << v;
  }
  EXPECT_EQ(borrowed.total_messages(), owned.total_messages());
  EXPECT_EQ(borrowed.superstep(), owned.superstep());
}

TEST(BspEngineTest, ActivateAllRestartsHaltedVertices) {
  IntEngine engine(4, SmallOptions());
  auto once = [](IntEngine::Context& ctx, uint32_t, int& value,
                 const std::vector<int>&) {
    ++value;
    ctx.VoteToHalt();
  };
  ASSERT_TRUE(engine.Run(once).ok());
  engine.ActivateAll();
  ASSERT_TRUE(engine.Run(once).ok());
  for (uint32_t v = 0; v < 4; ++v) EXPECT_EQ(engine.VertexValue(v), 2);
}

}  // namespace
}  // namespace shoal::engine
