#include "engine/partitioner.h"

#include <numeric>

#include <gtest/gtest.h>

namespace shoal::engine {
namespace {

TEST(PartitionerTest, RangePartitioningContiguous) {
  Partitioner p(10, 3, PartitionStrategy::kRange);
  EXPECT_EQ(p.num_partitions(), 3u);
  auto v0 = p.VerticesOf(0);
  auto v1 = p.VerticesOf(1);
  auto v2 = p.VerticesOf(2);
  EXPECT_EQ(v0.size() + v1.size() + v2.size(), 10u);
  // Contiguity: each partition's vertices are consecutive.
  for (size_t i = 1; i < v0.size(); ++i) EXPECT_EQ(v0[i], v0[i - 1] + 1);
  for (size_t i = 1; i < v1.size(); ++i) EXPECT_EQ(v1[i], v1[i - 1] + 1);
}

TEST(PartitionerTest, EveryVertexAssignedExactlyOnce) {
  for (auto strategy :
       {PartitionStrategy::kRange, PartitionStrategy::kHash}) {
    Partitioner p(100, 7, strategy);
    std::vector<int> seen(100, 0);
    for (uint32_t part = 0; part < 7; ++part) {
      for (uint32_t v : p.VerticesOf(part)) {
        EXPECT_EQ(p.PartitionOf(v), part);
        ++seen[v];
      }
    }
    for (int s : seen) EXPECT_EQ(s, 1);
  }
}

TEST(PartitionerTest, HashPartitioningRoughlyBalanced) {
  Partitioner p(10000, 8, PartitionStrategy::kHash);
  for (uint32_t part = 0; part < 8; ++part) {
    size_t size = p.VerticesOf(part).size();
    EXPECT_GT(size, 1000u);
    EXPECT_LT(size, 1500u);
  }
}

TEST(PartitionerTest, MorePartitionsThanVertices) {
  Partitioner p(3, 10, PartitionStrategy::kRange);
  size_t total = 0;
  for (uint32_t part = 0; part < 10; ++part) {
    total += p.VerticesOf(part).size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(PartitionerTest, ZeroPartitionsClampedToOne) {
  Partitioner p(5, 0);
  EXPECT_EQ(p.num_partitions(), 1u);
  EXPECT_EQ(p.VerticesOf(0).size(), 5u);
}

TEST(PartitionerTest, SinglePartitionOwnsEverything) {
  Partitioner p(42, 1, PartitionStrategy::kHash);
  EXPECT_EQ(p.VerticesOf(0).size(), 42u);
  EXPECT_EQ(p.PartitionOf(17), 0u);
}

TEST(PartitionerTest, EmptyVertexSet) {
  Partitioner p(0, 4);
  for (uint32_t part = 0; part < 4; ++part) {
    EXPECT_TRUE(p.VerticesOf(part).empty());
  }
}

}  // namespace
}  // namespace shoal::engine
