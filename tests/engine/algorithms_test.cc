#include "engine/algorithms.h"

#include <numeric>

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/generators.h"

namespace shoal::engine {
namespace {

TEST(BspConnectedComponentsTest, MatchesBfsReference) {
  auto g = graph::GenerateErdosRenyi(200, 0.01, 5);
  ASSERT_TRUE(g.ok());
  auto bsp = BspConnectedComponents(*g);
  ASSERT_TRUE(bsp.ok());
  size_t reference_count = 0;
  auto reference = graph::ConnectedComponents(*g, &reference_count);
  // Same partition: vertices agree on "same component" pairwise.
  // Compare via canonical min-id labels.
  std::vector<uint32_t> canonical(g->num_vertices());
  {
    std::vector<uint32_t> min_of_component(reference_count,
                                           graph::kInvalidVertex);
    for (uint32_t v = 0; v < g->num_vertices(); ++v) {
      min_of_component[reference[v]] =
          std::min(min_of_component[reference[v]], v);
    }
    for (uint32_t v = 0; v < g->num_vertices(); ++v) {
      canonical[v] = min_of_component[reference[v]];
    }
  }
  EXPECT_EQ(*bsp, canonical);
}

TEST(BspConnectedComponentsTest, PathGraphSingleComponent) {
  auto g = graph::GeneratePath(50);
  auto labels = BspConnectedComponents(g);
  ASSERT_TRUE(labels.ok());
  for (uint32_t l : *labels) EXPECT_EQ(l, 0u);
}

TEST(BspConnectedComponentsTest, IsolatedVerticesOwnLabels) {
  graph::WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  auto labels = BspConnectedComponents(g);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[0], 0u);
  EXPECT_EQ((*labels)[1], 1u);
  EXPECT_EQ((*labels)[2], 1u);
  EXPECT_EQ((*labels)[3], 3u);
}

TEST(BspPageRankTest, ValidatesDamping) {
  graph::WeightedGraph g(2);
  PageRankOptions options;
  options.damping = 1.5;
  EXPECT_FALSE(BspPageRank(g, options).ok());
}

TEST(BspPageRankTest, UniformOnRegularGraph) {
  // On a cycle every vertex has equal rank 1/n.
  const size_t n = 20;
  graph::WeightedGraph g(n);
  for (uint32_t v = 0; v < n; ++v) {
    ASSERT_TRUE(g.AddEdge(v, (v + 1) % n, 1.0).ok());
  }
  auto ranks = BspPageRank(g);
  ASSERT_TRUE(ranks.ok());
  for (double r : *ranks) EXPECT_NEAR(r, 1.0 / n, 1e-9);
}

TEST(BspPageRankTest, RanksSumToOne) {
  auto g = graph::GenerateErdosRenyi(100, 0.08, 7);
  ASSERT_TRUE(g.ok());
  auto ranks = BspPageRank(*g);
  ASSERT_TRUE(ranks.ok());
  double total = std::accumulate(ranks->begin(), ranks->end(), 0.0);
  // Isolated vertices leak a little mass; connected ER graphs at this
  // density have none with overwhelming probability.
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(BspPageRankTest, HubOutranksLeaves) {
  // Star graph: the hub collects rank from every leaf.
  const size_t n = 11;
  graph::WeightedGraph g(n);
  for (uint32_t leaf = 1; leaf < n; ++leaf) {
    ASSERT_TRUE(g.AddEdge(0, leaf, 1.0).ok());
  }
  auto ranks = BspPageRank(g);
  ASSERT_TRUE(ranks.ok());
  for (uint32_t leaf = 1; leaf < n; ++leaf) {
    EXPECT_GT((*ranks)[0], (*ranks)[leaf] * 3.0);
  }
}

TEST(BspPageRankTest, DeterministicAcrossThreadCounts) {
  auto g = graph::GenerateErdosRenyi(80, 0.1, 11);
  ASSERT_TRUE(g.ok());
  PageRankOptions one;
  one.run.num_threads = 1;
  PageRankOptions four;
  four.run.num_threads = 4;
  auto a = BspPageRank(*g, one);
  auto b = BspPageRank(*g, four);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t v = 0; v < a->size(); ++v) {
    EXPECT_DOUBLE_EQ((*a)[v], (*b)[v]);
  }
}

}  // namespace
}  // namespace shoal::engine
