#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"

namespace shoal::obs {
namespace {

// Deterministic SplitMix64 stream for reproducible sample sets.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = (*state += 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1).
double NextUnit(uint64_t* state) {
  return static_cast<double>(NextRand(state) >> 11) * 0x1.0p-53;
}

// The exact quantile the histogram estimate is judged against:
// the sample at rank ceil(q * n) of the sorted set.
double ExactQuantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, TracksLastValueAndHighWaterMark) {
  Gauge g;
  g.Set(3.0);
  g.Set(9.0);
  g.Set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.max(), 0.0);
}

TEST(HistogramMetricTest, RecordsMoments) {
  HistogramMetric h;
  h.Record(1.0);
  h.Record(3.0);
  auto snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 2.0);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 3.0);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(HistogramMetricTest, DefaultConstructionIsLogBucketed) {
  // The no-arg histogram — what GetHistogram(name) hands out — must be
  // quantile-capable, not the old single-stats fallback.
  HistogramMetric h;
  EXPECT_EQ(h.layout().kind, BucketLayout::Kind::kLog);
  EXPECT_GT(h.layout().num_buckets(), 100u);
  for (int i = 0; i < 1000; ++i) h.Record(static_cast<double>(i + 1));
  // Quantiles resolve instead of collapsing to min/max.
  const double p50 = h.Quantile(0.5);
  const double p99 = h.Quantile(0.99);
  EXPECT_GT(p50, 300.0);
  EXPECT_LT(p50, 700.0);
  EXPECT_GT(p99, p50);
}

TEST(HistogramMetricTest, QuantilesTrackExactValuesAcrossSixDecades) {
  // Latency-shaped samples spanning 1us .. 10s (in microseconds): the
  // log-bucketed estimate must stay within one bucket's relative width
  // (base 1.15 -> 15%, plus interpolation slack) of the exact
  // sorted-sample quantile at every probed q.
  HistogramMetric h;
  std::vector<double> samples;
  uint64_t state = 0x5ca1ab1e;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over [1, 1e7): decade u*7, mantissa via a second draw.
    const double sample = std::pow(10.0, NextUnit(&state) * 7.0);
    samples.push_back(sample);
    h.Record(sample);
  }
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
    const double exact = ExactQuantile(samples, q);
    const double estimate = h.Quantile(q);
    EXPECT_NEAR(estimate, exact, exact * 0.16)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(HistogramMetricTest, QuantileEdgesClampToObservedExtremes) {
  HistogramMetric h;
  h.Record(250.0);
  h.Record(500.0);
  h.Record(1000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 250.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
  EXPECT_LE(h.Quantile(0.5), 1000.0);
  EXPECT_GE(h.Quantile(0.5), 250.0);
}

TEST(HistogramMetricTest, UnderflowAndOverflowSamplesStayBounded) {
  HistogramMetric h;  // default layout covers [1e-6, 6e7)
  h.Record(0.0);      // underflow bucket
  h.Record(1e9);      // overflow bucket
  h.Record(-5.0);     // negative -> underflow
  auto snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_DOUBLE_EQ(snapshot.min, -5.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 1e9);
  // Overflow quantiles clamp to the observed max, not +inf.
  EXPECT_LE(h.Quantile(0.999), 1e9);
  EXPECT_TRUE(std::isfinite(h.Quantile(0.999)));
}

TEST(HistogramMetricTest, NonFiniteSamplesAreCountedNotRecorded) {
  HistogramMetric h;
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(std::numeric_limits<double>::infinity());
  h.Record(2.0);
  auto snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_EQ(snapshot.non_finite, 2u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 2.0);
}

TEST(HistogramMetricTest, LegacyLinearLayoutStillWorks) {
  HistogramMetric h(0.0, 100.0, 10);
  EXPECT_EQ(h.layout().kind, BucketLayout::Kind::kLinear);
  for (int i = 0; i < 100; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.Snapshot().count, 100u);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 10.0);  // one 10-wide bucket
}

TEST(HistogramMetricTest, ConcurrentShardedRecordingIsExact) {
  // Counts and sums are exact under concurrency (every Record lands in
  // exactly one shard; the snapshot merges all of them).
  HistogramMetric h;
  constexpr int kThreads = 8;
  constexpr int kSamples = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kSamples; ++i) {
        h.Record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  auto snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<uint64_t>(kThreads) * kSamples);
  // Sum of t+1 for t in [0,8) is 36, times kSamples.
  EXPECT_DOUBLE_EQ(snapshot.sum, 36.0 * kSamples);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 8.0);
}

TEST(HistogramSnapshotTest, MergeAccumulatesAcrossHistograms) {
  HistogramMetric a;
  HistogramMetric b;
  for (int i = 0; i < 100; ++i) a.Record(10.0);
  for (int i = 0; i < 100; ++i) b.Record(1000.0);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 200u);
  EXPECT_DOUBLE_EQ(merged.min, 10.0);
  EXPECT_DOUBLE_EQ(merged.max, 1000.0);
  EXPECT_NEAR(merged.Quantile(0.25), 10.0, 10.0 * 0.16);
  EXPECT_NEAR(merged.Quantile(0.75), 1000.0, 1000.0 * 0.16);
}

TEST(HistogramSnapshotTest, JsonCarriesQuantilesAndSparseBuckets) {
  HistogramMetric h;
  for (int i = 0; i < 1000; ++i) h.Record(100.0);
  auto parsed = util::JsonValue::Parse(h.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->Find("count")->number(), 1000.0);
  ASSERT_NE(parsed->Find("p50"), nullptr);
  ASSERT_NE(parsed->Find("p999"), nullptr);
  EXPECT_NEAR(parsed->Find("p50")->number(), 100.0, 16.0);
  // Sparse emission: one occupied bucket, not ~230 zeros.
  const util::JsonValue* bucket_counts = parsed->Find("bucket_counts");
  ASSERT_NE(bucket_counts, nullptr);
  EXPECT_EQ(bucket_counts->items().size(), 1u);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
  Gauge& g1 = registry.GetGauge("x.depth");
  Gauge& g2 = registry.GetGauge("x.depth");
  EXPECT_EQ(&g1, &g2);
  HistogramMetric& h1 = registry.GetHistogram("x.latency");
  HistogramMetric& h2 = registry.GetHistogram("x.latency");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromEightThreads) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread looks the metrics up itself, racing the map
      // creation path on top of the increments.
      Counter& counter = registry.GetCounter("race.count");
      Gauge& gauge = registry.GetGauge("race.depth");
      HistogramMetric& hist = registry.GetHistogram("race.latency");
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
        gauge.Set(static_cast<double>(i));
        hist.Record(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("race.count").value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.GetHistogram("race.latency").Snapshot().count,
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(registry.GetGauge("race.depth").max(), kIncrements - 1);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("a.count");
  counter.Increment(7);
  registry.GetGauge("a.depth").Set(4.0);
  registry.GetHistogram("a.latency").Record(2.0);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("a.depth").value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("a.latency").Snapshot().count, 0u);
}

TEST(MetricsRegistryTest, ToJsonParsesBackWithAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("stage.events").Increment(5);
  registry.GetGauge("stage.depth").Set(2.0);
  registry.GetHistogram("stage.latency", 0.0, 1.0, 10).Record(0.25);
  auto parsed = util::JsonValue::Parse(registry.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("stage.events"), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("stage.events")->number(), 5.0);
  const util::JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const util::JsonValue* depth = gauges->Find("stage.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->Find("value")->number(), 2.0);
  EXPECT_DOUBLE_EQ(depth->Find("max")->number(), 2.0);
  const util::JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const util::JsonValue* latency = histograms->Find("stage.latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->Find("count")->number(), 1.0);
  EXPECT_DOUBLE_EQ(latency->Find("mean")->number(), 0.25);
}

TEST(MetricsRegistryTest, EnableDisableFlag) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.enabled());
  registry.Enable();
  EXPECT_TRUE(registry.enabled());
  registry.Disable();
  EXPECT_FALSE(registry.enabled());
}

}  // namespace
}  // namespace shoal::obs
