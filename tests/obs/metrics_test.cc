#include "obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"

namespace shoal::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, TracksLastValueAndHighWaterMark) {
  Gauge g;
  g.Set(3.0);
  g.Set(9.0);
  g.Set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.max(), 0.0);
}

TEST(HistogramMetricTest, RecordsMoments) {
  HistogramMetric h;
  h.Record(1.0);
  h.Record(3.0);
  auto snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 2.0);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count(), 0u);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
  Gauge& g1 = registry.GetGauge("x.depth");
  Gauge& g2 = registry.GetGauge("x.depth");
  EXPECT_EQ(&g1, &g2);
  HistogramMetric& h1 = registry.GetHistogram("x.latency");
  HistogramMetric& h2 = registry.GetHistogram("x.latency");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromEightThreads) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread looks the metrics up itself, racing the map
      // creation path on top of the increments.
      Counter& counter = registry.GetCounter("race.count");
      Gauge& gauge = registry.GetGauge("race.depth");
      HistogramMetric& hist = registry.GetHistogram("race.latency");
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
        gauge.Set(static_cast<double>(i));
        hist.Record(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("race.count").value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.GetHistogram("race.latency").Snapshot().count(),
            static_cast<size_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(registry.GetGauge("race.depth").max(), kIncrements - 1);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("a.count");
  counter.Increment(7);
  registry.GetGauge("a.depth").Set(4.0);
  registry.GetHistogram("a.latency").Record(2.0);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("a.depth").value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("a.latency").Snapshot().count(), 0u);
}

TEST(MetricsRegistryTest, ToJsonParsesBackWithAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("stage.events").Increment(5);
  registry.GetGauge("stage.depth").Set(2.0);
  registry.GetHistogram("stage.latency", 0.0, 1.0, 10).Record(0.25);
  auto parsed = util::JsonValue::Parse(registry.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("stage.events"), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("stage.events")->number(), 5.0);
  const util::JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const util::JsonValue* depth = gauges->Find("stage.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->Find("value")->number(), 2.0);
  EXPECT_DOUBLE_EQ(depth->Find("max")->number(), 2.0);
  const util::JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const util::JsonValue* latency = histograms->Find("stage.latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->Find("count")->number(), 1.0);
  EXPECT_DOUBLE_EQ(latency->Find("mean")->number(), 0.25);
}

TEST(MetricsRegistryTest, EnableDisableFlag) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.enabled());
  registry.Enable();
  EXPECT_TRUE(registry.enabled());
  registry.Disable();
  EXPECT_FALSE(registry.enabled());
}

}  // namespace
}  // namespace shoal::obs
