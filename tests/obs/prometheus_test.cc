// Tests for the Prometheus text exposition (MetricsRegistry::
// RenderPrometheus) and the strict line checker (LintPrometheusText)
// that gates it in CI — each side validates the other: the renderer's
// output must pass the checker, and hand-corrupted variants must fail.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/prometheus_lint.h"

namespace shoal::obs {
namespace {

// A registry exercising every metric kind, dotted names included.
void PopulateRegistry(MetricsRegistry& registry) {
  registry.GetCounter("serve.requests.total").Increment(42);
  registry.GetCounter("serve.query.errors").Increment(1);
  registry.GetGauge("serve.index.version").Set(3.0);
  HistogramMetric& latency = registry.GetHistogram("serve.query.latency_us");
  for (int i = 0; i < 500; ++i) {
    latency.Record(static_cast<double>(i % 100 + 1));
  }
  latency.Record(1e9);  // overflow bucket must still lint
}

TEST(SanitizeMetricNameTest, RewritesToPrometheusAlphabet) {
  EXPECT_EQ(SanitizeMetricName("serve.query.latency_us"),
            "serve_query_latency_us");
  EXPECT_EQ(SanitizeMetricName("hac-round/merges"), "hac_round_merges");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeMetricName("already_fine:name"), "already_fine:name");
}

TEST(RenderPrometheusTest, OutputPassesTheStrictLinter) {
  MetricsRegistry registry;
  PopulateRegistry(registry);
  std::vector<std::string> families;
  auto status = LintPrometheusText(registry.RenderPrometheus(), &families);
  EXPECT_TRUE(status.ok()) << status.ToString();
  // Dotted names arrive sanitized; gauges add a _max family.
  EXPECT_NE(std::find(families.begin(), families.end(),
                      "serve_requests_total"), families.end());
  EXPECT_NE(std::find(families.begin(), families.end(),
                      "serve_query_latency_us"), families.end());
  EXPECT_NE(std::find(families.begin(), families.end(),
                      "serve_index_version"), families.end());
}

TEST(RenderPrometheusTest, HistogramSeriesAreCumulativeWithInf) {
  MetricsRegistry registry;
  PopulateRegistry(registry);
  const std::string text = registry.RenderPrometheus();
  // The linter enforces: le strictly increasing, counts cumulative, a
  // single +Inf bucket equal to _count, _sum present. Spot-check the
  // series exist at all, then trust the checker for the invariants.
  EXPECT_NE(text.find("serve_query_latency_us_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text.find("serve_query_latency_us_bucket{le=\"+Inf\"} 501"),
            std::string::npos);
  EXPECT_NE(text.find("serve_query_latency_us_count 501"),
            std::string::npos);
  EXPECT_NE(text.find("serve_query_latency_us_sum"), std::string::npos);
  EXPECT_TRUE(LintPrometheusText(text).ok());
}

TEST(RenderPrometheusTest, EmptyRegistryRendersEmptyValidExposition) {
  MetricsRegistry registry;
  EXPECT_TRUE(LintPrometheusText(registry.RenderPrometheus()).ok());
}

TEST(PrometheusLintTest, AcceptsCanonicalHandWrittenExposition) {
  const std::string text =
      "# HELP rpc_latency_us request latency\n"
      "# TYPE rpc_latency_us histogram\n"
      "rpc_latency_us_bucket{le=\"10\"} 3\n"
      "rpc_latency_us_bucket{le=\"100\"} 7\n"
      "rpc_latency_us_bucket{le=\"+Inf\"} 9\n"
      "rpc_latency_us_sum 421.5\n"
      "rpc_latency_us_count 9\n"
      "# TYPE up gauge\n"
      "up 1\n";
  std::vector<std::string> families;
  auto status = LintPrometheusText(text, &families);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(families.size(), 2u);
}

TEST(PrometheusLintTest, RejectsNonMonotonicLeLabels) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"100\"} 3\n"
      "h_bucket{le=\"10\"} 5\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 1\n"
      "h_count 5\n";
  auto status = LintPrometheusText(text);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("strictly increase"), std::string::npos);
}

TEST(PrometheusLintTest, RejectsNonCumulativeBucketCounts) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"10\"} 5\n"
      "h_bucket{le=\"100\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 1\n"
      "h_count 5\n";
  auto status = LintPrometheusText(text);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("cumulative"), std::string::npos);
}

TEST(PrometheusLintTest, RejectsCountDisagreeingWithInfBucket) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 1\n"
      "h_count 7\n";
  auto status = LintPrometheusText(text);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("_count"), std::string::npos);
}

TEST(PrometheusLintTest, RejectsMissingInfBucketOrSum) {
  EXPECT_FALSE(LintPrometheusText("# TYPE h histogram\n"
                                  "h_bucket{le=\"10\"} 5\n"
                                  "h_sum 1\nh_count 5\n")
                   .ok());
  EXPECT_FALSE(LintPrometheusText("# TYPE h histogram\n"
                                  "h_bucket{le=\"+Inf\"} 5\n"
                                  "h_count 5\n")
                   .ok());
}

TEST(PrometheusLintTest, RejectsBadNamesValuesAndStructure) {
  // Invalid metric name (dot).
  EXPECT_FALSE(LintPrometheusText("# TYPE a.b counter\na.b 1\n").ok());
  // Sample without a TYPE'd family.
  EXPECT_FALSE(LintPrometheusText("lonely 1\n").ok());
  // Value is not a number.
  EXPECT_FALSE(
      LintPrometheusText("# TYPE x counter\nx banana\n").ok());
  // Unterminated label value.
  EXPECT_FALSE(
      LintPrometheusText("# TYPE x counter\nx{a=\"b} 1\n").ok());
  // Duplicate TYPE.
  EXPECT_FALSE(LintPrometheusText("# TYPE x counter\n# TYPE x gauge\nx 1\n")
                   .ok());
  // Unknown TYPE.
  EXPECT_FALSE(LintPrometheusText("# TYPE x fancy\nx 1\n").ok());
}

TEST(PrometheusLintTest, AcceptsEscapesAndTimestamps) {
  const std::string text =
      "# TYPE x counter\n"
      "x{path=\"a\\\\b\\\"c\\nd\"} 7 1712345678\n";
  auto status = LintPrometheusText(text);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace shoal::obs
