#include "obs/trace.h"

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"

namespace shoal::obs {
namespace {

// The tracer is a process-wide singleton; every test starts from a
// clean, disabled state and restores it on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    ScopedSpan span("quiet");
    EXPECT_FALSE(span.active());
    span.AddArg("ignored", 1.0);
  }
  EXPECT_TRUE(Tracer::Global().CollectEvents().empty());
}

TEST_F(TraceTest, EnabledSpansRecordNameAndArgs) {
  Tracer::Global().Enable();
  {
    ScopedSpan span("stage");
    EXPECT_TRUE(span.active());
    span.AddArg("edges", 42.0);
  }
  auto events = Tracer::Global().CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "stage");
  EXPECT_EQ(events[0].depth, 0u);
  auto it = std::find_if(events[0].args.begin(), events[0].args.end(),
                         [](const auto& kv) { return kv.first == "edges"; });
  ASSERT_NE(it, events[0].args.end());
  EXPECT_DOUBLE_EQ(it->second, 42.0);
}

TEST_F(TraceTest, NestedSpansTrackDepth) {
  Tracer::Global().Enable();
  EXPECT_EQ(Tracer::Global().CurrentDepth(), 0u);
  {
    ScopedSpan outer("outer");
    EXPECT_EQ(Tracer::Global().CurrentDepth(), 1u);
    {
      ScopedSpan middle("middle");
      ScopedSpan inner("inner");
      EXPECT_EQ(Tracer::Global().CurrentDepth(), 3u);
    }
    EXPECT_EQ(Tracer::Global().CurrentDepth(), 1u);
  }
  auto events = Tracer::Global().CollectEvents();
  ASSERT_EQ(events.size(), 3u);
  uint32_t outer_depth = 0, middle_depth = 0, inner_depth = 0;
  for (const auto& e : events) {
    if (e.name == "outer") outer_depth = e.depth;
    if (e.name == "middle") middle_depth = e.depth;
    if (e.name == "inner") inner_depth = e.depth;
  }
  EXPECT_EQ(outer_depth, 0u);
  EXPECT_EQ(middle_depth, 1u);
  EXPECT_EQ(inner_depth, 2u);
}

TEST_F(TraceTest, EarlyEndClosesSpanMidScope) {
  Tracer::Global().Enable();
  ScopedSpan span("early");
  span.End();
  EXPECT_FALSE(span.active());
  span.End();  // idempotent
  EXPECT_EQ(Tracer::Global().CurrentDepth(), 0u);
  EXPECT_EQ(Tracer::Global().CollectEvents().size(), 1u);
}

TEST_F(TraceTest, SpansFromWorkerThreadsGetDistinctThreadIds) {
  Tracer::Global().Enable();
  {
    SHOAL_TRACE_SPAN("main_thread");
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([] { SHOAL_TRACE_SPAN("worker"); });
    }
    for (auto& w : workers) w.join();
  }
  auto events = Tracer::Global().CollectEvents();
  ASSERT_EQ(events.size(), 4u);
  std::set<uint32_t> thread_ids;
  for (const auto& e : events) thread_ids.insert(e.thread_id);
  EXPECT_EQ(thread_ids.size(), 4u);
  // Sorted by (thread_id, start_us).
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.thread_id != b.thread_id
                                          ? a.thread_id < b.thread_id
                                          : a.start_us < b.start_us;
                             }));
}

TEST_F(TraceTest, ChromeJsonParsesBackWithRequiredKeys) {
  Tracer::Global().Enable();
  {
    ScopedSpan span("json_span");
    span.AddArg("k", 1.5);
  }
  auto parsed = util::JsonValue::Parse(Tracer::Global().ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items().size(), 1u);
  const util::JsonValue& event = events->items()[0];
  ASSERT_NE(event.Find("name"), nullptr);
  EXPECT_EQ(event.Find("name")->string_value(), "json_span");
  ASSERT_NE(event.Find("ph"), nullptr);
  EXPECT_EQ(event.Find("ph")->string_value(), "X");
  EXPECT_NE(event.Find("ts"), nullptr);
  EXPECT_NE(event.Find("dur"), nullptr);
  EXPECT_NE(event.Find("pid"), nullptr);
  EXPECT_NE(event.Find("tid"), nullptr);
  const util::JsonValue* args = event.Find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->Find("k"), nullptr);
  EXPECT_DOUBLE_EQ(args->Find("k")->number(), 1.5);
}

TEST_F(TraceTest, ClearDropsRecordedEvents) {
  Tracer::Global().Enable();
  { SHOAL_TRACE_SPAN("before_clear"); }
  EXPECT_EQ(Tracer::Global().CollectEvents().size(), 1u);
  Tracer::Global().Clear();
  EXPECT_TRUE(Tracer::Global().CollectEvents().empty());
  // The thread re-registers transparently after a clear.
  { SHOAL_TRACE_SPAN("after_clear"); }
  auto events = Tracer::Global().CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after_clear");
}

TEST_F(TraceTest, SpanLatchedAtConstructionSurvivesMidSpanDisable) {
  Tracer::Global().Enable();
  {
    ScopedSpan span("latched");
    Tracer::Global().Disable();
  }
  EXPECT_EQ(Tracer::Global().CollectEvents().size(), 1u);
}

}  // namespace
}  // namespace shoal::obs
