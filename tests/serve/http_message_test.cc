#include "serve/http_message.h"

#include <gtest/gtest.h>

namespace shoal::serve {
namespace {

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("red+dress"), "red dress");
  EXPECT_EQ(UrlDecode("caf%C3%A9"), "caf\xc3\xa9");
  EXPECT_EQ(UrlDecode("a%2Fb%3Fc%3Dd"), "a/b?c=d");
  EXPECT_EQ(UrlDecode(""), "");
}

TEST(UrlDecodeTest, MalformedEscapesKeptVerbatim) {
  EXPECT_EQ(UrlDecode("100%"), "100%");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
  EXPECT_EQ(UrlDecode("%4"), "%4");
}

TEST(ParseRequestTargetTest, SplitsPathAndParams) {
  auto request =
      ParseRequestTarget("GET", "/v1/query?q=red+dress&k=5&flag");
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/v1/query");
  EXPECT_EQ(request.target, "/v1/query?q=red+dress&k=5&flag");
  ASSERT_EQ(request.params.size(), 3u);
  ASSERT_NE(request.Param("q"), nullptr);
  EXPECT_EQ(*request.Param("q"), "red dress");
  EXPECT_EQ(*request.Param("k"), "5");
  EXPECT_EQ(*request.Param("flag"), "");
  EXPECT_EQ(request.Param("missing"), nullptr);
}

TEST(ParseRequestTargetTest, FirstValueWinsForRepeatedParams) {
  auto request = ParseRequestTarget("GET", "/x?a=1&a=2");
  ASSERT_NE(request.Param("a"), nullptr);
  EXPECT_EQ(*request.Param("a"), "1");
}

TEST(ParseRequestTargetTest, NoQueryString) {
  auto request = ParseRequestTarget("GET", "/healthz");
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_TRUE(request.params.empty());
}

TEST(ParseRequestTargetTest, EncodedPathDecodes) {
  auto request = ParseRequestTarget("GET", "/v1/topic/%30");
  EXPECT_EQ(request.path, "/v1/topic/0");
}

TEST(HttpReasonPhraseTest, KnownAndUnknownCodes) {
  EXPECT_EQ(HttpReasonPhrase(200), "OK");
  EXPECT_EQ(HttpReasonPhrase(404), "Not Found");
  EXPECT_EQ(HttpReasonPhrase(500), "Internal Server Error");
  EXPECT_EQ(HttpReasonPhrase(418), "Unknown");
}

}  // namespace
}  // namespace shoal::serve
