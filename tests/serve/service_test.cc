#include "serve/service.h"

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/prometheus_lint.h"
#include "serve/access_log.h"
#include "serve_test_util.h"
#include "util/json.h"
#include "util/tsv.h"

namespace shoal::serve {
namespace {

std::shared_ptr<const ServingIndex> CompileShared(ServeFixture& f,
                                                  uint64_t version = 1) {
  CompileOptions options;
  options.version = version;
  auto index = f.CompileIndex(options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::make_shared<const ServingIndex>(std::move(index).value());
}

HttpRequest Get(const std::string& target) {
  return ParseRequestTarget("GET", target);
}

util::JsonValue MustParse(const std::string& body) {
  auto parsed = util::JsonValue::Parse(body);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << body;
  return parsed.ok() ? std::move(parsed).value() : util::JsonValue::Null();
}

TEST(ServiceQueryTest, KnownQueryReturnsRankedTopics) {
  ServeFixture f;
  ServingService service(CompileShared(f), ServiceOptions());
  auto response = service.Handle(Get("/v1/query?q=router&k=3"));
  EXPECT_EQ(response.status, 200);
  auto body = MustParse(response.body);
  EXPECT_EQ(body.Find("query")->string_value(), "router");
  EXPECT_EQ(body.Find("match")->string_value(), "exact");
  EXPECT_EQ(body.Find("index_version")->number(), 1.0);
  const auto& results = body.Find("results")->items();
  ASSERT_FALSE(results.empty());
  EXPECT_LE(results.size(), 3u);
  // Scores arrive best-first.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].Find("score")->number(),
              results[i].Find("score")->number());
  }
  // Each hit names a real topic with its root-first path.
  for (const auto& hit : results) {
    const auto& path = hit.Find("path")->items();
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back().number(), hit.Find("topic")->number());
  }
}

TEST(ServiceQueryTest, NormalizedFallbackMatches) {
  ServeFixture f;
  ServingService service(CompileShared(f), ServiceOptions());
  auto response = service.Handle(Get("/v1/query?q=BEACH+chair"));
  EXPECT_EQ(response.status, 200);
  auto body = MustParse(response.body);
  EXPECT_EQ(body.Find("match")->string_value(), "normalized");
  EXPECT_EQ(body.Find("normalized")->string_value(), "beach chair");
  EXPECT_FALSE(body.Find("results")->items().empty());
}

TEST(ServiceQueryTest, UnknownQueryIsEmptyNotError) {
  ServeFixture f;
  ServingService service(CompileShared(f), ServiceOptions());
  auto response = service.Handle(Get("/v1/query?q=zzz+unknown"));
  EXPECT_EQ(response.status, 200);
  auto body = MustParse(response.body);
  EXPECT_EQ(body.Find("match")->string_value(), "none");
  EXPECT_TRUE(body.Find("results")->items().empty());
}

TEST(ServiceQueryTest, ParameterValidation) {
  ServeFixture f;
  ServiceOptions options;
  options.max_k = 7;
  ServingService service(CompileShared(f), options);
  EXPECT_EQ(service.Handle(Get("/v1/query")).status, 400);        // no q
  EXPECT_EQ(service.Handle(Get("/v1/query?q=router&k=0")).status, 400);
  EXPECT_EQ(service.Handle(Get("/v1/query?q=router&k=abc")).status, 400);
  auto clamped = service.Handle(Get("/v1/query?q=router&k=999"));
  EXPECT_EQ(clamped.status, 200);
  EXPECT_EQ(MustParse(clamped.body).Find("k")->number(), 7.0);
}

TEST(ServiceTopicTest, TopicAndErrors) {
  ServeFixture f;
  auto index = CompileShared(f);
  ServingService service(index, ServiceOptions());
  auto response = service.Handle(Get("/v1/topic/0"));
  EXPECT_EQ(response.status, 200);
  auto body = MustParse(response.body);
  EXPECT_EQ(body.Find("topic")->number(), 0.0);
  EXPECT_EQ(body.Find("level")->number(),
            static_cast<double>(index->level(0)));
  ASSERT_NE(body.Find("children"), nullptr);

  EXPECT_EQ(service.Handle(Get("/v1/topic/99999")).status, 404);
  EXPECT_EQ(service.Handle(Get("/v1/topic/xyz")).status, 400);
  EXPECT_EQ(service.Handle(Get("/v1/topic/")).status, 400);
}

TEST(ServiceItemTest, ItemAndErrors) {
  ServeFixture f;
  auto index = CompileShared(f);
  ServingService service(index, ServiceOptions());
  auto response = service.Handle(Get("/v1/item/0"));
  EXPECT_EQ(response.status, 200);
  auto body = MustParse(response.body);
  EXPECT_EQ(body.Find("item")->number(), 0.0);
  EXPECT_EQ(body.Find("topic")->number(),
            static_cast<double>(index->entity_topic(0)));
  EXPECT_EQ(body.Find("category")->number(), 1.0);
  const auto& path = body.Find("path")->items();
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(body.Find("root_topic")->number(), path.front().number());

  EXPECT_EQ(service.Handle(Get("/v1/item/99999")).status, 404);
  EXPECT_EQ(service.Handle(Get("/v1/item/nan")).status, 400);
}

TEST(ServiceMiscTest, HealthzMetricsAndNotFound) {
  ServeFixture f;
  ServingService service(CompileShared(f, /*version=*/7), ServiceOptions());
  auto health = service.Handle(Get("/healthz"));
  EXPECT_EQ(health.status, 200);
  auto body = MustParse(health.body);
  EXPECT_EQ(body.Find("status")->string_value(), "ok");
  EXPECT_EQ(body.Find("index_version")->number(), 7.0);

  auto metrics = service.Handle(Get("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(util::JsonValue::Parse(metrics.body).ok());

  EXPECT_EQ(service.Handle(Get("/nope")).status, 404);
  EXPECT_EQ(service.Handle(ParseRequestTarget("PUT", "/v1/query?q=a")).status,
            405);
}

TEST(ServiceReadyzTest, ReadyServiceReports200WithVersionAndUptime) {
  ServeFixture f;
  ServingService service(CompileShared(f, /*version=*/9), ServiceOptions());
  EXPECT_TRUE(service.ready());
  auto response = service.Handle(Get("/readyz"));
  EXPECT_EQ(response.status, 200);
  auto body = MustParse(response.body);
  EXPECT_EQ(body.Find("status")->string_value(), "ready");
  EXPECT_EQ(body.Find("index_version")->number(), 9.0);
  EXPECT_GE(body.Find("uptime_seconds")->number(), 0.0);
  EXPECT_TRUE(body.Find("last_reload")->is_null());
}

TEST(ServiceReadyzTest, ReportsIndexFreshness) {
  ServeFixture f;
  ServingService service(CompileShared(f, /*version=*/3), ServiceOptions());
  auto body = MustParse(service.Handle(Get("/readyz")).body);
  // Installed at construction: a timestamp is present and staleness is
  // tiny but non-negative.
  ASSERT_NE(body.Find("index_installed_unix_ms"), nullptr);
  EXPECT_GT(body.Find("index_installed_unix_ms")->number(), 0.0);
  ASSERT_NE(body.Find("index_staleness_sec"), nullptr);
  EXPECT_GE(body.Find("index_staleness_sec")->number(), 0.0);
  EXPECT_LT(body.Find("index_staleness_sec")->number(), 60.0);

  // A swap refreshes the install time: staleness never exceeds the time
  // since the most recent SwapIndex.
  service.SwapIndex(CompileShared(f, /*version=*/4));
  auto after = MustParse(service.Handle(Get("/readyz")).body);
  EXPECT_EQ(after.Find("index_version")->number(), 4.0);
  EXPECT_GE(after.Find("index_installed_unix_ms")->number(),
            body.Find("index_installed_unix_ms")->number());
}

TEST(ServiceReadyzTest, UnreadyServiceHasNullFreshness) {
  ServingService service(nullptr, ServiceOptions());
  auto response = service.Handle(Get("/readyz"));
  EXPECT_EQ(response.status, 503);
  auto body = MustParse(response.body);
  EXPECT_TRUE(body.Find("index_installed_unix_ms")->is_null());
  EXPECT_TRUE(body.Find("index_staleness_sec")->is_null());
}

TEST(ServiceMetricsTest, StalenessGaugeTracksInstallAndProbes) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Enable();
  ServeFixture f;
  ServingService service(CompileShared(f), ServiceOptions());
  // Registered and reset at install; a /readyz probe refreshes it.
  (void)service.Handle(Get("/readyz"));
  const double probed = registry.GetGauge("serve.index.staleness_sec").value();
  EXPECT_GE(probed, 0.0);
  EXPECT_LT(probed, 60.0);
  service.SwapIndex(CompileShared(f, /*version=*/2));
  EXPECT_EQ(registry.GetGauge("serve.index.staleness_sec").value(), 0.0);
  registry.Disable();
}

TEST(ServiceRequestIdTest, GeneratesWhenAbsentEchoesWhenPresent) {
  ServeFixture f;
  ServingService service(CompileShared(f), ServiceOptions());

  auto anonymous = service.Handle(Get("/v1/query?q=router"));
  EXPECT_EQ(anonymous.request_id.size(), 16u);  // generated: 16 hex chars
  EXPECT_EQ(anonymous.request_id.find_first_not_of("0123456789abcdef"),
            std::string::npos);
  auto another = service.Handle(Get("/v1/query?q=router"));
  EXPECT_NE(anonymous.request_id, another.request_id);

  HttpRequest tagged = Get("/healthz");
  tagged.request_id = "caller-supplied.id-1";
  EXPECT_EQ(service.Handle(tagged).request_id, "caller-supplied.id-1");
}

TEST(ServiceMetricsTest, PrometheusFormatPassesStrictLinter) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Enable();
  ServeFixture f;
  ServingService service(CompileShared(f), ServiceOptions());
  (void)service.Handle(Get("/v1/query?q=router"));
  (void)service.Handle(Get("/healthz"));

  auto response = service.Handle(Get("/metrics?format=prometheus"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4; charset=utf-8");
  std::vector<std::string> families;
  auto status = obs::LintPrometheusText(response.body, &families);
  EXPECT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(service.Handle(Get("/metrics?format=xml")).status, 400);
  // Explicit json and the default agree.
  EXPECT_EQ(service.Handle(Get("/metrics?format=json")).status, 200);
  registry.Reset();
  registry.Disable();
}

// Observability must never change what callers see: the same request
// stream produces byte-identical bodies with metrics on or off.
TEST(ServiceObservabilityTest, BodiesAreByteIdenticalWithMetricsOnAndOff) {
  ServeFixture f;
  auto index = CompileShared(f);
  const std::vector<std::string> targets = {
      "/v1/query?q=router&k=3", "/v1/query?q=BEACH+chair",
      "/v1/topic/0",            "/v1/item/0",
      "/healthz",               "/nope",
  };
  auto& registry = obs::MetricsRegistry::Global();

  registry.Disable();
  ServingService off(index, ServiceOptions());
  std::vector<std::string> off_bodies;
  for (const auto& t : targets) off_bodies.push_back(off.Handle(Get(t)).body);

  registry.Enable();
  ServingService on(index, ServiceOptions());
  std::vector<std::string> on_bodies;
  for (const auto& t : targets) on_bodies.push_back(on.Handle(Get(t)).body);
  registry.Reset();
  registry.Disable();

  EXPECT_EQ(off_bodies, on_bodies);
}

TEST(ServiceCacheTest, RepeatHitsCacheAndStaysByteIdentical) {
  ServeFixture f;
  ServingService service(CompileShared(f), ServiceOptions());
  ASSERT_NE(service.cache(), nullptr);
  auto first = service.Handle(Get("/v1/query?q=router"));
  auto second = service.Handle(Get("/v1/query?q=router"));
  EXPECT_EQ(first.body, second.body);
  EXPECT_EQ(service.cache()->hits(), 1u);

  // Errors are not cached.
  (void)service.Handle(Get("/v1/topic/xyz"));
  (void)service.Handle(Get("/v1/topic/xyz"));
  EXPECT_EQ(service.cache()->hits(), 1u);
}

TEST(ServiceCacheTest, CacheDisabledWithZeroEntries) {
  ServeFixture f;
  ServiceOptions options;
  options.cache_entries = 0;
  ServingService service(CompileShared(f), options);
  EXPECT_EQ(service.cache(), nullptr);
  EXPECT_EQ(service.Handle(Get("/v1/query?q=router")).status, 200);
}

// The determinism acceptance criterion: the same request set produces
// byte-identical bodies no matter how many threads serve it.
TEST(ServiceDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  ServeFixture f;
  auto index = CompileShared(f);
  std::vector<std::string> targets;
  targets.push_back("/v1/query?q=router&k=5");
  targets.push_back("/v1/query?q=BEACH+chair");
  targets.push_back("/v1/query?q=misc");
  for (uint32_t t = 0; t < index->num_topics(); ++t) {
    targets.push_back("/v1/topic/" + std::to_string(t));
  }
  for (uint32_t e = 0; e < index->num_entities(); ++e) {
    targets.push_back("/v1/item/" + std::to_string(e));
  }

  // Reference: single-threaded, cache off.
  ServiceOptions no_cache;
  no_cache.cache_entries = 0;
  ServingService reference(index, no_cache);
  std::vector<std::string> expected;
  for (const auto& target : targets) {
    expected.push_back(reference.Handle(Get(target)).body);
  }

  for (size_t threads : {2, 8}) {
    ServingService service(index, ServiceOptions());  // cache on
    std::vector<std::string> got(targets.size());
    std::vector<std::thread> workers;
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < targets.size();
             i = next.fetch_add(1)) {
          got[i] = service.Handle(Get(targets[i])).body;
        }
      });
    }
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(got, expected) << threads << " threads";
  }
}

class ServiceReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_service_reload_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(ServiceReloadTest, ReloadSwapsVersionWithoutDroppingOld) {
  ServeFixture f;
  auto v1 = CompileShared(f, 1);
  const std::string path = Path("live.idx");
  {
    auto v2 = f.Compile(CompileOptions{.version = 2});
    ASSERT_TRUE(v2.ok());
    ASSERT_TRUE(WriteServingIndexFile(path, *v2).ok());
  }
  ServiceOptions options;
  options.index_path = path;
  ServingService service(v1, options);
  auto held = service.Acquire();  // an in-flight request's view

  auto response = service.Handle(Get("/admin/reload"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(MustParse(response.body).Find("index_version")->number(), 2.0);
  EXPECT_EQ(service.Acquire()->version(), 2u);
  EXPECT_EQ(held->version(), 1u);  // the old index outlives the swap
  EXPECT_EQ(
      MustParse(service.Handle(Get("/healthz")).body)
          .Find("index_version")
          ->number(),
      2.0);
}

TEST_F(ServiceReloadTest, CorruptFileKeepsOldIndexAndCountsFailure) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Enable();
  registry.Reset();
  ServeFixture f;
  const std::string path = Path("live.idx");
  ASSERT_TRUE(util::WriteTextFile(path, "garbage, not an index").ok());
  ServiceOptions options;
  options.index_path = path;
  ServingService service(CompileShared(f, 1), options);

  auto response = service.Handle(Get("/admin/reload"));
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(MustParse(response.body).Find("error"), nullptr);
  EXPECT_EQ(service.Acquire()->version(), 1u);  // old index still live
  EXPECT_EQ(service.Handle(Get("/v1/query?q=router")).status, 200);
  EXPECT_EQ(registry.GetCounter("serve.reload.failures").value(), 1u);
  registry.Reset();
  registry.Disable();
}

TEST_F(ServiceReloadTest, UnreadyServiceGates503UntilReloadInstallsIndex) {
  ServeFixture f;
  const std::string path = Path("live.idx");
  {
    auto index = f.Compile(CompileOptions{.version = 5});
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(WriteServingIndexFile(path, *index).ok());
  }
  ServiceOptions options;
  options.index_path = path;
  // Boot with no index at all: alive but unready.
  ServingService service(nullptr, options);
  EXPECT_FALSE(service.ready());
  EXPECT_EQ(service.Handle(Get("/healthz")).status, 200);  // liveness
  auto unready = service.Handle(Get("/readyz"));
  EXPECT_EQ(unready.status, 503);
  auto body = MustParse(unready.body);
  EXPECT_EQ(body.Find("status")->string_value(), "unready");
  EXPECT_TRUE(body.Find("index_version")->is_null());
  EXPECT_EQ(service.Handle(Get("/v1/query?q=router")).status, 503);
  EXPECT_EQ(service.Handle(Get("/v1/topic/0")).status, 503);
  EXPECT_EQ(service.Handle(Get("/metrics")).status, 200);  // obs stays up

  // Reload installs the index and flips readiness.
  EXPECT_EQ(service.Handle(Get("/admin/reload")).status, 200);
  EXPECT_TRUE(service.ready());
  auto ready = service.Handle(Get("/readyz"));
  EXPECT_EQ(ready.status, 200);
  body = MustParse(ready.body);
  EXPECT_EQ(body.Find("status")->string_value(), "ready");
  EXPECT_EQ(body.Find("index_version")->number(), 5.0);
  ASSERT_FALSE(body.Find("last_reload")->is_null());
  EXPECT_TRUE(body.Find("last_reload")->Find("ok")->bool_value());
  EXPECT_EQ(service.Handle(Get("/v1/query?q=router")).status, 200);
}

TEST_F(ServiceReloadTest, AccessAndSlowLogsCaptureRequests) {
  ServeFixture f;
  auto access = AccessLog::Open(Path("access.log"));
  ASSERT_TRUE(access.ok());
  auto slow = AccessLog::Open(Path("slow.log"));
  ASSERT_TRUE(slow.ok());
  ServiceOptions options;
  options.access_log = access->get();
  options.slow_log = slow->get();
  options.slow_request_us = 1e-3;  // everything counts as slow
  ServingService service(CompileShared(f, /*version=*/4), options);

  (void)service.Handle(Get("/v1/query?q=router"));
  (void)service.Handle(Get("/v1/query?q=router"));  // cache hit
  (void)service.Handle(Get("/nope"));
  EXPECT_EQ((*access)->lines_written(), 3u);
  EXPECT_EQ((*slow)->lines_written(), 3u);

  auto text = util::ReadTextFile(Path("access.log"));
  ASSERT_TRUE(text.ok());
  std::vector<util::JsonValue> entries;
  size_t start = 0;
  while (start < text->size()) {
    size_t end = text->find('\n', start);
    ASSERT_NE(end, std::string::npos);
    auto parsed = util::JsonValue::Parse(
        std::string_view(text->data() + start, end - start));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    entries.push_back(std::move(parsed).value());
    start = end + 1;
  }
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].Find("endpoint")->string_value(), "query");
  EXPECT_EQ(entries[0].Find("status")->number(), 200.0);
  EXPECT_FALSE(entries[0].Find("cache_hit")->bool_value());
  EXPECT_TRUE(entries[1].Find("cache_hit")->bool_value());
  EXPECT_EQ(entries[1].Find("index_version")->number(), 4.0);
  EXPECT_EQ(entries[2].Find("status")->number(), 404.0);
  EXPECT_GE(entries[0].Find("latency_us")->number(), 0.0);
  EXPECT_FALSE(entries[0].Find("request_id")->string_value().empty());
  EXPECT_EQ(entries[0].Find("bytes")->number(),
            static_cast<double>(
                service.Handle(Get("/v1/query?q=router")).body.size()));
}

TEST_F(ServiceReloadTest, ReloadWithoutPathFailsCleanly) {
  ServeFixture f;
  ServingService service(CompileShared(f), ServiceOptions());
  EXPECT_EQ(service.Handle(Get("/admin/reload")).status, 500);
  EXPECT_EQ(service.Acquire()->version(), 1u);
}

// The tentpole guarantee of the RCU read path: Handle() never blocks on
// a swap, every response is consistently old-version or new-version,
// and held snapshots survive any number of swaps. Run under TSan this
// also proves the read path is data-race free.
TEST(ServiceLockFreeTest, HandleRacesSwapsWithoutTearing) {
  ServeFixture f;
  auto v1 = CompileShared(f, 1);
  auto v2 = CompileShared(f, 2);
  ServiceOptions options;
  options.cache_entries = 0;  // keep the read path mutex-free
  ServingService service(v1, options);
  const uint64_t boot_epoch = service.index_epoch();

  std::atomic<bool> done{false};
  std::atomic<size_t> served{0};
  std::vector<std::thread> readers;
  for (int w = 0; w < 4; ++w) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto response = service.Handle(Get("/v1/query?q=router"));
        ASSERT_EQ(response.status, 200);
        auto body = MustParse(response.body);
        const double version = body.Find("index_version")->number();
        ASSERT_TRUE(version == 1.0 || version == 2.0) << version;
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr int kSwaps = 200;
  for (int i = 0; i < kSwaps; ++i) {
    service.SwapIndex(i % 2 == 0 ? v2 : v1);
  }
  // Keep the race window open until every reader demonstrably served
  // requests against the swapped indexes.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (served.load(std::memory_order_relaxed) < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(service.index_epoch(), boot_epoch + kSwaps);
  EXPECT_GT(served.load(), 0u);
  // Both generations stayed alive throughout: the fixture still holds
  // its own references, so neither could have been freed mid-read.
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v2->version(), 2u);
}

}  // namespace
}  // namespace shoal::serve
