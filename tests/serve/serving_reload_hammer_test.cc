// The end-to-end hot-swap hammer, written to run under TSan: epoll
// socket load on the data plane while an admin thread publishes
// good / corrupt / good index files and reloads. The acceptance bar is
// the serving SLO itself — zero transport errors, zero 5xx on data
// endpoints, and every response version-atomic (reporting a version
// that was actually published, never a torn mix).

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http_server.h"
#include "serve/serving_index.h"
#include "serve_test_util.h"
#include "util/json.h"
#include "util/tsv.h"

namespace shoal::serve {
namespace {

class ReloadHammerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_reload_hammer_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    live_path_ = (dir_ / "live.idx").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void PublishVersion(uint64_t v) {
    auto data = fixture_.Compile(CompileOptions{.version = v});
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_TRUE(WriteServingIndexFile(live_path_, *data).ok());
  }

  std::filesystem::path dir_;
  std::string live_path_;
  ServeFixture fixture_;
};

TEST_F(ReloadHammerTest, GoodCorruptGoodSwapsUnderSocketLoad) {
  PublishVersion(1);
  auto v1 = fixture_.CompileIndex(CompileOptions{.version = 1});
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();

  ServiceOptions service_options;
  service_options.index_path = live_path_;
  service_options.cache_entries = 0;  // keep the data plane lock-free
  ServingService service(
      std::make_shared<const ServingIndex>(std::move(v1).value()),
      service_options);
  HttpServerOptions server_options;
  server_options.port = 0;
  server_options.threads = 4;
  HttpServer server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> transport_errors{0};
  std::atomic<int> data_5xx{0};
  std::atomic<int> torn_versions{0};
  std::atomic<int> served{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto fetched =
            HttpFetch(server.host(), server.port(), "/v1/query?q=router");
        if (!fetched.ok()) {
          transport_errors.fetch_add(1);
          continue;
        }
        if (fetched->status >= 500) data_5xx.fetch_add(1);
        auto parsed = util::JsonValue::Parse(fetched->body);
        if (!parsed.ok()) {
          torn_versions.fetch_add(1);
        } else if (fetched->status == 200) {
          const auto* version = parsed->Find("index_version");
          const bool sane = version != nullptr &&
                            (version->number() == 1.0 ||
                             version->number() == 2.0);
          if (!sane) torn_versions.fetch_add(1);
        }
        served.fetch_add(1);
      }
    });
  }

  auto reload = [&](int want_status) {
    auto fetched =
        HttpFetch(server.host(), server.port(), "/admin/reload");
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    EXPECT_EQ(fetched->status, want_status);
  };

  while (served.load() < 20) std::this_thread::yield();
  for (int round = 0; round < 3; ++round) {
    PublishVersion(2);
    reload(200);
    int target = served.load() + 10;
    while (served.load() < target) std::this_thread::yield();

    // A corrupt publish is refused on the admin plane only; the data
    // plane keeps answering from the last good index.
    ASSERT_TRUE(util::WriteTextFile(live_path_, "corrupt bytes").ok());
    reload(500);
    target = served.load() + 10;
    while (served.load() < target) std::this_thread::yield();

    PublishVersion(1);
    reload(200);
    target = served.load() + 10;
    while (served.load() < target) std::this_thread::yield();
  }

  stop.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();
  server.Stop();

  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(data_5xx.load(), 0);
  EXPECT_EQ(torn_versions.load(), 0);
  EXPECT_GT(served.load(), 100);
}

}  // namespace
}  // namespace shoal::serve
