#include "serve/serving_index.h"

#include <algorithm>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/topic_describer.h"
#include "serve_test_util.h"
#include "text/normalize.h"
#include "util/tsv.h"

namespace shoal::serve {
namespace {

TEST(ServingIndexCompileTest, CompilesFixture) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  auto index = data->Build();
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_topics(), f.taxonomy.num_topics());
  EXPECT_EQ(index->num_entities(), 4u);
  EXPECT_GT(index->num_queries(), 0u);
  EXPECT_EQ(index->roots().size(), 2u);
  EXPECT_FALSE(index->mmap_backed());
  EXPECT_GT(index->resident_bytes(), 0u);
  for (uint32_t e = 0; e < 4; ++e) {
    EXPECT_EQ(index->entity_topic(e), f.taxonomy.TopicOfEntity(e));
    EXPECT_EQ(index->entity_category(e), f.categories[e]);
  }
}

TEST(ServingIndexCompileTest, NullCategoriesBecomeNoCategory) {
  ServeFixture f;
  auto data = CompileServingIndex(f.taxonomy, f.Input(),
                                  core::DescriberOptions(), nullptr,
                                  CompileOptions());
  ASSERT_TRUE(data.ok());
  for (uint32_t e = 0; e < 4; ++e) {
    EXPECT_EQ(data->entity_category[e], kNoCategoryId);
  }
}

// The acceptance criterion of the serving tier: for every interned
// query, the first posting is the argmax over topics of the offline
// r(q, t) produced by TopicDescriber.
TEST(ServingIndexCompileTest, TopPostingIsOfflineArgmax) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());

  core::Taxonomy scored = f.taxonomy;
  auto input = f.Input();
  input.taxonomy = &scored;
  auto rankings = core::TopicDescriber::Describe(scored, input,
                                                 core::DescriberOptions());
  ASSERT_TRUE(rankings.ok());

  for (size_t q = 0; q < data->query_text.size(); ++q) {
    ASSERT_FALSE(data->posting_list[q].empty());
    // Recover the original query id through the raw text (interning
    // preserves the text verbatim).
    const std::string& raw = data->query_text[q];
    auto it = std::find(f.query_texts.begin(), f.query_texts.end(), raw);
    ASSERT_NE(it, f.query_texts.end());
    const uint32_t original =
        static_cast<uint32_t>(it - f.query_texts.begin());
    double best_score = -1.0;
    uint32_t best_topic = core::kNoTopic;
    for (uint32_t t = 0; t < scored.num_topics(); ++t) {
      for (const auto& entry : (*rankings)[t]) {
        if (entry.query != original) continue;
        if (entry.representativeness > best_score ||
            (entry.representativeness == best_score && t < best_topic)) {
          best_score = entry.representativeness;
          best_topic = t;
        }
      }
    }
    EXPECT_EQ(data->posting_list[q].front().topic, best_topic)
        << "query \"" << raw << "\"";
    EXPECT_DOUBLE_EQ(data->posting_list[q].front().score, best_score);
  }
}

TEST(ServingIndexCompileTest, PostingCapKeepsBestFirst) {
  ServeFixture f;
  CompileOptions options;
  options.max_postings_per_query = 1;
  auto capped = f.Compile(options);
  auto full = f.Compile();
  ASSERT_TRUE(capped.ok());
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(capped->query_text.size(), full->query_text.size());
  for (size_t q = 0; q < capped->query_text.size(); ++q) {
    ASSERT_EQ(capped->posting_list[q].size(), 1u);
    EXPECT_EQ(capped->posting_list[q][0], full->posting_list[q][0]);
  }
}

TEST(ServingIndexFindTest, ExactThenNormalizedThenMiss) {
  ServeFixture f;
  auto index = f.CompileIndex();
  ASSERT_TRUE(index.ok());

  const auto exact = index->Find("Beach  Chair");
  EXPECT_EQ(exact.match, ServingIndex::Lookup::Match::kExact);
  ASSERT_NE(exact.query, kNoQuery);
  EXPECT_EQ(index->query_text(exact.query), "Beach  Chair");

  // Any text normalizing to "beach chair" resolves through the
  // normalized dictionary.
  for (const char* variant : {"beach chair", "BEACH   CHAIR", " beach\tchair "}) {
    const auto normalized = index->Find(variant);
    EXPECT_EQ(normalized.match, ServingIndex::Lookup::Match::kNormalized)
        << variant;
    EXPECT_EQ(normalized.query, exact.query) << variant;
  }

  const auto miss = index->Find("no such query");
  EXPECT_EQ(miss.match, ServingIndex::Lookup::Match::kNone);
  EXPECT_EQ(miss.query, kNoQuery);
}

TEST(ServingIndexTreeTest, ChildrenAndPathAgreeWithTaxonomy) {
  ServeFixture f;
  auto index = f.CompileIndex();
  ASSERT_TRUE(index.ok());
  for (uint32_t t = 0; t < index->num_topics(); ++t) {
    auto [first, last] = index->children(t);
    std::vector<uint32_t> children(first, last);
    std::vector<uint32_t> expected = f.taxonomy.topic(t).children;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(children, expected) << "topic " << t;

    const auto path = index->PathToRoot(t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), t);
    EXPECT_EQ(index->parent(path.front()), core::kNoTopic);
    for (size_t i = 1; i < path.size(); ++i) {
      EXPECT_EQ(index->parent(path[i]), path[i - 1]);
    }
  }
}

// The frozen flat image must agree with the builder data on every
// accessor — this is the bridge the whole serving tier stands on.
TEST(ServingIndexBuildTest, FlatImageMatchesBuilderData) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  auto index = data->Build();
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  ASSERT_EQ(index->num_topics(), data->parent.size());
  for (uint32_t t = 0; t < index->num_topics(); ++t) {
    EXPECT_EQ(index->parent(t), data->parent[t]);
    EXPECT_EQ(index->level(t), data->level[t]);
    EXPECT_EQ(index->topic_size(t), data->topic_size[t]);
    ASSERT_EQ(index->num_descriptions(t), data->descriptions[t].size());
    for (size_t d = 0; d < data->descriptions[t].size(); ++d) {
      EXPECT_EQ(index->description(t, d), data->descriptions[t][d]);
    }
  }
  ASSERT_EQ(index->num_queries(), data->query_text.size());
  for (uint32_t q = 0; q < index->num_queries(); ++q) {
    EXPECT_EQ(index->query_text(q), data->query_text[q]);
    EXPECT_EQ(index->query_norm(q), data->query_norm[q]);
    const auto span = index->postings(q);
    ASSERT_EQ(span.size(), data->posting_list[q].size());
    for (size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(span[i], data->posting_list[q][i]);
    }
  }
}

TEST(ServingIndexCodecTest, EncodeDecodeRoundtrips) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  auto decoded = DecodeServingIndex(EncodeServingIndex(*data));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, data->version);
  EXPECT_EQ(decoded->parent, data->parent);
  EXPECT_EQ(decoded->level, data->level);
  EXPECT_EQ(decoded->topic_size, data->topic_size);
  EXPECT_EQ(decoded->descriptions, data->descriptions);
  EXPECT_EQ(decoded->entity_topic, data->entity_topic);
  EXPECT_EQ(decoded->entity_category, data->entity_category);
  EXPECT_EQ(decoded->query_text, data->query_text);
  EXPECT_EQ(decoded->query_norm, data->query_norm);
  EXPECT_EQ(decoded->posting_list, data->posting_list);
}

class ServingIndexFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_serving_idx_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

void ExpectSameContent(const ServingIndex& a, const ServingIndexData& b) {
  ASSERT_EQ(a.num_queries(), b.query_text.size());
  for (uint32_t q = 0; q < a.num_queries(); ++q) {
    EXPECT_EQ(a.query_text(q), b.query_text[q]);
    const auto span = a.postings(q);
    ASSERT_EQ(span.size(), b.posting_list[q].size());
    for (size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(span[i], b.posting_list[q][i]);
    }
  }
}

TEST_F(ServingIndexFileTest, V2FileRoundtripsViaMmap) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  const std::string path = Path("rt.idx");
  ASSERT_TRUE(WriteServingIndexFile(path, *data).ok());
  auto loaded = ReadServingIndexFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->mmap_backed());
  ExpectSameContent(*loaded, *data);
}

TEST_F(ServingIndexFileTest, V2FileRoundtripsViaCopy) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  const std::string path = Path("rt.idx");
  ASSERT_TRUE(WriteServingIndexFile(path, *data).ok());
  LoadOptions options;
  options.use_mmap = false;
  auto loaded = ReadServingIndexFile(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->mmap_backed());
  ExpectSameContent(*loaded, *data);
}

TEST_F(ServingIndexFileTest, DeepValidationPassesOnGoodFile) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  const std::string path = Path("deep.idx");
  ASSERT_TRUE(WriteServingIndexFile(path, *data).ok());
  LoadOptions options;
  options.deep_validate = true;
  auto loaded = ReadServingIndexFile(path, options);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

// The previous on-disk generation still loads (via decode + rebuild),
// so serving binaries can roll forward before index publishers do.
TEST_F(ServingIndexFileTest, V1FileLoadsThroughCompatibilityPath) {
  ServeFixture f;
  CompileOptions compile;
  compile.version = 42;
  auto data = f.Compile(compile);
  ASSERT_TRUE(data.ok());
  const std::string path = Path("legacy.idx");
  ASSERT_TRUE(WriteServingIndexFileV1(path, *data).ok());
  auto loaded = ReadServingIndexFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version(), 42u);
  EXPECT_FALSE(loaded->mmap_backed());  // v1 copies + rebuilds
  ExpectSameContent(*loaded, *data);
}

TEST(ServingIndexValidateTest, RejectsChildBeforeParent) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  ASSERT_GE(data->parent.size(), 2u);
  data->parent[0] = 1;  // parent id >= topic id
  EXPECT_FALSE(data->Validate().ok());
  EXPECT_FALSE(data->Build().ok());
}

TEST(ServingIndexValidateTest, RejectsUnsortedPostings) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  ASSERT_FALSE(data->posting_list.empty());
  auto& postings = data->posting_list[0];
  if (postings.size() < 2) {
    postings.push_back(postings[0]);  // duplicate topic also invalid
  } else {
    std::swap(postings.front(), postings.back());
  }
  EXPECT_FALSE(data->Validate().ok());
}

TEST(ServingIndexValidateTest, RejectsNormalizerSkew) {
  // A stored normalized form that today's NormalizeQuery would not
  // produce means the artefact was built by a different normalizer —
  // serving it would silently miss lookups, so loading must fail.
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  ASSERT_GT(data->query_text.size(), 0u);
  data->query_norm[0] = data->query_norm[0] + " skewed";
  EXPECT_FALSE(data->Validate().ok());
}

TEST(ServingIndexValidateTest, RejectsOutOfRangePostingTopic) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  ASSERT_FALSE(data->posting_list.empty());
  ASSERT_FALSE(data->posting_list[0].empty());
  data->posting_list[0][0].topic =
      static_cast<uint32_t>(data->parent.size());
  EXPECT_FALSE(data->Validate().ok());
}

TEST(ServingIndexValidateTest, RejectsNonFiniteScore) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  ASSERT_FALSE(data->posting_list.empty());
  ASSERT_FALSE(data->posting_list[0].empty());
  data->posting_list[0][0].score =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(data->Validate().ok());
}

TEST(ServingIndexValidateTest, NormStoredMatchesSharedNormalizer) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  for (size_t q = 0; q < data->query_text.size(); ++q) {
    EXPECT_EQ(data->query_norm[q],
              text::NormalizeQuery(data->query_text[q]));
  }
}

}  // namespace
}  // namespace shoal::serve
