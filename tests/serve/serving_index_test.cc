#include "serve/serving_index.h"

#include <algorithm>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/topic_describer.h"
#include "serve_test_util.h"
#include "text/normalize.h"
#include "util/tsv.h"

namespace shoal::serve {
namespace {

TEST(ServingIndexCompileTest, CompilesFixture) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_topics(), f.taxonomy.num_topics());
  EXPECT_EQ(index->num_entities(), 4u);
  EXPECT_GT(index->num_queries(), 0u);
  EXPECT_EQ(index->roots().size(), 2u);
  for (uint32_t e = 0; e < 4; ++e) {
    EXPECT_EQ(index->entity_topic[e], f.taxonomy.TopicOfEntity(e));
    EXPECT_EQ(index->entity_category[e], f.categories[e]);
  }
}

TEST(ServingIndexCompileTest, NullCategoriesBecomeNoCategory) {
  ServeFixture f;
  auto index = CompileServingIndex(f.taxonomy, f.Input(),
                                   core::DescriberOptions(), nullptr,
                                   CompileOptions());
  ASSERT_TRUE(index.ok());
  for (uint32_t e = 0; e < 4; ++e) {
    EXPECT_EQ(index->entity_category[e], kNoCategoryId);
  }
}

// The acceptance criterion of the serving tier: for every interned
// query, the first posting is the argmax over topics of the offline
// r(q, t) produced by TopicDescriber.
TEST(ServingIndexCompileTest, TopPostingIsOfflineArgmax) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());

  core::Taxonomy scored = f.taxonomy;
  auto input = f.Input();
  input.taxonomy = &scored;
  auto rankings = core::TopicDescriber::Describe(scored, input,
                                                 core::DescriberOptions());
  ASSERT_TRUE(rankings.ok());

  for (size_t q = 0; q < index->num_queries(); ++q) {
    ASSERT_FALSE(index->posting_list[q].empty());
    // Recover the original query id through the raw text (interning
    // preserves the text verbatim).
    const std::string& raw = index->query_text[q];
    auto it = std::find(f.query_texts.begin(), f.query_texts.end(), raw);
    ASSERT_NE(it, f.query_texts.end());
    const uint32_t original =
        static_cast<uint32_t>(it - f.query_texts.begin());
    double best_score = -1.0;
    uint32_t best_topic = core::kNoTopic;
    for (uint32_t t = 0; t < scored.num_topics(); ++t) {
      for (const auto& entry : (*rankings)[t]) {
        if (entry.query != original) continue;
        if (entry.representativeness > best_score ||
            (entry.representativeness == best_score && t < best_topic)) {
          best_score = entry.representativeness;
          best_topic = t;
        }
      }
    }
    EXPECT_EQ(index->posting_list[q].front().topic, best_topic)
        << "query \"" << raw << "\"";
    EXPECT_DOUBLE_EQ(index->posting_list[q].front().score, best_score);
  }
}

TEST(ServingIndexCompileTest, PostingCapKeepsBestFirst) {
  ServeFixture f;
  CompileOptions options;
  options.max_postings_per_query = 1;
  auto capped = f.Compile(options);
  auto full = f.Compile();
  ASSERT_TRUE(capped.ok());
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(capped->num_queries(), full->num_queries());
  for (size_t q = 0; q < capped->num_queries(); ++q) {
    ASSERT_EQ(capped->posting_list[q].size(), 1u);
    EXPECT_EQ(capped->posting_list[q][0], full->posting_list[q][0]);
  }
}

TEST(ServingIndexFindTest, ExactThenNormalizedThenMiss) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());

  const auto exact = index->Find("Beach  Chair");
  EXPECT_EQ(exact.match, ServingIndex::Lookup::Match::kExact);
  ASSERT_NE(exact.query, kNoQuery);
  EXPECT_EQ(index->query_text[exact.query], "Beach  Chair");

  // Any text normalizing to "beach chair" resolves through the
  // normalized dictionary.
  for (const char* variant : {"beach chair", "BEACH   CHAIR", " beach\tchair "}) {
    const auto normalized = index->Find(variant);
    EXPECT_EQ(normalized.match, ServingIndex::Lookup::Match::kNormalized)
        << variant;
    EXPECT_EQ(normalized.query, exact.query) << variant;
  }

  const auto miss = index->Find("no such query");
  EXPECT_EQ(miss.match, ServingIndex::Lookup::Match::kNone);
  EXPECT_EQ(miss.query, kNoQuery);
}

TEST(ServingIndexTreeTest, ChildrenAndPathAgreeWithTaxonomy) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  for (uint32_t t = 0; t < index->num_topics(); ++t) {
    auto [first, last] = index->children(t);
    std::vector<uint32_t> children(first, last);
    std::vector<uint32_t> expected = f.taxonomy.topic(t).children;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(children, expected) << "topic " << t;

    const auto path = index->PathToRoot(t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), t);
    EXPECT_EQ(index->parent[path.front()], core::kNoTopic);
    for (size_t i = 1; i < path.size(); ++i) {
      EXPECT_EQ(index->parent[path[i]], path[i - 1]);
    }
  }
}

TEST(ServingIndexCodecTest, EncodeDecodeRoundtrips) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  auto decoded = DecodeServingIndex(EncodeServingIndex(*index));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, index->version);
  EXPECT_EQ(decoded->parent, index->parent);
  EXPECT_EQ(decoded->level, index->level);
  EXPECT_EQ(decoded->topic_size, index->topic_size);
  EXPECT_EQ(decoded->descriptions, index->descriptions);
  EXPECT_EQ(decoded->entity_topic, index->entity_topic);
  EXPECT_EQ(decoded->entity_category, index->entity_category);
  EXPECT_EQ(decoded->query_text, index->query_text);
  EXPECT_EQ(decoded->query_norm, index->query_norm);
  EXPECT_EQ(decoded->posting_list, index->posting_list);
}

TEST(ServingIndexCodecTest, FileRoundtripsThroughDisk) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "serving_index_rt.idx")
          .string();
  ASSERT_TRUE(WriteServingIndexFile(path, *index).ok());
  auto loaded = ReadServingIndexFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->query_text, index->query_text);
  EXPECT_EQ(loaded->posting_list, index->posting_list);
  std::filesystem::remove(path);
}

TEST(ServingIndexFinalizeTest, RejectsChildBeforeParent) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  ASSERT_GE(index->num_topics(), 2u);
  index->parent[0] = 1;  // parent id >= topic id
  EXPECT_FALSE(index->Finalize().ok());
}

TEST(ServingIndexFinalizeTest, RejectsUnsortedPostings) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  ASSERT_FALSE(index->posting_list.empty());
  auto& postings = index->posting_list[0];
  if (postings.size() < 2) {
    postings.push_back(postings[0]);  // duplicate topic also invalid
  } else {
    std::swap(postings.front(), postings.back());
  }
  EXPECT_FALSE(index->Finalize().ok());
}

TEST(ServingIndexFinalizeTest, RejectsNormalizerSkew) {
  // A stored normalized form that today's NormalizeQuery would not
  // produce means the artefact was built by a different normalizer —
  // serving it would silently miss lookups, so loading must fail.
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  ASSERT_GT(index->num_queries(), 0u);
  index->query_norm[0] = index->query_norm[0] + " skewed";
  EXPECT_FALSE(index->Finalize().ok());
}

TEST(ServingIndexFinalizeTest, RejectsOutOfRangePostingTopic) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  ASSERT_FALSE(index->posting_list.empty());
  ASSERT_FALSE(index->posting_list[0].empty());
  index->posting_list[0][0].topic =
      static_cast<uint32_t>(index->num_topics());
  EXPECT_FALSE(index->Finalize().ok());
}

TEST(ServingIndexFinalizeTest, RejectsNonFiniteScore) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  ASSERT_FALSE(index->posting_list.empty());
  ASSERT_FALSE(index->posting_list[0].empty());
  index->posting_list[0][0].score =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(index->Finalize().ok());
}

TEST(ServingIndexFinalizeTest, NormStoredMatchesSharedNormalizer) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < index->num_queries(); ++q) {
    EXPECT_EQ(index->query_norm[q],
              text::NormalizeQuery(index->query_text[q]));
  }
}

}  // namespace
}  // namespace shoal::serve
