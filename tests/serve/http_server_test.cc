#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve_test_util.h"
#include "util/json.h"
#include "util/tsv.h"

namespace shoal::serve {
namespace {

double JsonNumber(const std::string& body, const char* key) {
  auto parsed = util::JsonValue::Parse(body);
  EXPECT_TRUE(parsed.ok()) << body;
  if (!parsed.ok()) return -1.0;
  const util::JsonValue* value = parsed->Find(key);
  EXPECT_NE(value, nullptr) << key << " missing in " << body;
  return value == nullptr ? -1.0 : value->number();
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_http_server_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    live_path_ = (dir_ / "live.idx").string();

    auto data = fixture_.Compile(CompileOptions{.version = 1});
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_TRUE(WriteServingIndexFile(live_path_, *data).ok());
    auto v1 = data->Build();
    ASSERT_TRUE(v1.ok()) << v1.status().ToString();

    ServiceOptions service_options;
    service_options.index_path = live_path_;
    service_ = std::make_unique<ServingService>(
        std::make_shared<const ServingIndex>(std::move(v1).value()),
        service_options);

    HttpServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.threads = 8;
    server_ = std::make_unique<HttpServer>(service_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  // Tears the default server down and restarts with custom options
  // (tests that exercise a specific reactor configuration).
  void RestartServer(HttpServerOptions server_options) {
    server_.reset();
    server_options.port = 0;
    server_ = std::make_unique<HttpServer>(service_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  // A raw connected client socket (caller closes).
  int Connect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  void TearDown() override {
    server_.reset();
    service_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Publishes version `v` of the index to the live path (atomic rename,
  // like a production publisher would).
  void PublishVersion(uint64_t v) {
    auto index = fixture_.Compile(CompileOptions{.version = v});
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(WriteServingIndexFile(live_path_, *index).ok());
  }

  HttpFetchResult Fetch(const std::string& target) {
    auto fetched = HttpFetch(server_->host(), server_->port(), target);
    EXPECT_TRUE(fetched.ok()) << fetched.status().ToString();
    return fetched.ok() ? *fetched : HttpFetchResult{};
  }

  std::filesystem::path dir_;
  std::string live_path_;
  ServeFixture fixture_;
  std::unique_ptr<ServingService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, ServesEveryEndpointOverSockets) {
  EXPECT_EQ(Fetch("/healthz").status, 200);
  EXPECT_EQ(JsonNumber(Fetch("/healthz").body, "index_version"), 1.0);
  auto query = Fetch("/v1/query?q=router&k=2");
  EXPECT_EQ(query.status, 200);
  auto parsed = util::JsonValue::Parse(query.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("match")->string_value(), "exact");
  EXPECT_EQ(Fetch("/v1/topic/0").status, 200);
  EXPECT_EQ(Fetch("/v1/item/0").status, 200);
  EXPECT_EQ(Fetch("/metrics").status, 200);
  EXPECT_EQ(Fetch("/no/such").status, 404);
  EXPECT_EQ(Fetch("/v1/topic/zzz").status, 400);
}

TEST_F(HttpServerTest, PercentEncodedQueriesDecode) {
  auto response = Fetch("/v1/query?q=BEACH%20chair");
  EXPECT_EQ(response.status, 200);
  auto parsed = util::JsonValue::Parse(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("query")->string_value(), "BEACH chair");
  EXPECT_EQ(parsed->Find("match")->string_value(), "normalized");
}

TEST_F(HttpServerTest, KeepAliveServesSequentialRequests) {
  // Two requests over one connection; both responses must arrive.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  auto send_request = [&](const std::string& target, bool close) {
    std::string request = "GET " + target + " HTTP/1.1\r\nHost: x\r\n" +
                          (close ? "Connection: close\r\n" : "") + "\r\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
  };
  send_request("/healthz", false);
  send_request("/healthz", true);

  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  // Both responses present: two status lines, one keep-alive then close.
  size_t status_lines = 0;
  for (size_t at = raw.find("HTTP/1.1 200 OK\r\n");
       at != std::string::npos; at = raw.find("HTTP/1.1 200 OK\r\n", at + 1)) {
    ++status_lines;
  }
  EXPECT_EQ(status_lines, 2u);
  EXPECT_NE(raw.find("Connection: keep-alive"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close"), std::string::npos);
}

TEST_F(HttpServerTest, RequestIdIsEchoedOrGeneratedOverSockets) {
  // A caller-supplied X-Request-Id is echoed back verbatim...
  auto echoed = HttpFetch(server_->host(), server_->port(), "/healthz",
                          {{"X-Request-Id", "trace-me-123"}});
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  const std::string* id = echoed->Header("x-request-id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(*id, "trace-me-123");

  // ...hostile ids are sanitized rather than reflected raw...
  auto hostile = HttpFetch(server_->host(), server_->port(), "/healthz",
                           {{"X-Request-Id", "bad\tid{}"}});
  ASSERT_TRUE(hostile.ok());
  id = hostile->Header("x-request-id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->find_first_of("\t{}"), std::string::npos);

  // ...and requests without one still get a generated id.
  auto anonymous = Fetch("/v1/query?q=router");
  id = anonymous.Header("x-request-id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->size(), 16u);
  EXPECT_EQ(id->find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST_F(HttpServerTest, MalformedRequestLineIsBadRequest) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string junk = "NOT-HTTP\r\n\r\n";
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  std::string raw;
  char chunk[1024];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(raw.find("HTTP/1.1 400"), std::string::npos);
}

// The hot-reload acceptance criterion: under concurrent request load,
// every response is well-formed, reports either the old or the new
// version (never a mix or a drop), and a corrupt publish is rejected
// while the old index keeps serving.
TEST_F(HttpServerTest, HotReloadUnderConcurrentLoad) {
  std::atomic<bool> stop{false};
  std::atomic<int> transport_errors{0};
  std::atomic<int> bad_responses{0};
  std::atomic<int> served{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        auto fetched =
            HttpFetch(server_->host(), server_->port(), "/healthz");
        if (!fetched.ok()) {
          ++transport_errors;
          continue;
        }
        const double version = JsonNumber(fetched->body, "index_version");
        if (fetched->status != 200 || (version != 1.0 && version != 2.0)) {
          ++bad_responses;
        }
        ++served;
      }
    });
  }

  // Let traffic build up, then swap versions live several times.
  while (served.load() < 20) std::this_thread::yield();
  for (uint64_t v : {2u, 1u, 2u}) {
    PublishVersion(v);
    auto reload = Fetch("/admin/reload");
    EXPECT_EQ(reload.status, 200);
    EXPECT_EQ(JsonNumber(reload.body, "index_version"),
              static_cast<double>(v));
    int target = served.load() + 20;
    while (served.load() < target) std::this_thread::yield();
  }

  // A corrupt publish must be rejected; the last good version survives.
  ASSERT_TRUE(util::WriteTextFile(live_path_, "corrupt bytes").ok());
  auto failed = Fetch("/admin/reload");
  EXPECT_EQ(failed.status, 500);
  EXPECT_EQ(JsonNumber(Fetch("/healthz").body, "index_version"), 2.0);

  stop.store(true);
  for (auto& client : clients) client.join();
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(bad_responses.load(), 0);
  EXPECT_GT(served.load(), 80);
}

TEST_F(HttpServerTest, StopIsGracefulAndIdempotent) {
  EXPECT_EQ(Fetch("/healthz").status, 200);
  server_->Stop();
  server_->Stop();  // idempotent
  auto after = HttpFetch(server_->host(), server_->port(), "/healthz");
  EXPECT_FALSE(after.ok());
}

// With a single reactor thread, parked keep-alive connections must not
// starve new clients: connections are epoll registrations, not pinned
// threads. The pre-epoll server (one blocking thread per connection)
// fails this with threads=1.
TEST_F(HttpServerTest, KeepAliveConnectionsDoNotPinReactor) {
  HttpServerOptions options;
  options.threads = 1;
  RestartServer(options);

  std::vector<int> parked;
  for (int i = 0; i < 4; ++i) parked.push_back(Connect());

  // The lone reactor still serves a fifth, fresh client.
  EXPECT_EQ(Fetch("/healthz").status, 200);
  EXPECT_EQ(Fetch("/v1/query?q=router").status, 200);

  for (int fd : parked) ::close(fd);
}

// Responses larger than the kernel (or, here, the test hook) accepts in
// one send must resume via EPOLLOUT and arrive byte-complete.
TEST_F(HttpServerTest, PartialWritesResumeViaEpollout) {
  auto reference = Fetch("/v1/query?q=router&k=5");
  ASSERT_EQ(reference.status, 200);

  HttpServerOptions options;
  options.threads = 2;
  options.max_write_chunk = 7;  // dribble every response out 7 bytes at a time
  RestartServer(options);

  auto dribbled = Fetch("/v1/query?q=router&k=5");
  EXPECT_EQ(dribbled.status, 200);
  EXPECT_EQ(dribbled.body, reference.body);
  auto metrics = Fetch("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(util::JsonValue::Parse(metrics.body).ok());
}

// A storm of signals interrupting every blocking call: reads, writes
// and epoll_wait all see EINTR and must retry, not fail or drop bytes.
TEST_F(HttpServerTest, EintrStormDoesNotCorruptRequests) {
  struct sigaction noisy {};
  noisy.sa_handler = +[](int) {};
  sigemptyset(&noisy.sa_mask);
  noisy.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction saved {};
  ASSERT_EQ(::sigaction(SIGALRM, &noisy, &saved), 0);
  itimerval storm{};
  storm.it_interval.tv_usec = 1000;
  storm.it_value.tv_usec = 1000;
  ASSERT_EQ(::setitimer(ITIMER_REAL, &storm, nullptr), 0);

  auto reference = Fetch("/v1/query?q=router&k=3");
  for (int i = 0; i < 50; ++i) {
    auto response = Fetch("/v1/query?q=router&k=3");
    ASSERT_EQ(response.status, 200);
    ASSERT_EQ(response.body, reference.body);
  }

  itimerval off{};
  ASSERT_EQ(::setitimer(ITIMER_REAL, &off, nullptr), 0);
  ASSERT_EQ(::sigaction(SIGALRM, &saved, nullptr), 0);
}

TEST_F(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  const int fd = Connect();
  const std::string requests =
      "GET /v1/topic/0 HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /v1/item/0 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, requests.data(), requests.size(), 0),
            static_cast<ssize_t>(requests.size()));
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t status_lines = 0;
  for (size_t at = raw.find("HTTP/1.1 200 OK\r\n");
       at != std::string::npos; at = raw.find("HTTP/1.1 200 OK\r\n", at + 1)) {
    ++status_lines;
  }
  EXPECT_EQ(status_lines, 2u);
  const size_t topic_at = raw.find("\"topic\"");
  const size_t item_at = raw.find("\"item\"");
  ASSERT_NE(topic_at, std::string::npos);
  ASSERT_NE(item_at, std::string::npos);
  EXPECT_LT(topic_at, item_at);  // responses in request order
}

TEST_F(HttpServerTest, IdleConnectionsAreSwept) {
  HttpServerOptions options;
  options.threads = 2;
  options.idle_timeout_sec = 1;
  RestartServer(options);

  const int fd = Connect();
  timeval patience{};
  patience.tv_sec = 10;
  ASSERT_EQ(
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &patience, sizeof(patience)),
      0);
  char byte;
  // The sweep closes us without a response; recv sees a clean EOF.
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

TEST_F(HttpServerTest, ConnectionsOpenGaugeTracksSockets) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Enable();
  registry.Reset();
  auto& gauge = registry.GetGauge("serve.connections.open");

  const int fd = Connect();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (gauge.value() < 1.0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(gauge.value(), 1.0);

  ::close(fd);
  while (gauge.value() > 0.0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(gauge.value(), 0.0);
  registry.Reset();
  registry.Disable();
}

TEST(HttpServerStartTest, PortCollisionFailsCleanly) {
  ServeFixture f;
  auto index = f.CompileIndex();
  ASSERT_TRUE(index.ok());
  auto shared =
      std::make_shared<const ServingIndex>(std::move(index).value());
  ServingService service(shared, ServiceOptions());
  HttpServerOptions options;
  options.port = 0;
  HttpServer first(&service, options);
  ASSERT_TRUE(first.Start().ok());
  options.port = first.port();
  HttpServer second(&service, options);
  EXPECT_FALSE(second.Start().ok());
}

}  // namespace
}  // namespace shoal::serve
