// Malformed-index robustness, mirroring tests/ckpt/snapshot_test.cc:
// every truncation and a bit-flip sweep over a real index file must
// produce a clean Status — never a crash, hang, or huge allocation
// (ASan/UBSan runs of this test are part of the CI matrix). The v2
// sweeps run twice: once with the CRC on (the normal deployment mode,
// where every flip outside the stored CRC is caught by the checksum)
// and once with the CRC off, which forces the structural validators to
// stand on their own.

#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "ckpt/binary_io.h"
#include "serve/serving_index.h"
#include "serve_test_util.h"
#include "util/tsv.h"

namespace shoal::serve {
namespace {

void PatchU64(std::string* bytes, size_t offset, uint64_t value) {
  ASSERT_LE(offset + 8, bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

class ServingIndexCorruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_serving_corrupt_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // A real v2 index file's bytes.
  std::string WriteSample() {
    ServeFixture f;
    auto data = f.Compile();
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    const std::string path = Path("sample.idx");
    EXPECT_TRUE(WriteServingIndexFile(path, *data).ok());
    auto bytes = util::ReadTextFile(path);
    EXPECT_TRUE(bytes.ok());
    return bytes.value();
  }

  // A legacy v1 index file's bytes.
  std::string WriteSampleV1() {
    ServeFixture f;
    auto data = f.Compile();
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    const std::string path = Path("sample_v1.idx");
    EXPECT_TRUE(WriteServingIndexFileV1(path, *data).ok());
    auto bytes = util::ReadTextFile(path);
    EXPECT_TRUE(bytes.ok());
    return bytes.value();
  }

  std::filesystem::path dir_;
};

TEST_F(ServingIndexCorruptTest, MissingFileIsCleanError) {
  EXPECT_FALSE(ReadServingIndexFile(Path("nope.idx")).ok());
}

TEST_F(ServingIndexCorruptTest, RejectsWrongMagic) {
  const std::string path = Path("bad.idx");
  ASSERT_TRUE(util::WriteTextFile(path, "NOTANIDXxxxxxxxxxxxxxxxx").ok());
  auto loaded = ReadServingIndexFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(ServingIndexCorruptTest, RejectsVersionSkew) {
  std::string full = WriteSample();
  ASSERT_GT(full.size(), 12u);
  full[8] = static_cast<char>(kServingIndexFormatVersion + 1);
  const std::string path = Path("skew.idx");
  ASSERT_TRUE(util::WriteTextFile(path, full).ok());
  auto loaded = ReadServingIndexFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(ServingIndexCorruptTest, EveryTruncationFailsCleanly) {
  const std::string full = WriteSample();
  const std::string path = Path("trunc.idx");
  for (size_t len = 0; len < full.size(); ++len) {
    ASSERT_TRUE(util::WriteTextFile(path, full.substr(0, len)).ok());
    auto loaded = ReadServingIndexFile(path);
    ASSERT_FALSE(loaded.ok()) << "truncated to " << len << " bytes";
  }
}

TEST_F(ServingIndexCorruptTest, EveryBitFlipIsDetectedOrValidated) {
  const std::string full = WriteSample();
  const std::string path = Path("flip.idx");
  // One flipped bit per sampled byte: the CRC must catch body flips,
  // the preamble checks catch magic/format flips; anything that slips
  // through (flips inside the stored CRC word cannot, but stay
  // defensive) must still bind into a state where lookups work.
  const size_t stride = full.size() > 512 ? full.size() / 512 : 1;
  for (size_t i = 0; i < full.size(); i += stride) {
    std::string tampered = full;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x10);
    ASSERT_TRUE(util::WriteTextFile(path, tampered).ok());
    auto loaded = ReadServingIndexFile(path);
    if (!loaded.ok()) continue;
    (void)loaded->Find("router");
  }
}

TEST_F(ServingIndexCorruptTest, BitFlipsWithCrcOffFailStructurally) {
  // The structural validators (section-table recomputation, count
  // guards, monotone-bounds sweeps, id-range checks) must hold without
  // the checksum: every sampled single-bit flip either fails cleanly or
  // yields an index whose lookups and tree walks stay in bounds. ASan
  // and UBSan runs of this sweep are the real assertion.
  const std::string full = WriteSample();
  const std::string path = Path("flip_nocrc.idx");
  LoadOptions options;
  options.verify_crc = false;
  const size_t stride = full.size() > 512 ? full.size() / 512 : 1;
  for (size_t i = 0; i < full.size(); i += stride) {
    std::string tampered = full;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x10);
    ASSERT_TRUE(util::WriteTextFile(path, tampered).ok());
    auto loaded = ReadServingIndexFile(path, options);
    if (!loaded.ok()) continue;
    (void)loaded->Find("router");
    (void)loaded->Find("Beach  Chair");
    for (uint32_t t = 0; t < loaded->num_topics(); ++t) {
      (void)loaded->PathToRoot(t);
    }
  }
}

TEST_F(ServingIndexCorruptTest, RejectsOversizedHeaderCount) {
  // Patch the topic count in the v2 header to an absurd value. With the
  // CRC disabled, the count guard must still reject before any
  // count-sized allocation or pointer arithmetic happens.
  std::string full = WriteSample();
  // Header starts at byte 16; field 2 is the topic count.
  PatchU64(&full, 16 + 2 * 8, 0xffffffffffull);
  const std::string path = Path("oversized.idx");
  ASSERT_TRUE(util::WriteTextFile(path, full).ok());
  LoadOptions options;
  options.verify_crc = false;
  auto loaded = ReadServingIndexFile(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("oversized"), std::string::npos);
}

TEST_F(ServingIndexCorruptTest, RejectsMisalignedSectionTable) {
  // Nudge the first section's stored offset off its 64-byte alignment.
  // The loader recomputes the expected layout from the header counts and
  // must refuse a table that disagrees with it.
  std::string full = WriteSample();
  uint64_t stored = 0;
  ASSERT_LE(size_t{128}, full.size());
  std::memcpy(&stored, full.data() + 120, sizeof(stored));
  PatchU64(&full, 120, stored + 1);
  const std::string path = Path("misaligned.idx");
  ASSERT_TRUE(util::WriteTextFile(path, full).ok());
  LoadOptions options;
  options.verify_crc = false;
  auto loaded = ReadServingIndexFile(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("section table"),
            std::string::npos);
}

TEST_F(ServingIndexCorruptTest, V1PayloadCrcFlipIsRejected) {
  std::string full = WriteSampleV1();
  ASSERT_GT(full.size(), 64u);
  full[full.size() - 8] = static_cast<char>(full[full.size() - 8] ^ 0x01);
  const std::string path = Path("v1flip.idx");
  ASSERT_TRUE(util::WriteTextFile(path, full).ok());
  auto loaded = ReadServingIndexFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos);
}

TEST_F(ServingIndexCorruptTest, EveryV1TruncationFailsCleanly) {
  const std::string full = WriteSampleV1();
  const std::string path = Path("v1trunc.idx");
  const size_t stride = full.size() > 256 ? full.size() / 256 : 1;
  for (size_t len = 0; len < full.size(); len += stride) {
    ASSERT_TRUE(util::WriteTextFile(path, full.substr(0, len)).ok());
    auto loaded = ReadServingIndexFile(path);
    ASSERT_FALSE(loaded.ok()) << "truncated to " << len << " bytes";
  }
}

TEST_F(ServingIndexCorruptTest, DecodeRejectsOversizedCounts) {
  // A count larger than the remaining payload must error before
  // allocating.
  ckpt::BinaryWriter writer;
  writer.WriteU64(1);                  // artefact version
  writer.WriteU64(0xffffffffffull);    // absurd topic count
  auto decoded = DecodeServingIndex(writer.data());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kOutOfRange);
}

TEST_F(ServingIndexCorruptTest, DecodeRejectsTrailingBytes) {
  ServeFixture f;
  auto data = f.Compile();
  ASSERT_TRUE(data.ok());
  std::string payload = EncodeServingIndex(*data);
  payload += "extra";
  EXPECT_FALSE(DecodeServingIndex(payload).ok());
}

}  // namespace
}  // namespace shoal::serve
