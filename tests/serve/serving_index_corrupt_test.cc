// Malformed-index robustness, mirroring tests/ckpt/snapshot_test.cc:
// every truncation and a bit-flip sweep over a real index file must
// produce a clean Status — never a crash, hang, or huge allocation
// (ASan/UBSan runs of this test are part of the CI matrix).

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "ckpt/binary_io.h"
#include "serve/serving_index.h"
#include "serve_test_util.h"
#include "util/tsv.h"

namespace shoal::serve {
namespace {

class ServingIndexCorruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_serving_corrupt_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // A real index file's bytes.
  std::string WriteSample() {
    ServeFixture f;
    auto index = f.Compile();
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    const std::string path = Path("sample.idx");
    EXPECT_TRUE(WriteServingIndexFile(path, *index).ok());
    auto bytes = util::ReadTextFile(path);
    EXPECT_TRUE(bytes.ok());
    return bytes.value();
  }

  std::filesystem::path dir_;
};

TEST_F(ServingIndexCorruptTest, MissingFileIsCleanError) {
  EXPECT_FALSE(ReadServingIndexFile(Path("nope.idx")).ok());
}

TEST_F(ServingIndexCorruptTest, RejectsWrongMagic) {
  const std::string path = Path("bad.idx");
  ASSERT_TRUE(util::WriteTextFile(path, "NOTANIDXxxxxxxxxxxxxxxxx").ok());
  auto loaded = ReadServingIndexFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(ServingIndexCorruptTest, RejectsVersionSkew) {
  std::string full = WriteSample();
  ASSERT_GT(full.size(), 12u);
  full[8] = static_cast<char>(kServingIndexFormatVersion + 1);
  const std::string path = Path("skew.idx");
  ASSERT_TRUE(util::WriteTextFile(path, full).ok());
  auto loaded = ReadServingIndexFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(ServingIndexCorruptTest, EveryTruncationFailsCleanly) {
  const std::string full = WriteSample();
  const std::string path = Path("trunc.idx");
  for (size_t len = 0; len < full.size(); ++len) {
    ASSERT_TRUE(util::WriteTextFile(path, full.substr(0, len)).ok());
    auto loaded = ReadServingIndexFile(path);
    ASSERT_FALSE(loaded.ok()) << "truncated to " << len << " bytes";
  }
}

TEST_F(ServingIndexCorruptTest, EveryBitFlipIsDetectedOrValidated) {
  const std::string full = WriteSample();
  const std::string path = Path("flip.idx");
  // One flipped bit per sampled byte: the CRC must catch payload flips,
  // the header checks catch header flips; anything that slips through
  // (flips inside the stored CRC cannot, but stay defensive) must still
  // decode into a state that passes or cleanly fails Finalize().
  const size_t stride = full.size() > 512 ? full.size() / 512 : 1;
  for (size_t i = 0; i < full.size(); i += stride) {
    std::string tampered = full;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x10);
    ASSERT_TRUE(util::WriteTextFile(path, tampered).ok());
    auto loaded = ReadServingIndexFile(path);
    if (!loaded.ok()) continue;
    // Survivors must be fully valid: Find and tree walks must work.
    EXPECT_TRUE(loaded->Finalize().ok());
    (void)loaded->Find("router");
  }
}

TEST_F(ServingIndexCorruptTest, DecodeRejectsOversizedCounts) {
  // A count larger than the remaining payload must error before
  // allocating.
  ckpt::BinaryWriter writer;
  writer.WriteU64(1);                  // artefact version
  writer.WriteU64(0xffffffffffull);    // absurd topic count
  auto decoded = DecodeServingIndex(writer.data());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kOutOfRange);
}

TEST_F(ServingIndexCorruptTest, DecodeRejectsTrailingBytes) {
  ServeFixture f;
  auto index = f.Compile();
  ASSERT_TRUE(index.ok());
  std::string payload = EncodeServingIndex(*index);
  payload += "extra";
  EXPECT_FALSE(DecodeServingIndex(payload).ok());
}

}  // namespace
}  // namespace shoal::serve
