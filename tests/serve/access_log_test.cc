#include "serve/access_log.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"
#include "util/tsv.h"

namespace shoal::serve {
namespace {

class AccessLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("shoal_access_log_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

AccessLogEntry SampleEntry() {
  AccessLogEntry entry;
  entry.unix_ms = 1712345678901;
  entry.request_id = "abc123";
  entry.method = "GET";
  entry.target = "/v1/query?q=red+dress";
  entry.endpoint = "query";
  entry.status = 200;
  entry.latency_us = 83.5;
  entry.cache_hit = true;
  entry.index_version = 7;
  entry.bytes = 512;
  return entry;
}

TEST_F(AccessLogTest, RenderIsOneParseableJsonLine) {
  const std::string line = AccessLog::Render(SampleEntry());
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // single line
  auto parsed = util::JsonValue::Parse(
      std::string_view(line.data(), line.size() - 1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->Find("unix_ms")->number(), 1712345678901.0);
  EXPECT_EQ(parsed->Find("request_id")->string_value(), "abc123");
  EXPECT_EQ(parsed->Find("method")->string_value(), "GET");
  EXPECT_EQ(parsed->Find("target")->string_value(), "/v1/query?q=red+dress");
  EXPECT_EQ(parsed->Find("endpoint")->string_value(), "query");
  EXPECT_DOUBLE_EQ(parsed->Find("status")->number(), 200.0);
  EXPECT_DOUBLE_EQ(parsed->Find("latency_us")->number(), 83.5);
  EXPECT_TRUE(parsed->Find("cache_hit")->bool_value());
  EXPECT_DOUBLE_EQ(parsed->Find("index_version")->number(), 7.0);
  EXPECT_DOUBLE_EQ(parsed->Find("bytes")->number(), 512.0);
}

TEST_F(AccessLogTest, RenderEscapesHostileTargets) {
  AccessLogEntry entry = SampleEntry();
  entry.target = "/v1/query?q=\"quoted\"\\back\nnewline";
  const std::string line = AccessLog::Render(entry);
  auto parsed = util::JsonValue::Parse(
      std::string_view(line.data(), line.size() - 1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("target")->string_value(), entry.target);
}

TEST_F(AccessLogTest, WritesAppendAcrossReopens) {
  const std::string path = Path("access.log");
  {
    auto log = AccessLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    (*log)->Write(SampleEntry());
    EXPECT_EQ((*log)->lines_written(), 1u);
    EXPECT_EQ((*log)->write_errors(), 0u);
  }
  {
    // Reopen appends instead of truncating — crash-restart safe.
    auto log = AccessLog::Open(path);
    ASSERT_TRUE(log.ok());
    (*log)->Write(SampleEntry());
  }
  auto text = util::ReadTextFile(path);
  ASSERT_TRUE(text.ok());
  size_t lines = 0;
  for (char c : *text) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
}

TEST_F(AccessLogTest, ConcurrentWritesNeverInterleave) {
  const std::string path = Path("concurrent.log");
  auto opened = AccessLog::Open(path);
  ASSERT_TRUE(opened.ok());
  AccessLog& log = **opened;
  constexpr int kThreads = 4;
  constexpr int kLines = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      AccessLogEntry entry = SampleEntry();
      entry.request_id = "thread-" + std::to_string(t);
      for (int i = 0; i < kLines; ++i) log.Write(entry);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(log.lines_written(), static_cast<uint64_t>(kThreads) * kLines);
  EXPECT_EQ(log.write_errors(), 0u);

  // Every line must parse as its own JSON document — a torn or
  // interleaved write would break parsing.
  auto text = util::ReadTextFile(path);
  ASSERT_TRUE(text.ok());
  size_t parsed_lines = 0;
  size_t start = 0;
  while (start < text->size()) {
    size_t end = text->find('\n', start);
    ASSERT_NE(end, std::string::npos);
    auto parsed = util::JsonValue::Parse(
        std::string_view(text->data() + start, end - start));
    ASSERT_TRUE(parsed.ok()) << "line " << parsed_lines << ": "
                             << parsed.status().ToString();
    ++parsed_lines;
    start = end + 1;
  }
  EXPECT_EQ(parsed_lines, static_cast<size_t>(kThreads) * kLines);
}

TEST_F(AccessLogTest, OpenFailsCleanlyOnBadPath) {
  auto opened = AccessLog::Open(Path("no/such/dir/access.log"));
  EXPECT_FALSE(opened.ok());
}

}  // namespace
}  // namespace shoal::serve
