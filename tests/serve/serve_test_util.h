#ifndef SHOAL_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define SHOAL_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dendrogram.h"
#include "core/taxonomy.h"
#include "core/topic_describer.h"
#include "graph/bipartite_graph.h"
#include "serve/serving_index.h"

namespace shoal::serve {

// The topic_describer_test fixture, reused for the serving layer: two
// root topics with distinct vocabularies and three queries, one of them
// ("Beach Chair") deliberately unnormalized so raw and normalized
// dictionary lookups diverge.
//   topic of {0,1}: titles about words {100,101}; q0 concentrated here
//   topic of {2,3}: titles about words {200,201}; q1 concentrated here
//   q2 is diffuse (one click on each side)
struct ServeFixture {
  core::Dendrogram dendrogram{4};
  std::vector<uint32_t> categories{1, 1, 2, 2};
  core::Taxonomy taxonomy;
  graph::BipartiteGraph qi{3, 4};
  std::vector<std::vector<uint32_t>> query_words{{100}, {200}, {300}};
  std::vector<std::string> query_texts{"Beach  Chair", "router", "misc"};
  std::vector<std::vector<uint32_t>> titles{
      {100, 101}, {100, 101}, {200, 201}, {200, 201}};

  ServeFixture() {
    (void)dendrogram.Merge(0, 1, 0.9);
    (void)dendrogram.Merge(2, 3, 0.9);
    core::TaxonomyOptions options;
    options.min_topic_size = 2;
    options.min_root_size = 2;
    taxonomy = core::Taxonomy::Build(dendrogram, categories, options);
    EXPECT_EQ(taxonomy.roots().size(), 2u);
    EXPECT_TRUE(qi.AddInteraction(0, 0, 5).ok());
    EXPECT_TRUE(qi.AddInteraction(0, 1, 3).ok());
    EXPECT_TRUE(qi.AddInteraction(1, 2, 4).ok());
    EXPECT_TRUE(qi.AddInteraction(1, 3, 4).ok());
    EXPECT_TRUE(qi.AddInteraction(2, 1, 1).ok());
    EXPECT_TRUE(qi.AddInteraction(2, 2, 1).ok());
  }

  core::DescriberInput Input() {
    core::DescriberInput input;
    input.taxonomy = &taxonomy;
    input.query_item_graph = &qi;
    input.query_words = &query_words;
    input.query_texts = &query_texts;
    input.entity_title_words = &titles;
    return input;
  }

  // The mutable builder form (field access, tamper-then-Validate tests).
  util::Result<ServingIndexData> Compile(CompileOptions options = {}) {
    return CompileServingIndex(taxonomy, Input(), core::DescriberOptions(),
                               &categories, options);
  }

  // The frozen flat form the serving path reads.
  util::Result<ServingIndex> CompileIndex(CompileOptions options = {}) {
    SHOAL_ASSIGN_OR_RETURN(ServingIndexData data, Compile(options));
    return data.Build();
  }
};

}  // namespace shoal::serve

#endif  // SHOAL_TESTS_SERVE_SERVE_TEST_UTIL_H_
