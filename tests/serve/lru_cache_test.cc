#include "serve/lru_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace shoal::serve {
namespace {

TEST(ShardedLruCacheTest, GetPutRoundtrip) {
  ShardedLruCache cache(16, 4);
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
  EXPECT_EQ(cache.misses(), 1u);
  cache.Put("a", "alpha");
  ASSERT_TRUE(cache.Get("a", &value));
  EXPECT_EQ(value, "alpha");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedLruCacheTest, PutRefreshesExistingKey) {
  ShardedLruCache cache(16, 1);
  cache.Put("a", "one");
  cache.Put("a", "two");
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));
  EXPECT_EQ(value, "two");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedPerShard) {
  // Single shard, capacity 2: touching "a" makes "b" the LRU victim.
  ShardedLruCache cache(2, 1);
  cache.Put("a", "1");
  cache.Put("b", "2");
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));
  cache.Put("c", "3");  // evicts b
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_FALSE(cache.Get("b", &value));
  EXPECT_TRUE(cache.Get("c", &value));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCacheTest, CapacityRoundsUpToShardMultiple) {
  ShardedLruCache cache(3, 8);  // at least one entry per shard
  EXPECT_GE(cache.capacity(), 8u);
}

TEST(ShardedLruCacheTest, ClearDropsEntriesKeepsCounters) {
  ShardedLruCache cache(8, 2);
  cache.Put("a", "1");
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a", &value));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ShardedLruCacheTest, ConcurrentMixedTrafficIsSafe) {
  ShardedLruCache cache(64, 8);
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&cache, w] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "k" + std::to_string((w * 31 + i) % 100);
        std::string value;
        if (!cache.Get(key, &value)) {
          cache.Put(key, "v" + std::to_string(i));
        }
        if (i % 500 == 0 && w == 0) cache.Clear();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

}  // namespace
}  // namespace shoal::serve
