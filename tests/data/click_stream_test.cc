#include "data/click_stream.h"

#include <gtest/gtest.h>

namespace shoal::data {
namespace {

ClickEvent Click(uint32_t query, uint32_t item, uint64_t ts) {
  ClickEvent event;
  event.query = query;
  event.entity = item;
  event.timestamp_sec = ts;
  return event;
}

TEST(SlidingWindowLogTest, IngestAndCount) {
  SlidingWindowLog log(100, 4, 4);
  ASSERT_TRUE(log.Ingest(Click(0, 1, 10)).ok());
  ASSERT_TRUE(log.Ingest(Click(0, 1, 20)).ok());
  ASSERT_TRUE(log.Ingest(Click(2, 3, 30)).ok());
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.Count(0, 1), 2u);
  EXPECT_EQ(log.Count(2, 3), 1u);
  EXPECT_EQ(log.Count(1, 1), 0u);
}

TEST(SlidingWindowLogTest, RejectsBadIds) {
  SlidingWindowLog log(100, 2, 2);
  EXPECT_FALSE(log.Ingest(Click(5, 0, 10)).ok());
  EXPECT_FALSE(log.Ingest(Click(0, 5, 10)).ok());
}

TEST(SlidingWindowLogTest, RejectsOutOfOrder) {
  SlidingWindowLog log(100, 2, 2);
  ASSERT_TRUE(log.Ingest(Click(0, 0, 50)).ok());
  EXPECT_FALSE(log.Ingest(Click(0, 0, 40)).ok());
  EXPECT_FALSE(log.AdvanceTo(10).ok());
}

TEST(SlidingWindowLogTest, EvictsOldEvents) {
  SlidingWindowLog log(100, 2, 2);
  ASSERT_TRUE(log.Ingest(Click(0, 0, 10)).ok());
  ASSERT_TRUE(log.Ingest(Click(0, 1, 60)).ok());
  ASSERT_TRUE(log.Ingest(Click(1, 1, 150)).ok());
  // Window [50, 150]: the t=10 event is gone.
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.Count(0, 0), 0u);
  EXPECT_EQ(log.Count(0, 1), 1u);
}

TEST(SlidingWindowLogTest, AdvanceEvictsWithoutEvents) {
  SlidingWindowLog log(100, 2, 2);
  ASSERT_TRUE(log.Ingest(Click(0, 0, 10)).ok());
  ASSERT_TRUE(log.AdvanceTo(200).ok());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.Count(0, 0), 0u);
  EXPECT_EQ(log.now_sec(), 200u);
}

TEST(SlidingWindowLogTest, BoundaryExactlyAtHorizonKept) {
  SlidingWindowLog log(100, 2, 2);
  ASSERT_TRUE(log.Ingest(Click(0, 0, 100)).ok());
  ASSERT_TRUE(log.AdvanceTo(200).ok());
  // horizon = 200 - 100 = 100; events at exactly the horizon stay.
  EXPECT_EQ(log.Count(0, 0), 1u);
  ASSERT_TRUE(log.AdvanceTo(201).ok());
  EXPECT_EQ(log.Count(0, 0), 0u);
}

TEST(SlidingWindowLogTest, SnapshotMatchesCounts) {
  SlidingWindowLog log(1000, 3, 3);
  ASSERT_TRUE(log.Ingest(Click(0, 1, 10)).ok());
  ASSERT_TRUE(log.Ingest(Click(0, 1, 20)).ok());
  ASSERT_TRUE(log.Ingest(Click(2, 0, 30)).ok());
  auto snapshot = log.Snapshot();
  EXPECT_EQ(snapshot.num_left(), 3u);
  EXPECT_EQ(snapshot.num_right(), 3u);
  EXPECT_EQ(snapshot.num_edges(), 2u);
  EXPECT_EQ(snapshot.total_interactions(), 3u);
  ASSERT_EQ(snapshot.RightNeighbors(1).size(), 1u);
  EXPECT_EQ(snapshot.RightNeighbors(1)[0].count, 2u);
}

TEST(SlidingWindowLogTest, SnapshotMatchesBatchExtraction) {
  // Streaming the dataset's log through the window must produce the
  // same bipartite graph as the batch BuildQueryItemGraph.
  DatasetOptions options;
  options.num_entities = 150;
  options.num_queries = 100;
  options.num_clicks = 4000;
  options.seed = 13;
  auto dataset = GenerateDataset(options);
  ASSERT_TRUE(dataset.ok());

  const uint64_t window = 7 * 86400;
  SlidingWindowLog log(window, dataset->queries.size(),
                       dataset->entities.size());
  for (const ClickEvent& event : dataset->clicks) {
    ASSERT_TRUE(log.Ingest(event).ok());
  }
  uint64_t end = dataset->clicks.back().timestamp_sec;
  auto streaming = log.Snapshot();
  auto batch = BuildQueryItemGraph(*dataset, end - window, end + 1);
  ASSERT_EQ(streaming.num_edges(), batch.num_edges());
  EXPECT_EQ(streaming.total_interactions(), batch.total_interactions());
  for (uint32_t q = 0; q < dataset->queries.size(); ++q) {
    auto streaming_links = streaming.LeftNeighbors(q);
    auto batch_links = batch.LeftNeighbors(q);
    ASSERT_EQ(streaming_links.size(), batch_links.size()) << "query " << q;
  }
}

}  // namespace
}  // namespace shoal::data
