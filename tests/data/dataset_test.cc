#include "data/dataset.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace shoal::data {
namespace {

DatasetOptions SmallOptions() {
  DatasetOptions options;
  options.num_root_intents = 4;
  options.children_per_root = 2;
  options.num_departments = 3;
  options.leaves_per_department = 4;
  options.num_entities = 200;
  options.num_queries = 150;
  options.num_clicks = 3000;
  options.seed = 99;
  return options;
}

TEST(DatasetTest, ValidatesOptions) {
  DatasetOptions bad = SmallOptions();
  bad.num_root_intents = 0;
  EXPECT_FALSE(GenerateDataset(bad).ok());
  bad = SmallOptions();
  bad.num_entities = 0;
  EXPECT_FALSE(GenerateDataset(bad).ok());
  bad = SmallOptions();
  bad.click_noise = 1.5;
  EXPECT_FALSE(GenerateDataset(bad).ok());
}

TEST(DatasetTest, SizesMatchOptions) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->entities.size(), 200u);
  EXPECT_EQ(ds->queries.size(), 150u);
  EXPECT_EQ(ds->clicks.size(), 3000u);
  EXPECT_EQ(ds->intents.roots().size(), 4u);
  EXPECT_EQ(ds->intents.leaves().size(), 8u);
  EXPECT_EQ(ds->ontology.leaves().size(), 12u);
}

TEST(DatasetTest, EntitiesHaveValidLabels) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  std::unordered_set<uint32_t> leaf_intents(ds->intents.leaves().begin(),
                                            ds->intents.leaves().end());
  std::unordered_set<uint32_t> leaf_categories(ds->ontology.leaves().begin(),
                                               ds->ontology.leaves().end());
  for (const auto& entity : ds->entities) {
    EXPECT_TRUE(leaf_intents.contains(entity.intent));
    EXPECT_TRUE(leaf_categories.contains(entity.category));
    EXPECT_FALSE(entity.title_words.empty());
    EXPECT_FALSE(entity.title.empty());
    EXPECT_GT(entity.price, 0.0);
    EXPECT_GE(entity.group_size, 1u);
  }
}

TEST(DatasetTest, EntityCategoryRespectsIntentAffinity) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  for (const auto& entity : ds->entities) {
    const auto& cats = ds->intents.intent(entity.intent).categories;
    EXPECT_NE(std::find(cats.begin(), cats.end(), entity.category),
              cats.end());
  }
}

TEST(DatasetTest, EveryLeafIntentHasEntities) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  for (uint32_t leaf : ds->intents.leaves()) {
    EXPECT_FALSE(ds->entities_by_intent[leaf].empty())
        << "leaf intent " << leaf << " has no entities";
  }
}

TEST(DatasetTest, EntitiesByIntentIsConsistent) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  size_t total = 0;
  for (uint32_t intent = 0; intent < ds->intents.size(); ++intent) {
    for (uint32_t e : ds->entities_by_intent[intent]) {
      EXPECT_EQ(ds->entities[e].intent, intent);
    }
    total += ds->entities_by_intent[intent].size();
  }
  EXPECT_EQ(total, ds->entities.size());
}

TEST(DatasetTest, ClicksSortedAndInWindow) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  uint64_t span =
      static_cast<uint64_t>(ds->options.log_days * 86400.0);
  uint64_t begin = ds->options.log_end_time_sec - span;
  uint64_t prev = 0;
  for (const auto& click : ds->clicks) {
    EXPECT_GE(click.timestamp_sec, begin);
    EXPECT_LT(click.timestamp_sec, ds->options.log_end_time_sec);
    EXPECT_GE(click.timestamp_sec, prev);
    prev = click.timestamp_sec;
    EXPECT_LT(click.query, ds->queries.size());
    EXPECT_LT(click.entity, ds->entities.size());
  }
}

TEST(DatasetTest, ClicksMostlyMatchQueryIntent) {
  DatasetOptions options = SmallOptions();
  options.click_noise = 0.05;
  auto ds = GenerateDataset(options);
  ASSERT_TRUE(ds.ok());
  size_t matched = 0;
  for (const auto& click : ds->clicks) {
    if (ds->queries[click.query].intent == ds->entities[click.entity].intent) {
      ++matched;
    }
  }
  double rate = static_cast<double>(matched) / ds->clicks.size();
  EXPECT_GT(rate, 0.85);
}

TEST(DatasetTest, DeterministicForSeed) {
  auto a = GenerateDataset(SmallOptions());
  auto b = GenerateDataset(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->entities.size(); ++i) {
    EXPECT_EQ(a->entities[i].title, b->entities[i].title);
    EXPECT_EQ(a->entities[i].intent, b->entities[i].intent);
  }
  for (size_t i = 0; i < a->clicks.size(); ++i) {
    EXPECT_EQ(a->clicks[i].query, b->clicks[i].query);
    EXPECT_EQ(a->clicks[i].entity, b->clicks[i].entity);
  }
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  DatasetOptions o1 = SmallOptions();
  DatasetOptions o2 = SmallOptions();
  o2.seed = o1.seed + 1;
  auto a = GenerateDataset(o1);
  auto b = GenerateDataset(o2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  size_t differing = 0;
  for (size_t i = 0; i < a->entities.size(); ++i) {
    if (a->entities[i].title != b->entities[i].title) ++differing;
  }
  EXPECT_GT(differing, a->entities.size() / 2);
}

TEST(DatasetTest, GroundTruthLabelHelpers) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  auto leaf_labels = ds->EntityIntentLabels();
  auto root_labels = ds->EntityRootIntentLabels();
  ASSERT_EQ(leaf_labels.size(), ds->entities.size());
  ASSERT_EQ(root_labels.size(), ds->entities.size());
  for (size_t e = 0; e < leaf_labels.size(); ++e) {
    EXPECT_EQ(leaf_labels[e], ds->entities[e].intent);
    EXPECT_EQ(root_labels[e], ds->intents.RootOf(leaf_labels[e]));
  }
}

TEST(DatasetTest, CategoriesRelatedSymmetricAndReflexive) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  auto leaves = ds->ontology.leaves();
  EXPECT_TRUE(ds->CategoriesRelated(leaves[0], leaves[0]));
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      EXPECT_EQ(ds->CategoriesRelated(leaves[i], leaves[j]),
                ds->CategoriesRelated(leaves[j], leaves[i]));
    }
  }
}

TEST(DatasetTest, SlidingWindowFiltersClicks) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  auto full = BuildRecentQueryItemGraph(*ds, ds->options.log_days + 1);
  auto half = BuildRecentQueryItemGraph(*ds, ds->options.log_days / 2);
  EXPECT_GT(full.total_interactions(), half.total_interactions());
  EXPECT_EQ(full.total_interactions(), ds->clicks.size());
  EXPECT_EQ(full.num_left(), ds->queries.size());
  EXPECT_EQ(full.num_right(), ds->entities.size());
}

TEST(DatasetTest, EmptyWindowYieldsNoEdges) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  auto graph = BuildQueryItemGraph(*ds, 0, 1);
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(DatasetTest, TrainingCorpusCoversTitlesAndQueries) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  auto corpus = BuildTrainingCorpus(*ds);
  EXPECT_EQ(corpus.size(), ds->entities.size() + ds->queries.size());
  EXPECT_EQ(corpus[0], ds->entities[0].title_words);
  EXPECT_EQ(corpus[ds->entities.size()], ds->queries[0].words);
}

TEST(DatasetTest, QueryWordsWithinVocabulary) {
  auto ds = GenerateDataset(SmallOptions());
  ASSERT_TRUE(ds.ok());
  for (const auto& query : ds->queries) {
    EXPECT_FALSE(query.words.empty());
    for (uint32_t w : query.words) {
      EXPECT_LT(w, ds->lexicon.vocab().size());
    }
  }
}

}  // namespace
}  // namespace shoal::data
