#include "data/ontology.h"

#include <gtest/gtest.h>

namespace shoal::data {
namespace {

Ontology MakeSmallOntology() {
  return Ontology::BuildThreeLevel(
      {"ladies wear", "outdoor"},
      {{"dress", "jeans"}, {"tent", "backpack", "lantern"}});
}

TEST(OntologyTest, StructureCounts) {
  Ontology o = MakeSmallOntology();
  // 1 root + 2 departments + 5 leaves.
  EXPECT_EQ(o.size(), 8u);
  EXPECT_EQ(o.leaves().size(), 5u);
  EXPECT_EQ(o.node(o.root()).name, "all");
}

TEST(OntologyTest, DepthsAssigned) {
  Ontology o = MakeSmallOntology();
  EXPECT_EQ(o.node(o.root()).depth, 0u);
  for (uint32_t leaf : o.leaves()) {
    EXPECT_EQ(o.node(leaf).depth, 2u);
    EXPECT_TRUE(o.node(leaf).is_leaf());
  }
}

TEST(OntologyTest, ParentChildLinksConsistent) {
  Ontology o = MakeSmallOntology();
  for (uint32_t leaf : o.leaves()) {
    uint32_t parent = o.node(leaf).parent;
    const auto& siblings = o.node(parent).children;
    EXPECT_NE(std::find(siblings.begin(), siblings.end(), leaf),
              siblings.end());
  }
}

TEST(OntologyTest, DepartmentOfLeaf) {
  Ontology o = MakeSmallOntology();
  uint32_t dress = o.leaves()[0];
  uint32_t department = o.DepartmentOf(dress);
  EXPECT_EQ(o.node(department).name, "ladies wear");
  EXPECT_EQ(o.DepartmentOf(department), department);
}

TEST(OntologyTest, PathNamesFromRoot) {
  Ontology o = MakeSmallOntology();
  uint32_t tent = o.leaves()[2];
  auto path = o.PathNames(tent);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], "all");
  EXPECT_EQ(path[1], "outdoor");
  EXPECT_EQ(path[2], "tent");
}

TEST(OntologyTest, SiblingLeavesShareDepartment) {
  Ontology o = MakeSmallOntology();
  uint32_t tent = o.leaves()[2];
  auto siblings = o.SiblingLeaves(tent);
  EXPECT_EQ(siblings.size(), 3u);  // tent, backpack, lantern
  for (uint32_t s : siblings) {
    EXPECT_EQ(o.DepartmentOf(s), o.DepartmentOf(tent));
  }
}

TEST(OntologyTest, RootPathIsItself) {
  Ontology o = MakeSmallOntology();
  auto path = o.PathNames(o.root());
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], "all");
}

}  // namespace
}  // namespace shoal::data
