#include "data/lexicon.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace shoal::data {
namespace {

TEST(LexiconTest, ScenarioNamesCycleWithSuffix) {
  Lexicon lexicon(1);
  std::string first = lexicon.ScenarioName(0);
  EXPECT_FALSE(first.empty());
  // The curated list has 48 themes; index 48 wraps with a suffix.
  std::string wrapped = lexicon.ScenarioName(48);
  EXPECT_NE(wrapped, first);
  EXPECT_NE(wrapped.find(first), std::string::npos);
}

TEST(LexiconTest, ProductNounsUniqueAcrossRounds) {
  Lexicon lexicon(1);
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(seen.insert(lexicon.ProductNoun(i)).second)
        << "duplicate noun at index " << i;
  }
}

TEST(LexiconTest, ModifiersUniqueAcrossRounds) {
  Lexicon lexicon(1);
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_TRUE(seen.insert(lexicon.Modifier(i)).second);
  }
}

TEST(LexiconTest, MintedWordsAreFreshAndInterned) {
  Lexicon lexicon(1);
  auto batch1 = lexicon.MintTopicWords(10);
  auto batch2 = lexicon.MintTopicWords(10);
  std::unordered_set<uint32_t> ids(batch1.begin(), batch1.end());
  for (uint32_t id : batch2) EXPECT_FALSE(ids.contains(id));
  for (uint32_t id : batch1) {
    EXPECT_EQ(lexicon.vocab().Lookup(lexicon.vocab().WordOf(id)), id);
  }
}

TEST(LexiconTest, MintingIsDeterministicPerSeed) {
  Lexicon a(42);
  Lexicon b(42);
  auto wa = a.MintTopicWords(5);
  auto wb = b.MintTopicWords(5);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.vocab().WordOf(wa[i]), b.vocab().WordOf(wb[i]));
  }
}

TEST(LexiconTest, FillerWordsStable) {
  Lexicon lexicon(1);
  const auto& f1 = lexicon.FillerWords();
  const auto& f2 = lexicon.FillerWords();
  EXPECT_EQ(f1, f2);
  EXPECT_FALSE(f1.empty());
}

TEST(LexiconTest, InternPhraseSplitsTokens) {
  Lexicon lexicon(1);
  auto ids = lexicon.InternPhrase("beach trip");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(lexicon.vocab().WordOf(ids[0]), "beach");
  EXPECT_EQ(lexicon.vocab().WordOf(ids[1]), "trip");
  // Re-interning returns the same ids.
  EXPECT_EQ(lexicon.InternPhrase("beach trip"), ids);
}

}  // namespace
}  // namespace shoal::data
