#include "data/log_io.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "core/shoal.h"
#include "util/tsv.h"

namespace shoal::data {
namespace {

class LogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: parallel ctest processes must not share a
    // directory that TearDown deletes.
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("shoal_log_io_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Dataset MakeDataset() {
    DatasetOptions options;
    options.num_entities = 120;
    options.num_queries = 90;
    options.num_clicks = 3000;
    options.seed = 77;
    auto result = GenerateDataset(options);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }

  std::string dir_;
};

TEST_F(LogIoTest, ExportImportRoundTrip) {
  Dataset dataset = MakeDataset();
  ASSERT_TRUE(ExportSearchLog(dataset, dir_).ok());
  auto log = ImportSearchLog(dir_);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->items.size(), dataset.entities.size());
  EXPECT_EQ(log->queries.size(), dataset.queries.size());
  EXPECT_EQ(log->clicks.size(), dataset.clicks.size());
  for (size_t i = 0; i < log->items.size(); ++i) {
    EXPECT_EQ(log->items[i].title, dataset.entities[i].title);
    EXPECT_EQ(log->items[i].category, dataset.entities[i].category);
    EXPECT_FALSE(log->items[i].title_words.empty());
  }
  for (size_t q = 0; q < log->queries.size(); ++q) {
    EXPECT_EQ(log->queries[q].text, dataset.queries[q].text);
  }
}

TEST_F(LogIoTest, ClicksSortedAfterImport) {
  Dataset dataset = MakeDataset();
  ASSERT_TRUE(ExportSearchLog(dataset, dir_).ok());
  auto log = ImportSearchLog(dir_);
  ASSERT_TRUE(log.ok());
  uint64_t prev = 0;
  for (const auto& click : log->clicks) {
    EXPECT_GE(click.timestamp_sec, prev);
    prev = click.timestamp_sec;
  }
}

TEST_F(LogIoTest, MissingDirectoryFails) {
  EXPECT_FALSE(ImportSearchLog(dir_ + "/nothing").ok());
}

TEST_F(LogIoTest, NonDenseItemIdsRejected) {
  std::filesystem::create_directories(dir_);
  ASSERT_TRUE(util::WriteTsv(dir_ + "/items.tsv",
                             {{"0", "1", "beach dress"},
                              {"2", "1", "skipped id"}})
                  .ok());
  ASSERT_TRUE(util::WriteTsv(dir_ + "/queries.tsv", {{"0", "beach"}}).ok());
  ASSERT_TRUE(util::WriteTsv(dir_ + "/clicks.tsv", {{"0", "0", "100"}}).ok());
  EXPECT_FALSE(ImportSearchLog(dir_).ok());
}

TEST_F(LogIoTest, UnknownClickIdsRejected) {
  std::filesystem::create_directories(dir_);
  ASSERT_TRUE(
      util::WriteTsv(dir_ + "/items.tsv", {{"0", "1", "beach dress"}}).ok());
  ASSERT_TRUE(util::WriteTsv(dir_ + "/queries.tsv", {{"0", "beach"}}).ok());
  ASSERT_TRUE(
      util::WriteTsv(dir_ + "/clicks.tsv", {{"0", "9", "100"}}).ok());
  EXPECT_FALSE(ImportSearchLog(dir_).ok());
}

TEST_F(LogIoTest, EmptyItemsRejected) {
  std::filesystem::create_directories(dir_);
  ASSERT_TRUE(util::WriteTsv(dir_ + "/items.tsv", {}).ok());
  ASSERT_TRUE(util::WriteTsv(dir_ + "/queries.tsv", {{"0", "beach"}}).ok());
  ASSERT_TRUE(util::WriteTsv(dir_ + "/clicks.tsv", {}).ok());
  EXPECT_FALSE(ImportSearchLog(dir_).ok());
}

TEST_F(LogIoTest, BundleFeedsPipeline) {
  // End-to-end: exported log -> import -> bundle -> BuildShoal succeeds
  // and produces a plausible taxonomy.
  Dataset dataset = MakeDataset();
  ASSERT_TRUE(ExportSearchLog(dataset, dir_).ok());
  auto log = ImportSearchLog(dir_);
  ASSERT_TRUE(log.ok());
  auto bundle = MakeShoalInputFromLog(*log, /*window_days=*/30.0);
  EXPECT_EQ(bundle.query_item_graph.num_right(), log->items.size());
  EXPECT_GT(bundle.query_item_graph.num_edges(), 0u);
  auto model = core::BuildShoal(bundle.View(), core::ShoalOptions{});
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT(model->taxonomy().num_topics(), 0u);
}

TEST_F(LogIoTest, WindowFiltersClicks) {
  Dataset dataset = MakeDataset();
  ASSERT_TRUE(ExportSearchLog(dataset, dir_).ok());
  auto log = ImportSearchLog(dir_);
  ASSERT_TRUE(log.ok());
  auto wide = MakeShoalInputFromLog(*log, 30.0);
  auto narrow = MakeShoalInputFromLog(*log, 2.0);
  EXPECT_GT(wide.query_item_graph.total_interactions(),
            narrow.query_item_graph.total_interactions());
}

}  // namespace
}  // namespace shoal::data
