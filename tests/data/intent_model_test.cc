#include "data/intent_model.h"

#include <gtest/gtest.h>

namespace shoal::data {
namespace {

TEST(IntentModelTest, AddRootAssignsIds) {
  IntentModel model;
  Intent root;
  root.name = "beach trip";
  uint32_t id = model.AddRoot(std::move(root));
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(model.size(), 1u);
  EXPECT_EQ(model.intent(id).depth, 0u);
  EXPECT_EQ(model.intent(id).parent, kNoIntent);
  ASSERT_EQ(model.roots().size(), 1u);
  EXPECT_EQ(model.roots()[0], id);
}

TEST(IntentModelTest, AddChildLinksBothWays) {
  IntentModel model;
  uint32_t root = model.AddRoot(Intent{});
  Intent child;
  child.name = "family beach trip";
  uint32_t child_id = model.AddChild(root, std::move(child));
  EXPECT_EQ(model.intent(child_id).parent, root);
  EXPECT_EQ(model.intent(child_id).depth, 1u);
  ASSERT_EQ(model.intent(root).children.size(), 1u);
  EXPECT_EQ(model.intent(root).children[0], child_id);
}

TEST(IntentModelTest, LeavesTrackStructure) {
  IntentModel model;
  uint32_t root = model.AddRoot(Intent{});
  EXPECT_EQ(model.leaves().size(), 1u);  // a childless root is a leaf
  uint32_t c1 = model.AddChild(root, Intent{});
  uint32_t c2 = model.AddChild(root, Intent{});
  ASSERT_EQ(model.leaves().size(), 2u);
  EXPECT_EQ(model.leaves()[0], c1);
  EXPECT_EQ(model.leaves()[1], c2);
}

TEST(IntentModelTest, RootOfWalksUp) {
  IntentModel model;
  uint32_t r1 = model.AddRoot(Intent{});
  uint32_t r2 = model.AddRoot(Intent{});
  uint32_t child = model.AddChild(r2, Intent{});
  uint32_t grandchild = model.AddChild(child, Intent{});
  EXPECT_EQ(model.RootOf(grandchild), r2);
  EXPECT_EQ(model.RootOf(child), r2);
  EXPECT_EQ(model.RootOf(r1), r1);
}

TEST(IntentModelTest, EffectiveVocabularyIncludesAncestors) {
  IntentModel model;
  Intent root;
  root.vocabulary = {1, 2};
  uint32_t root_id = model.AddRoot(std::move(root));
  Intent child;
  child.vocabulary = {3};
  uint32_t child_id = model.AddChild(root_id, std::move(child));
  auto vocab = model.EffectiveVocabulary(child_id);
  ASSERT_EQ(vocab.size(), 3u);
  EXPECT_EQ(vocab[0], 3u);  // own words first
  EXPECT_EQ(vocab[1], 1u);
  EXPECT_EQ(vocab[2], 2u);
}

TEST(IntentModelTest, DeepHierarchyDepths) {
  IntentModel model;
  uint32_t current = model.AddRoot(Intent{});
  for (uint32_t depth = 1; depth <= 5; ++depth) {
    current = model.AddChild(current, Intent{});
    EXPECT_EQ(model.intent(current).depth, depth);
  }
  EXPECT_EQ(model.leaves().size(), 1u);
}

}  // namespace
}  // namespace shoal::data
