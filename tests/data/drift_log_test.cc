// The multi-day drift workload: reproducible from its seed, honours
// birth days, keeps the stationary background invariant day over day,
// and round-trips through the spool export the daemon consumes.

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "daemon/spool.h"
#include "data/drift_log.h"

namespace shoal::data {
namespace {

DriftOptions TestOptions() {
  DriftOptions options;
  options.catalog.num_entities = 300;
  options.catalog.num_queries = 220;
  options.catalog.seed = 42;
  options.num_days = 4;
  options.background_pairs = 2000;
  options.drift_clicks_per_day = 800;
  options.new_entity_fraction = 0.01;
  options.new_query_fraction = 0.01;
  return options;
}

using PairCounts = std::map<std::pair<uint32_t, uint32_t>, uint64_t>;

PairCounts DayCounts(const DriftDay& day) {
  PairCounts counts;
  for (const auto& click : day.clicks) ++counts[{click.query, click.entity}];
  return counts;
}

TEST(DriftLogTest, ReproducibleFromSeed) {
  auto a = GenerateDriftLog(TestOptions());
  auto b = GenerateDriftLog(TestOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->days.size(), b->days.size());
  EXPECT_EQ(a->entity_birth_day, b->entity_birth_day);
  EXPECT_EQ(a->query_birth_day, b->query_birth_day);
  for (size_t d = 0; d < a->days.size(); ++d) {
    const auto& da = a->days[d];
    const auto& db = b->days[d];
    ASSERT_EQ(da.clicks.size(), db.clicks.size()) << "day " << d;
    for (size_t i = 0; i < da.clicks.size(); ++i) {
      EXPECT_EQ(da.clicks[i].query, db.clicks[i].query);
      EXPECT_EQ(da.clicks[i].entity, db.clicks[i].entity);
      EXPECT_EQ(da.clicks[i].timestamp_sec, db.clicks[i].timestamp_sec);
    }
    EXPECT_EQ(da.hot_intents, db.hot_intents) << "day " << d;
    EXPECT_EQ(da.born_entities, db.born_entities) << "day " << d;
    EXPECT_EQ(da.born_queries, db.born_queries) << "day " << d;
  }

  DriftOptions reseeded = TestOptions();
  reseeded.catalog.seed = 43;
  auto c = GenerateDriftLog(reseeded);
  ASSERT_TRUE(c.ok());
  bool any_difference = c->days[0].clicks.size() != a->days[0].clicks.size();
  for (size_t i = 0;
       !any_difference && i < a->days[0].clicks.size(); ++i) {
    any_difference = a->days[0].clicks[i].query != c->days[0].clicks[i].query ||
                     a->days[0].clicks[i].entity != c->days[0].clicks[i].entity;
  }
  EXPECT_TRUE(any_difference) << "different seeds produced the same day 0";
}

TEST(DriftLogTest, NoClicksBeforeBirthDay) {
  auto log = GenerateDriftLog(TestOptions());
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->entity_birth_day.size(), log->catalog.entities.size());
  ASSERT_EQ(log->query_birth_day.size(), log->catalog.queries.size());

  size_t late_births = 0;
  for (uint32_t day : log->entity_birth_day) {
    if (day > 0) ++late_births;
  }
  EXPECT_GT(late_births, 0u) << "workload planted no entity births";

  for (size_t d = 0; d < log->days.size(); ++d) {
    for (const auto& click : log->days[d].clicks) {
      EXPECT_LE(log->query_birth_day[click.query], d)
          << "query " << click.query << " clicked before birth on day " << d;
      EXPECT_LE(log->entity_birth_day[click.entity], d)
          << "entity " << click.entity << " clicked before birth on day " << d;
      EXPECT_GE(click.timestamp_sec, log->DayBeginSec(d));
      EXPECT_LT(click.timestamp_sec, log->DayEndSec(d));
    }
    for (uint32_t entity : log->days[d].born_entities) {
      EXPECT_EQ(log->entity_birth_day[entity], d);
    }
  }
}

TEST(DriftLogTest, StationaryBackgroundIsDayInvariant) {
  auto log = GenerateDriftLog(TestOptions());
  ASSERT_TRUE(log.ok());
  ASSERT_GE(log->days.size(), 3u);
  // Pairs present with identical counts on every day form the
  // background. It must dominate the per-day drift burst — that excess
  // stability is what the incremental daemon exploits.
  auto first = DayCounts(log->days[0]);
  PairCounts invariant;
  for (const auto& [pair, count] : first) invariant[pair] = count;
  for (size_t d = 1; d < log->days.size(); ++d) {
    auto counts = DayCounts(log->days[d]);
    for (auto it = invariant.begin(); it != invariant.end();) {
      auto found = counts.find(it->first);
      if (found == counts.end() || found->second != it->second) {
        it = invariant.erase(it);
      } else {
        ++it;
      }
    }
  }
  EXPECT_GT(invariant.size(), first.size() / 2)
      << "stationary background eroded: " << invariant.size() << " of "
      << first.size() << " day-0 pairs survive every day";
  // And each day still drifts: some pairs are unique to that day.
  for (size_t d = 1; d < log->days.size(); ++d) {
    auto counts = DayCounts(log->days[d]);
    size_t churned = 0;
    for (const auto& [pair, count] : counts) {
      auto it = invariant.find(pair);
      if (it == invariant.end() || it->second != count) ++churned;
    }
    EXPECT_GT(churned, 0u) << "day " << d << " produced no drift";
  }
}

TEST(DriftLogTest, WindowGraphMatchesPerDayAggregate) {
  auto log = GenerateDriftLog(TestOptions());
  ASSERT_TRUE(log.ok());
  const size_t begin = 1, end = 3;
  PairCounts expected;
  for (size_t d = begin; d < end; ++d) {
    for (const auto& [pair, count] : DayCounts(log->days[d])) {
      expected[pair] += count;
    }
  }
  auto graph = BuildWindowGraph(*log, begin, end);
  EXPECT_EQ(graph.num_left(), log->catalog.queries.size());
  EXPECT_EQ(graph.num_right(), log->catalog.entities.size());
  PairCounts actual;
  for (uint32_t q = 0; q < graph.num_left(); ++q) {
    for (const auto& link : graph.LeftNeighbors(q)) {
      actual[{q, link.id}] = link.count;
    }
  }
  EXPECT_EQ(expected, actual);
}

TEST(DriftLogTest, SpoolExportRoundTrips) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       (std::string("shoal_drift_spool_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name()))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto log = GenerateDriftLog(TestOptions());
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(ExportDriftCatalog(*log, dir).ok());
  // Export out of order; the spool listing must still sort by day.
  ASSERT_TRUE(ExportDriftDay(*log, 1, dir).ok());
  ASSERT_TRUE(ExportDriftDay(*log, 0, dir).ok());
  EXPECT_EQ(DriftDayFileName(0), "day-0000.clicks.tsv");

  auto catalog = daemon::ImportSpoolCatalog(dir);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  ASSERT_EQ(catalog->items.size(), log->catalog.entities.size());
  ASSERT_EQ(catalog->queries.size(), log->catalog.queries.size());
  for (size_t i = 0; i < catalog->items.size(); ++i) {
    EXPECT_EQ(catalog->items[i].title, log->catalog.entities[i].title);
    EXPECT_EQ(catalog->items[i].category, log->catalog.entities[i].category);
  }
  for (size_t i = 0; i < catalog->queries.size(); ++i) {
    EXPECT_EQ(catalog->queries[i].text, log->catalog.queries[i].text);
  }

  auto files = daemon::ListDayFiles(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  EXPECT_EQ((*files)[0], DriftDayFileName(0));
  EXPECT_EQ((*files)[1], DriftDayFileName(1));

  for (size_t d = 0; d < 2; ++d) {
    auto clicks = daemon::ReadDayClicks(dir + "/" + DriftDayFileName(d),
                                        catalog->queries.size(),
                                        catalog->items.size());
    ASSERT_TRUE(clicks.ok()) << clicks.status().ToString();
    PairCounts expected = DayCounts(log->days[d]);
    PairCounts actual;
    for (const auto& click : *clicks) ++actual[{click.query, click.entity}];
    EXPECT_EQ(expected, actual) << "day " << d;
  }

  fs::remove_all(dir);
}

}  // namespace
}  // namespace shoal::data
