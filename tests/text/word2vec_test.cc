#include "text/word2vec.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace shoal::text {
namespace {

// Builds a corpus with two disjoint topical word groups: words within a
// group always co-occur, across groups never. SGNS must place same-group
// words closer than cross-group words.
struct TwoTopicCorpus {
  Vocabulary vocab;
  std::vector<std::vector<uint32_t>> sentences;
  std::vector<uint32_t> group_a;
  std::vector<uint32_t> group_b;
};

TwoTopicCorpus MakeTwoTopicCorpus(size_t sentences_per_group = 300) {
  TwoTopicCorpus corpus;
  for (const char* w : {"beach", "swim", "sand", "sun"}) {
    corpus.group_a.push_back(corpus.vocab.AddWord(w, 0));
  }
  for (const char* w : {"router", "lan", "wifi", "cable"}) {
    corpus.group_b.push_back(corpus.vocab.AddWord(w, 0));
  }
  util::Rng rng(99);
  for (size_t s = 0; s < sentences_per_group; ++s) {
    for (const auto* group : {&corpus.group_a, &corpus.group_b}) {
      std::vector<uint32_t> sentence;
      for (size_t t = 0; t < 6; ++t) {
        uint32_t w = (*group)[rng.Uniform(group->size())];
        sentence.push_back(w);
        corpus.vocab.AddWord(corpus.vocab.WordOf(w));  // bump count
      }
      corpus.sentences.push_back(std::move(sentence));
    }
  }
  return corpus;
}

Word2VecOptions FastOptions() {
  Word2VecOptions options;
  options.dim = 16;
  options.epochs = 4;
  options.window = 3;
  options.seed = 12345;
  return options;
}

TEST(Word2VecTest, RejectsEmptyVocabulary) {
  Vocabulary vocab;
  auto model = Word2Vec::Train(vocab, {}, FastOptions());
  EXPECT_FALSE(model.ok());
}

TEST(Word2VecTest, RejectsZeroDimension) {
  Vocabulary vocab;
  vocab.AddWord("x");
  Word2VecOptions options = FastOptions();
  options.dim = 0;
  EXPECT_FALSE(Word2Vec::Train(vocab, {{0}}, options).ok());
}

TEST(Word2VecTest, RejectsOutOfVocabIds) {
  Vocabulary vocab;
  vocab.AddWord("x");
  EXPECT_FALSE(Word2Vec::Train(vocab, {{5}}, FastOptions()).ok());
}

TEST(Word2VecTest, ProducesRequestedShape) {
  auto corpus = MakeTwoTopicCorpus(20);
  auto model = Word2Vec::Train(corpus.vocab, corpus.sentences, FastOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->vectors().rows(), corpus.vocab.size());
  EXPECT_EQ(model->dim(), 16u);
}

TEST(Word2VecTest, SeparatesTopicalGroups) {
  auto corpus = MakeTwoTopicCorpus();
  auto model = Word2Vec::Train(corpus.vocab, corpus.sentences, FastOptions());
  ASSERT_TRUE(model.ok());
  // Mean within-group similarity must exceed mean cross-group similarity.
  double within = 0.0;
  int within_n = 0;
  double cross = 0.0;
  int cross_n = 0;
  for (uint32_t a : corpus.group_a) {
    for (uint32_t a2 : corpus.group_a) {
      if (a < a2) {
        within += model->Similarity(a, a2);
        ++within_n;
      }
    }
    for (uint32_t b : corpus.group_b) {
      cross += model->Similarity(a, b);
      ++cross_n;
    }
  }
  within /= within_n;
  cross /= cross_n;
  EXPECT_GT(within, cross + 0.2)
      << "within=" << within << " cross=" << cross;
}

TEST(Word2VecTest, DeterministicSingleThread) {
  auto corpus = MakeTwoTopicCorpus(50);
  Word2VecOptions options = FastOptions();
  options.num_threads = 1;
  auto m1 = Word2Vec::Train(corpus.vocab, corpus.sentences, options);
  auto m2 = Word2Vec::Train(corpus.vocab, corpus.sentences, options);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  for (uint32_t r = 0; r < m1->vectors().rows(); ++r) {
    for (size_t d = 0; d < m1->dim(); ++d) {
      EXPECT_EQ(m1->vectors().Row(r)[d], m2->vectors().Row(r)[d]);
    }
  }
}

TEST(Word2VecTest, MultiThreadedStillSeparatesGroups) {
  auto corpus = MakeTwoTopicCorpus();
  Word2VecOptions options = FastOptions();
  options.num_threads = 3;
  auto model = Word2Vec::Train(corpus.vocab, corpus.sentences, options);
  ASSERT_TRUE(model.ok());
  double within = model->Similarity(corpus.group_a[0], corpus.group_a[1]);
  double cross = model->Similarity(corpus.group_a[0], corpus.group_b[0]);
  EXPECT_GT(within, cross);
}

TEST(Word2VecTest, MostSimilarPrefersSameGroup) {
  auto corpus = MakeTwoTopicCorpus();
  auto model = Word2Vec::Train(corpus.vocab, corpus.sentences, FastOptions());
  ASSERT_TRUE(model.ok());
  auto nearest = model->MostSimilar(corpus.group_a[0], 3);
  ASSERT_EQ(nearest.size(), 3u);
  // All 3 nearest neighbours of a group-A word are the other group-A words.
  for (const auto& [id, sim] : nearest) {
    (void)sim;
    bool in_a = false;
    for (uint32_t a : corpus.group_a) in_a = in_a || id == a;
    EXPECT_TRUE(in_a) << "unexpected neighbour " << corpus.vocab.WordOf(id);
  }
}

TEST(Word2VecTest, MostSimilarBoundsK) {
  auto corpus = MakeTwoTopicCorpus(10);
  auto model = Word2Vec::Train(corpus.vocab, corpus.sentences, FastOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->MostSimilar(0, 100).size(), corpus.vocab.size() - 1);
  EXPECT_TRUE(model->MostSimilar(9999, 5).empty());
}

TEST(Word2VecTest, SimilarityOutOfRangeIsZero) {
  auto corpus = MakeTwoTopicCorpus(10);
  auto model = Word2Vec::Train(corpus.vocab, corpus.sentences, FastOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Similarity(0, 10000), 0.0f);
}

}  // namespace
}  // namespace shoal::text
