#include "text/bm25.h"

#include <gtest/gtest.h>

namespace shoal::text {
namespace {

TEST(Bm25Test, EmptyIndexScoresZero) {
  Bm25Index index;
  EXPECT_EQ(index.num_documents(), 0u);
  EXPECT_EQ(index.Score({1, 2}, 0), 0.0);
  EXPECT_TRUE(index.ScoreAll({1}).empty());
}

TEST(Bm25Test, AddDocumentAssignsSequentialIds) {
  Bm25Index index;
  EXPECT_EQ(index.AddDocument({1, 2}), 0u);
  EXPECT_EQ(index.AddDocument({3}), 1u);
  EXPECT_EQ(index.num_documents(), 2u);
}

TEST(Bm25Test, MatchingDocumentOutscoresNonMatching) {
  Bm25Index index;
  index.AddDocument({1, 2, 3});   // doc 0: contains query terms
  index.AddDocument({7, 8, 9});   // doc 1: unrelated
  double s0 = index.Score({1, 2}, 0);
  double s1 = index.Score({1, 2}, 1);
  EXPECT_GT(s0, 0.0);
  EXPECT_EQ(s1, 0.0);
}

TEST(Bm25Test, RareTermWeighsMoreThanCommon) {
  Bm25Index index;
  // term 5 appears in every doc; term 6 only in doc 0.
  index.AddDocument({5, 6});
  index.AddDocument({5, 7});
  index.AddDocument({5, 8});
  double rare = index.Score({6}, 0);
  double common = index.Score({5}, 0);
  EXPECT_GT(rare, common);
}

TEST(Bm25Test, TermFrequencySaturates) {
  Bm25Index index;
  index.AddDocument({1});
  index.AddDocument({1, 1, 1, 1, 1});
  index.AddDocument({2, 3, 4, 5, 6});  // padding for idf
  double once = index.Score({1}, 0);
  double many = index.Score({1}, 1);
  EXPECT_GT(many, 0.0);
  // Five occurrences should score more, but far less than 5x (k1 saturation).
  EXPECT_GT(many, once * 0.9);
  EXPECT_LT(many, once * 5.0);
}

TEST(Bm25Test, LongDocumentsPenalized) {
  Bm25Index index;
  index.AddDocument({1, 2});                          // short doc with term
  index.AddDocument({1, 3, 4, 5, 6, 7, 8, 9, 10, 11});  // long doc with term
  double short_score = index.Score({1}, 0);
  double long_score = index.Score({1}, 1);
  EXPECT_GT(short_score, long_score);
}

TEST(Bm25Test, ScoreAllMatchesIndividualScores) {
  Bm25Index index;
  index.AddDocument({1, 2});
  index.AddDocument({2, 3});
  index.AddDocument({4});
  auto all = index.ScoreAll({2, 4});
  ASSERT_EQ(all.size(), 3u);
  for (uint32_t d = 0; d < 3; ++d) {
    EXPECT_DOUBLE_EQ(all[d], index.Score({2, 4}, d));
  }
}

TEST(Bm25Test, UnknownQueryTermsIgnored) {
  Bm25Index index;
  index.AddDocument({1});
  EXPECT_EQ(index.Score({999}, 0), 0.0);
  EXPECT_GT(index.Score({1, 999}, 0), 0.0);
}

TEST(Bm25Test, OutOfRangeDocScoresZero) {
  Bm25Index index;
  index.AddDocument({1});
  EXPECT_EQ(index.Score({1}, 5), 0.0);
}

TEST(Bm25Test, RepeatedQueryTermsAddUp) {
  Bm25Index index;
  index.AddDocument({1, 2});
  index.AddDocument({3});
  double single = index.Score({1}, 0);
  double doubled = index.Score({1, 1}, 0);
  EXPECT_NEAR(doubled, 2.0 * single, 1e-12);
}

TEST(Bm25Test, IdfNonNegativeEvenForUbiquitousTerms) {
  Bm25Index index;
  index.AddDocument({1});
  index.AddDocument({1});
  index.AddDocument({1});
  EXPECT_GE(index.Score({1}, 0), 0.0);
}

TEST(Bm25Test, CustomParameters) {
  Bm25Index::Options options;
  options.k1 = 2.0;
  options.b = 0.0;  // no length normalization
  Bm25Index index(options);
  index.AddDocument({1, 2});
  index.AddDocument({1, 3, 4, 5, 6, 7, 8, 9});
  // With b = 0, doc length must not matter: equal tf -> equal score.
  EXPECT_NEAR(index.Score({1}, 0), index.Score({1}, 1), 1e-12);
}

}  // namespace
}  // namespace shoal::text
