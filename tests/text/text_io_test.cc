#include "text/text_io.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/tsv.h"

namespace shoal::text {
namespace {

class TextIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: parallel ctest processes must not share a
    // directory that TearDown deletes.
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_text_io_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(TextIoTest, VocabularyRoundTrip) {
  Vocabulary vocab;
  vocab.AddWord("beach", 10);
  vocab.AddWord("dress", 5);
  vocab.AddWord("sunblock", 1);
  ASSERT_TRUE(SaveVocabulary(vocab, Path("vocab.tsv")).ok());
  auto loaded = LoadVocabulary(Path("vocab.tsv"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->Lookup("beach"), 0u);
  EXPECT_EQ(loaded->Lookup("dress"), 1u);
  EXPECT_EQ(loaded->CountOf(0), 10u);
  EXPECT_EQ(loaded->total_count(), 16u);
}

TEST_F(TextIoTest, VocabularyDuplicateRejected) {
  ASSERT_TRUE(util::WriteTsv(Path("dup.tsv"),
                             {{"beach", "1"}, {"beach", "2"}})
                  .ok());
  EXPECT_FALSE(LoadVocabulary(Path("dup.tsv")).ok());
}

TEST_F(TextIoTest, VocabularyMalformedRowRejected) {
  ASSERT_TRUE(util::WriteTsv(Path("bad.tsv"), {{"onlyfield"}}).ok());
  EXPECT_FALSE(LoadVocabulary(Path("bad.tsv")).ok());
}

TEST_F(TextIoTest, EmbeddingsRoundTrip) {
  util::Rng rng(5);
  EmbeddingTable table(7, 13);
  for (size_t r = 0; r < table.rows(); ++r) {
    for (size_t d = 0; d < table.dim(); ++d) {
      table.Row(r)[d] = static_cast<float>(rng.Gaussian());
    }
  }
  ASSERT_TRUE(SaveEmbeddings(table, Path("vec.tsv")).ok());
  auto loaded = LoadEmbeddings(Path("vec.tsv"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->rows(), 7u);
  ASSERT_EQ(loaded->dim(), 13u);
  for (size_t r = 0; r < table.rows(); ++r) {
    for (size_t d = 0; d < table.dim(); ++d) {
      EXPECT_NEAR(loaded->Row(r)[d], table.Row(r)[d], 1e-6);
    }
  }
}

TEST_F(TextIoTest, EmbeddingsEmptyTable) {
  EmbeddingTable table(0, 4);
  ASSERT_TRUE(SaveEmbeddings(table, Path("empty.tsv")).ok());
  auto loaded = LoadEmbeddings(Path("empty.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), 0u);
  EXPECT_EQ(loaded->dim(), 4u);
}

TEST_F(TextIoTest, EmbeddingsMissingHeaderRejected) {
  ASSERT_TRUE(util::WriteTextFile(Path("raw.tsv"), "1 2 3\n").ok());
  EXPECT_FALSE(LoadEmbeddings(Path("raw.tsv")).ok());
}

TEST_F(TextIoTest, EmbeddingsTruncatedFileRejected) {
  ASSERT_TRUE(util::WriteTextFile(Path("trunc.tsv"),
                                  "# shoal-vectors rows=3 dim=2\n1 2\n")
                  .ok());
  EXPECT_FALSE(LoadEmbeddings(Path("trunc.tsv")).ok());
}

TEST_F(TextIoTest, EmbeddingsShortRowRejected) {
  ASSERT_TRUE(util::WriteTextFile(Path("short.tsv"),
                                  "# shoal-vectors rows=1 dim=3\n1 2\n")
                  .ok());
  EXPECT_FALSE(LoadEmbeddings(Path("short.tsv")).ok());
}

TEST_F(TextIoTest, MissingFilesFail) {
  EXPECT_FALSE(LoadVocabulary(Path("none.tsv")).ok());
  EXPECT_FALSE(LoadEmbeddings(Path("none.tsv")).ok());
}

}  // namespace
}  // namespace shoal::text
