#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace shoal::text {
namespace {

TEST(TokenizerTest, SplitsOnWhitespace) {
  auto tokens = Tokenize("beach dress");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "beach");
  EXPECT_EQ(tokens[1], "dress");
}

TEST(TokenizerTest, Lowercases) {
  auto tokens = Tokenize("Beach DRESS");
  EXPECT_EQ(tokens[0], "beach");
  EXPECT_EQ(tokens[1], "dress");
}

TEST(TokenizerTest, PunctuationSeparates) {
  auto tokens = Tokenize("sun-block,2019 (official)");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "sun");
  EXPECT_EQ(tokens[1], "block");
  EXPECT_EQ(tokens[2], "2019");
  EXPECT_EQ(tokens[3], "official");
}

TEST(TokenizerTest, DigitsKeptInsideTokens) {
  auto tokens = Tokenize("dress2 v2x");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "dress2");
  EXPECT_EQ(tokens[1], "v2x");
}

TEST(TokenizerTest, EmptyInputs) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n").empty());
  EXPECT_TRUE(Tokenize("!!!").empty());
}

TEST(TokenizerTest, SingleToken) {
  auto tokens = Tokenize("swimwear");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "swimwear");
}

TEST(TokenizerTest, LeadingAndTrailingSeparators) {
  auto tokens = Tokenize("  ..beach..  ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "beach");
}

}  // namespace
}  // namespace shoal::text
