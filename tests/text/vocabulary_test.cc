#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace shoal::text {
namespace {

TEST(VocabularyTest, AddAssignsSequentialIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.AddWord("beach"), 0u);
  EXPECT_EQ(vocab.AddWord("dress"), 1u);
  EXPECT_EQ(vocab.AddWord("sun"), 2u);
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(VocabularyTest, RepeatedAddReturnsSameIdAndBumpsCount) {
  Vocabulary vocab;
  uint32_t id = vocab.AddWord("beach");
  EXPECT_EQ(vocab.AddWord("beach"), id);
  EXPECT_EQ(vocab.CountOf(id), 2u);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, LookupWithoutInsertion) {
  Vocabulary vocab;
  vocab.AddWord("beach");
  EXPECT_EQ(vocab.Lookup("beach"), 0u);
  EXPECT_EQ(vocab.Lookup("mountain"), kUnknownWord);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, WordOfInvertsIds) {
  Vocabulary vocab;
  vocab.AddWord("a");
  vocab.AddWord("b");
  EXPECT_EQ(vocab.WordOf(0), "a");
  EXPECT_EQ(vocab.WordOf(1), "b");
}

TEST(VocabularyTest, ExplicitCounts) {
  Vocabulary vocab;
  uint32_t id = vocab.AddWord("x", 10);
  vocab.AddWord("x", 5);
  EXPECT_EQ(vocab.CountOf(id), 15u);
  EXPECT_EQ(vocab.total_count(), 15u);
}

TEST(VocabularyTest, ZeroCountInsertions) {
  Vocabulary vocab;
  uint32_t id = vocab.AddWord("rare", 0);
  EXPECT_EQ(vocab.CountOf(id), 0u);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, FrequentWordsFiltersByCount) {
  Vocabulary vocab;
  vocab.AddWord("common", 100);
  vocab.AddWord("mid", 10);
  vocab.AddWord("rare", 1);
  auto frequent = vocab.FrequentWords(10);
  ASSERT_EQ(frequent.size(), 2u);
  EXPECT_EQ(frequent[0], vocab.Lookup("common"));
  EXPECT_EQ(frequent[1], vocab.Lookup("mid"));
}

TEST(VocabularyTest, TotalCountAggregates) {
  Vocabulary vocab;
  vocab.AddWord("a", 3);
  vocab.AddWord("b", 4);
  EXPECT_EQ(vocab.total_count(), 7u);
}

}  // namespace
}  // namespace shoal::text
