#include "text/normalize.h"

#include <gtest/gtest.h>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace shoal::text {
namespace {

TEST(NormalizeQueryTest, EmptyInput) {
  EXPECT_EQ(NormalizeQuery(""), "");
  EXPECT_TRUE(NormalizeQueryTokens("").empty());
}

TEST(NormalizeQueryTest, SeparatorOnlyInputNormalizesToEmpty) {
  EXPECT_EQ(NormalizeQuery("   \t\r\n"), "");
  EXPECT_EQ(NormalizeQuery("--- !!! ..."), "");
  EXPECT_TRUE(NormalizeQueryTokens(" \t ").empty());
}

TEST(NormalizeQueryTest, LowercasesAndJoinsWithSingleSpaces) {
  EXPECT_EQ(NormalizeQuery("Red DRESS"), "red dress");
  EXPECT_EQ(NormalizeQuery("beach-tent 4p"), "beach tent 4p");
}

TEST(NormalizeQueryTest, RepeatedWhitespaceCollapses) {
  EXPECT_EQ(NormalizeQuery("red   dress"), "red dress");
  EXPECT_EQ(NormalizeQuery("  red \t dress \n"), "red dress");
  // A build-time vs serve-time mismatch on any of these would make the
  // normalized dictionary key differ and the lookup silently miss.
  EXPECT_EQ(NormalizeQuery("red dress"), NormalizeQuery("red\tdress"));
}

TEST(NormalizeQueryTest, UnicodeIshBytesActAsSeparators) {
  // Bytes >= 0x80 (UTF-8 continuation/lead bytes) are not ASCII
  // alphanumerics; they must separate tokens, never crash, and never
  // depend on locale. "caf\xc3\xa9" is UTF-8 "café".
  EXPECT_EQ(NormalizeQuery("caf\xc3\xa9 latte"), "caf latte");
  EXPECT_EQ(NormalizeQuery("\xe8\xa3\x99\xe5\xad\x90"), "");  // CJK only
  EXPECT_EQ(NormalizeQuery("a\x80z"), "a z");
  EXPECT_EQ(NormalizeQuery("\xffred\xfe"), "red");
}

TEST(NormalizeQueryTest, TokensMatchTokenizer) {
  // NormalizeQueryTokens is the tokenizer; the string form is the same
  // tokens joined by single spaces. Both invariants are relied on by the
  // serving index (dictionary keys) and BM25 search (word ids).
  const std::string input = "  Mixed-CASE  42\xc2\xb0 query ";
  EXPECT_EQ(NormalizeQueryTokens(input), Tokenize(input));
  EXPECT_EQ(NormalizeQuery(input),
            util::Join(Tokenize(input), " "));
}

TEST(NormalizeQueryTest, Idempotent) {
  const std::string once = NormalizeQuery("  Red   DRESS \xc3\xa9 42 ");
  EXPECT_EQ(NormalizeQuery(once), once);
}

}  // namespace
}  // namespace shoal::text
