#include "text/embedding.h"

#include <cmath>

#include <gtest/gtest.h>

namespace shoal::text {
namespace {

TEST(EmbeddingTableTest, ShapeAndInit) {
  EmbeddingTable table(3, 4, 0.5f);
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.dim(), 4u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t d = 0; d < 4; ++d) EXPECT_EQ(table.Row(r)[d], 0.5f);
  }
}

TEST(EmbeddingTableTest, RowsAreIndependent) {
  EmbeddingTable table(2, 2);
  table.Row(0)[0] = 1.0f;
  EXPECT_EQ(table.Row(1)[0], 0.0f);
}

TEST(EmbeddingTableTest, RowCopyDetaches) {
  EmbeddingTable table(1, 2);
  table.Row(0)[0] = 3.0f;
  auto copy = table.RowCopy(0);
  table.Row(0)[0] = 9.0f;
  EXPECT_EQ(copy[0], 3.0f);
}

TEST(VectorOpsTest, DotProduct) {
  float a[] = {1.0f, 2.0f, 3.0f};
  float b[] = {4.0f, 5.0f, 6.0f};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 32.0f);
}

TEST(VectorOpsTest, Norm) {
  float a[] = {3.0f, 4.0f};
  EXPECT_FLOAT_EQ(Norm(a, 2), 5.0f);
}

TEST(VectorOpsTest, CosineIdenticalIsOne) {
  float a[] = {0.3f, -0.4f, 0.5f};
  EXPECT_NEAR(Cosine(a, a, 3), 1.0f, 1e-6);
}

TEST(VectorOpsTest, CosineOrthogonalIsZero) {
  float a[] = {1.0f, 0.0f};
  float b[] = {0.0f, 1.0f};
  EXPECT_FLOAT_EQ(Cosine(a, b, 2), 0.0f);
}

TEST(VectorOpsTest, CosineOppositeIsMinusOne) {
  float a[] = {2.0f, 0.0f};
  float b[] = {-1.0f, 0.0f};
  EXPECT_NEAR(Cosine(a, b, 2), -1.0f, 1e-6);
}

TEST(VectorOpsTest, CosineZeroVectorIsZero) {
  float a[] = {0.0f, 0.0f};
  float b[] = {1.0f, 1.0f};
  EXPECT_FLOAT_EQ(Cosine(a, b, 2), 0.0f);
}

TEST(VectorOpsTest, ShiftedCosineMapsToUnitInterval) {
  // Eq. 2 of the paper: 1/2 + 1/2 cos.
  float a[] = {1.0f, 0.0f};
  float b[] = {-1.0f, 0.0f};
  EXPECT_NEAR(ShiftedCosine(a, a, 2), 1.0f, 1e-6);
  EXPECT_NEAR(ShiftedCosine(a, b, 2), 0.0f, 1e-6);
  float c[] = {0.0f, 1.0f};
  EXPECT_NEAR(ShiftedCosine(a, c, 2), 0.5f, 1e-6);
}

TEST(MeanVectorTest, AveragesRows) {
  EmbeddingTable table(3, 2);
  table.Row(0)[0] = 1.0f;
  table.Row(1)[0] = 3.0f;
  table.Row(2)[1] = 6.0f;
  auto mean = MeanVector(table, {0, 1, 2});
  EXPECT_FLOAT_EQ(mean[0], 4.0f / 3.0f);
  EXPECT_FLOAT_EQ(mean[1], 2.0f);
}

TEST(MeanVectorTest, EmptyIdsGiveZeroVector) {
  EmbeddingTable table(2, 3, 1.0f);
  auto mean = MeanVector(table, {});
  for (float v : mean) EXPECT_EQ(v, 0.0f);
}

TEST(MeanVectorTest, DuplicateIdsWeighting) {
  EmbeddingTable table(2, 1);
  table.Row(0)[0] = 1.0f;
  table.Row(1)[0] = 4.0f;
  auto mean = MeanVector(table, {0, 0, 1});
  EXPECT_FLOAT_EQ(mean[0], 2.0f);
}

}  // namespace
}  // namespace shoal::text
