#include "baselines/taxogen_lite.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/cluster_metrics.h"
#include "util/random.h"

namespace shoal::baselines {
namespace {

// Embeddings with `clusters` well-separated directions in 8-d.
struct EmbeddingFixture {
  std::vector<std::vector<float>> data;
  std::vector<uint32_t> truth;

  EmbeddingFixture(size_t n, size_t clusters, uint64_t seed = 31) {
    util::Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      uint32_t c = static_cast<uint32_t>(i % clusters);
      std::vector<float> v(8, 0.0f);
      v[c] = 1.0f;  // cluster axis
      for (auto& x : v) {
        x += static_cast<float>(rng.Gaussian(0.0, 0.08));
      }
      data.push_back(std::move(v));
      truth.push_back(c);
    }
  }
};

TEST(TaxoGenLiteTest, ValidatesInputs) {
  TaxoGenLiteOptions options;
  EXPECT_FALSE(RunTaxoGenLite({}, options).ok());
  EXPECT_FALSE(RunTaxoGenLite({{}}, options).ok());
  EXPECT_FALSE(RunTaxoGenLite({{1.0f, 2.0f}, {1.0f}}, options).ok());
  options.branching = 1;
  EXPECT_FALSE(RunTaxoGenLite({{1.0f}}, options).ok());
}

TEST(TaxoGenLiteTest, LabelsCoverAllEntities) {
  EmbeddingFixture f(120, 4);
  TaxoGenLiteOptions options;
  options.branching = 4;
  auto result = RunTaxoGenLite(f.data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->leaf_labels.size(), 120u);
  EXPECT_EQ(result->root_labels.size(), 120u);
  for (uint32_t label : result->leaf_labels) {
    EXPECT_LT(label, result->num_leaf_clusters);
  }
  for (uint32_t label : result->root_labels) {
    EXPECT_LT(label, result->num_root_clusters);
  }
}

TEST(TaxoGenLiteTest, RecoversWellSeparatedClusters) {
  EmbeddingFixture f(200, 4);
  TaxoGenLiteOptions options;
  options.branching = 4;
  options.max_depth = 1;
  auto result = RunTaxoGenLite(f.data, options);
  ASSERT_TRUE(result.ok());
  auto nmi =
      eval::NormalizedMutualInformation(result->root_labels, f.truth);
  ASSERT_TRUE(nmi.ok());
  EXPECT_GT(nmi.value(), 0.8);
}

TEST(TaxoGenLiteTest, DeterministicForSeed) {
  EmbeddingFixture f(100, 3);
  TaxoGenLiteOptions options;
  options.branching = 3;
  auto a = RunTaxoGenLite(f.data, options);
  auto b = RunTaxoGenLite(f.data, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->leaf_labels, b->leaf_labels);
}

TEST(TaxoGenLiteTest, DepthTwoRefinesLeafClusters) {
  EmbeddingFixture f(300, 3);
  TaxoGenLiteOptions shallow;
  shallow.branching = 3;
  shallow.max_depth = 1;
  TaxoGenLiteOptions deep = shallow;
  deep.max_depth = 2;
  deep.min_cluster_size = 10;
  auto s = RunTaxoGenLite(f.data, shallow);
  auto d = RunTaxoGenLite(f.data, deep);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_GE(d->num_leaf_clusters, s->num_leaf_clusters);
}

TEST(TaxoGenLiteTest, TinyInputFewerClustersThanBranching) {
  EmbeddingFixture f(3, 3);
  TaxoGenLiteOptions options;
  options.branching = 5;
  auto result = RunTaxoGenLite(f.data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->num_root_clusters, 3u);
}

TEST(TaxoGenLiteTest, ZeroVectorsHandled) {
  std::vector<std::vector<float>> data(10, std::vector<float>(4, 0.0f));
  data[0][0] = 1.0f;
  TaxoGenLiteOptions options;
  options.branching = 2;
  auto result = RunTaxoGenLite(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->leaf_labels.size(), 10u);
}

}  // namespace
}  // namespace shoal::baselines
