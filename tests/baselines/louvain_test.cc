#include "baselines/louvain.h"

#include <gtest/gtest.h>

#include "eval/cluster_metrics.h"
#include "graph/generators.h"
#include "graph/modularity.h"

namespace shoal::baselines {
namespace {

TEST(LouvainTest, ValidatesInputs) {
  graph::WeightedGraph empty;
  EXPECT_FALSE(RunLouvain(empty, LouvainOptions{}).ok());
  graph::WeightedGraph edgeless(5);
  EXPECT_FALSE(RunLouvain(edgeless, LouvainOptions{}).ok());
}

TEST(LouvainTest, TwoCliquesWithBridge) {
  graph::WeightedGraph g(6);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(4, 5, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 5, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  auto result = RunLouvain(g, LouvainOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_communities, 2u);
  EXPECT_EQ(result->labels[0], result->labels[1]);
  EXPECT_EQ(result->labels[1], result->labels[2]);
  EXPECT_EQ(result->labels[3], result->labels[4]);
  EXPECT_NE(result->labels[0], result->labels[3]);
  EXPECT_NEAR(result->modularity, 6.0 / 7.0 - 0.5, 1e-9);
}

TEST(LouvainTest, RecoversPlantedPartition) {
  graph::PlantedPartitionOptions options;
  options.num_vertices = 300;
  options.num_clusters = 6;
  options.p_in = 0.3;
  options.p_out = 0.01;
  auto planted = graph::GeneratePlantedPartition(options);
  ASSERT_TRUE(planted.ok());
  auto result = RunLouvain(planted->graph, LouvainOptions{});
  ASSERT_TRUE(result.ok());
  auto nmi = eval::NormalizedMutualInformation(result->labels,
                                               planted->ground_truth);
  ASSERT_TRUE(nmi.ok());
  EXPECT_GT(nmi.value(), 0.85);
  EXPECT_GT(result->modularity, 0.3);
}

TEST(LouvainTest, ModularityMatchesRecomputation) {
  auto g = graph::GenerateErdosRenyi(120, 0.08, 9);
  ASSERT_TRUE(g.ok());
  auto result = RunLouvain(*g, LouvainOptions{});
  ASSERT_TRUE(result.ok());
  auto q = graph::Modularity(*g, result->labels);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value(), result->modularity, 1e-9);
}

TEST(LouvainTest, LabelsAreDense) {
  auto g = graph::GenerateErdosRenyi(150, 0.05, 21);
  ASSERT_TRUE(g.ok());
  auto result = RunLouvain(*g, LouvainOptions{});
  ASSERT_TRUE(result.ok());
  uint32_t max_label = 0;
  for (uint32_t l : result->labels) max_label = std::max(max_label, l);
  EXPECT_EQ(max_label + 1, result->num_communities);
}

TEST(LouvainTest, DeterministicForSeed) {
  auto g = graph::GenerateErdosRenyi(100, 0.1, 33);
  ASSERT_TRUE(g.ok());
  LouvainOptions options;
  options.seed = 12;
  auto a = RunLouvain(*g, options);
  auto b = RunLouvain(*g, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(LouvainTest, BeatsRandomLabelsOnModularity) {
  graph::PlantedPartitionOptions options;
  options.num_vertices = 200;
  options.num_clusters = 4;
  auto planted = graph::GeneratePlantedPartition(options);
  ASSERT_TRUE(planted.ok());
  auto result = RunLouvain(planted->graph, LouvainOptions{});
  ASSERT_TRUE(result.ok());
  auto truth_q =
      graph::Modularity(planted->graph, planted->ground_truth);
  ASSERT_TRUE(truth_q.ok());
  // Louvain optimises modularity directly, so it should reach at least
  // the planted partition's score (up to small slack).
  EXPECT_GT(result->modularity, truth_q.value() - 0.05);
}

}  // namespace
}  // namespace shoal::baselines
