#include "baselines/ontology_recommender.h"
#include "baselines/topic_recommender.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace shoal::baselines {
namespace {

// Ontology: 2 departments x 2 leaves. Entities spread across leaves.
struct RecommenderFixture {
  data::Ontology ontology = data::Ontology::BuildThreeLevel(
      {"wear", "outdoor"}, {{"dress", "jeans"}, {"tent", "lantern"}});
  // entity -> leaf category: 3 in each of the 4 leaves.
  std::vector<uint32_t> categories;

  RecommenderFixture() {
    for (uint32_t leaf : ontology.leaves()) {
      for (int i = 0; i < 3; ++i) categories.push_back(leaf);
    }
  }
};

TEST(OntologyRecommenderTest, PrefersSameCategory) {
  RecommenderFixture f;
  OntologyRecommender rec(f.ontology, f.categories);
  util::Rng rng(1);
  auto slate = rec.Recommend(0, 2, rng);
  ASSERT_EQ(slate.size(), 2u);
  for (uint32_t e : slate) {
    EXPECT_EQ(f.categories[e], f.categories[0]);
    EXPECT_NE(e, 0u);
  }
}

TEST(OntologyRecommenderTest, FallsBackToSiblingLeaves) {
  RecommenderFixture f;
  OntologyRecommender rec(f.ontology, f.categories);
  util::Rng rng(2);
  // Ask for more than the same-category pool (2 others) can provide.
  auto slate = rec.Recommend(0, 5, rng);
  EXPECT_EQ(slate.size(), 5u);
  // First two from the same leaf, rest from the sibling leaf of the same
  // department.
  uint32_t dept = f.ontology.DepartmentOf(f.categories[0]);
  for (uint32_t e : slate) {
    EXPECT_EQ(f.ontology.DepartmentOf(f.categories[e]), dept);
  }
}

TEST(OntologyRecommenderTest, NeverRecommendsSeed) {
  RecommenderFixture f;
  OntologyRecommender rec(f.ontology, f.categories);
  util::Rng rng(3);
  for (uint32_t seed = 0; seed < f.categories.size(); ++seed) {
    for (uint32_t e : rec.Recommend(seed, 6, rng)) {
      EXPECT_NE(e, seed);
    }
  }
}

TEST(OntologyRecommenderTest, HandlesInvalidSeedAndZeroK) {
  RecommenderFixture f;
  OntologyRecommender rec(f.ontology, f.categories);
  util::Rng rng(4);
  EXPECT_TRUE(rec.Recommend(9999, 4, rng).empty());
  EXPECT_TRUE(rec.Recommend(0, 0, rng).empty());
}

TEST(OntologyRecommenderTest, SlateBoundedByDepartmentPool) {
  RecommenderFixture f;
  OntologyRecommender rec(f.ontology, f.categories);
  util::Rng rng(5);
  // Department has 6 entities; excluding the seed leaves 5.
  auto slate = rec.Recommend(0, 50, rng);
  EXPECT_EQ(slate.size(), 5u);
}

// --- TopicRecommender ---------------------------------------------------

struct TopicFixture {
  core::Dendrogram dendrogram{6};
  core::Taxonomy taxonomy;

  TopicFixture() {
    // Cluster {0,1,2} with subcluster {0,1}; cluster {3,4,5} likewise.
    uint32_t m01 = dendrogram.Merge(0, 1, 0.9).value();
    (void)dendrogram.Merge(m01, 2, 0.7).value();
    uint32_t m34 = dendrogram.Merge(3, 4, 0.9).value();
    (void)dendrogram.Merge(m34, 5, 0.7).value();
    core::TaxonomyOptions options;
    options.min_topic_size = 2;
    options.min_root_size = 2;
    taxonomy = core::Taxonomy::Build(dendrogram, {0, 0, 0, 1, 1, 1},
                                     options);
  }
};

TEST(TopicRecommenderTest, RecommendsFromOwnTopic) {
  TopicFixture f;
  TopicRecommender rec(f.taxonomy);
  util::Rng rng(6);
  auto slate = rec.Recommend(0, 2, rng);
  ASSERT_EQ(slate.size(), 2u);
  std::unordered_set<uint32_t> own_cluster = {1, 2};
  for (uint32_t e : slate) {
    EXPECT_TRUE(own_cluster.contains(e)) << "entity " << e;
  }
}

TEST(TopicRecommenderTest, NeverRecommendsSeedOrDuplicates) {
  TopicFixture f;
  TopicRecommender rec(f.taxonomy);
  util::Rng rng(7);
  auto slate = rec.Recommend(3, 5, rng);
  std::unordered_set<uint32_t> seen;
  for (uint32_t e : slate) {
    EXPECT_NE(e, 3u);
    EXPECT_TRUE(seen.insert(e).second);
  }
}

TEST(TopicRecommenderTest, SlateLimitedByTopicWithoutFallback) {
  TopicFixture f;
  TopicRecommender rec(f.taxonomy);
  util::Rng rng(8);
  // Root topic of entity 0 has 3 members; excluding the seed leaves 2.
  auto slate = rec.Recommend(0, 10, rng);
  EXPECT_EQ(slate.size(), 2u);
}

TEST(TopicRecommenderTest, FallbackFillsSlate) {
  TopicFixture f;
  RecommenderFixture ontology_fixture;
  // Reuse a fixed-category ontology recommender over 6 entities.
  std::vector<uint32_t> categories(6, ontology_fixture.ontology.leaves()[0]);
  OntologyRecommender fallback(ontology_fixture.ontology, categories);
  TopicRecommender rec(f.taxonomy, &fallback);
  util::Rng rng(9);
  auto slate = rec.Recommend(0, 5, rng);
  EXPECT_EQ(slate.size(), 5u);
  std::unordered_set<uint32_t> seen(slate.begin(), slate.end());
  EXPECT_EQ(seen.size(), slate.size());
  EXPECT_FALSE(seen.contains(0));
}

TEST(TopicRecommenderTest, InvalidSeedEmptySlate) {
  TopicFixture f;
  TopicRecommender rec(f.taxonomy);
  util::Rng rng(10);
  EXPECT_TRUE(rec.Recommend(9999, 3, rng).empty());
}

}  // namespace
}  // namespace shoal::baselines
