// Recall and determinism of the MinHash/LSH candidate stage against the
// exact co-click path, on a planted workload whose true edge set is the
// intra-intent pairs. Exact rescoring means LSH can only lose edges
// (recall), never invent them (precision), so the tests measure
//   recall = |E_lsh ∩ E_exact| / |E_exact|
// across band/row settings, check the bucket-superset property that
// defines the candidate stage, and pin the thread-count byte-identity
// contract of DESIGN.md §6.1.

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/entity_graph.h"
#include "core/minhash.h"
#include "util/thread_pool.h"

namespace shoal::core {
namespace {

struct PlantedWorkload {
  graph::BipartiteGraph qi{0, 0};
  std::vector<std::vector<uint32_t>> titles;
  text::EmbeddingTable vectors{0, 0};
  std::vector<std::vector<uint32_t>> queries_of;
};

// Entities come in intents of `intent_size`; each intent owns
// `queries_per_intent` queries that click a random majority of its
// entities, and intent-specific title tokens. Intra-intent pairs share
// queries and title n-grams (high Jaccard, edges of the exact graph);
// cross-intent pairs share nothing.
PlantedWorkload MakePlanted(size_t num_intents, size_t intent_size,
                            size_t queries_per_intent, uint64_t seed) {
  PlantedWorkload w;
  const size_t num_entities = num_intents * intent_size;
  const size_t num_queries = num_intents * queries_per_intent;
  const size_t vocab = num_intents * 3;
  w.qi = graph::BipartiteGraph(num_queries, num_entities);
  w.vectors = text::EmbeddingTable(vocab, 8);
  std::mt19937_64 rng(seed);
  for (size_t v = 0; v < vocab; ++v) {
    w.vectors.Row(v)[(v / 3) % 8] = 1.0f;  // intent-aligned directions
  }
  w.titles.resize(num_entities);
  for (size_t e = 0; e < num_entities; ++e) {
    const uint32_t base = static_cast<uint32_t>((e / intent_size) * 3);
    w.titles[e] = {base, base + 1, base + 2};
  }
  std::uniform_int_distribution<size_t> fanout(intent_size / 2,
                                               intent_size - 1);
  for (size_t k = 0; k < num_intents; ++k) {
    for (size_t j = 0; j < queries_per_intent; ++j) {
      const uint32_t q = static_cast<uint32_t>(k * queries_per_intent + j);
      std::vector<uint32_t> members(intent_size);
      for (size_t i = 0; i < intent_size; ++i) {
        members[i] = static_cast<uint32_t>(k * intent_size + i);
      }
      std::shuffle(members.begin(), members.end(), rng);
      const size_t links = fanout(rng);
      for (size_t i = 0; i < links; ++i) {
        EXPECT_TRUE(w.qi.AddInteraction(q, members[i]).ok());
      }
    }
  }
  w.queries_of.resize(num_entities);
  for (size_t e = 0; e < num_entities; ++e) {
    w.queries_of[e] = w.qi.QueriesOfItem(static_cast<uint32_t>(e));
  }
  return w;
}

std::set<std::pair<uint32_t, uint32_t>> EdgeSet(
    const graph::WeightedGraph& g) {
  std::set<std::pair<uint32_t, uint32_t>> edges;
  for (const auto& e : g.AllEdges()) edges.insert({e.u, e.v});
  return edges;
}

double Recall(const std::set<std::pair<uint32_t, uint32_t>>& exact,
              const std::set<std::pair<uint32_t, uint32_t>>& lsh) {
  if (exact.empty()) return 1.0;
  size_t common = 0;
  for (const auto& e : exact) common += lsh.count(e);
  return static_cast<double>(common) / static_cast<double>(exact.size());
}

TEST(LshRecallTest, RecallSweepAcrossBandSettings) {
  auto w = MakePlanted(/*num_intents=*/40, /*intent_size=*/8,
                       /*queries_per_intent=*/12, /*seed=*/2019);
  EntityGraphOptions exact_options;
  EntityGraphStats exact_stats;
  auto exact = BuildEntityGraph(w.qi, w.titles, w.vectors, exact_options,
                                &exact_stats);
  ASSERT_TRUE(exact.ok());
  const auto exact_edges = EdgeSet(*exact);
  ASSERT_GT(exact_edges.size(), 100u) << "planted workload too sparse";

  // (bands, rows, recall floor): the default setting must clear the CI
  // gate's 0.95; fewer bands with more rows slides down the S-curve.
  struct Setting {
    size_t bands;
    size_t rows;
    double min_recall;
  };
  const MinHashConfig defaults;
  ASSERT_EQ(defaults.bands, 24u) << "sweep floors assume the default";
  ASSERT_EQ(defaults.rows, 1u) << "sweep floors assume the default";
  const Setting settings[] = {
      {24, 1, 0.95},
      {16, 1, 0.90},
      {32, 1, 0.95},
      {32, 2, 0.90},
  };
  double default_recall = 0.0;
  for (const auto& s : settings) {
    EntityGraphOptions options;
    options.candidate_strategy = CandidateStrategy::kMinHashLsh;
    options.lsh.minhash.bands = s.bands;
    options.lsh.minhash.rows = s.rows;
    EntityGraphStats stats;
    auto lsh = BuildEntityGraph(w.qi, w.titles, w.vectors, options, &stats);
    ASSERT_TRUE(lsh.ok());
    const double recall = Recall(exact_edges, EdgeSet(*lsh));
    EXPECT_GE(recall, s.min_recall)
        << s.bands << " bands x " << s.rows << " rows";
    EXPECT_GT(stats.lsh_signed_entities, 0u);
    EXPECT_GT(stats.lsh_buckets, 0u);
    if (s.bands == defaults.bands && s.rows == defaults.rows) {
      default_recall = recall;
    }
  }

  // A deliberately starved setting (few bands, many rows) demonstrates
  // the trade-off: fewer candidates, lower recall than the default.
  EntityGraphOptions starved;
  starved.candidate_strategy = CandidateStrategy::kMinHashLsh;
  starved.lsh.minhash.bands = 4;
  starved.lsh.minhash.rows = 6;
  EntityGraphStats starved_stats;
  auto starved_graph =
      BuildEntityGraph(w.qi, w.titles, w.vectors, starved, &starved_stats);
  ASSERT_TRUE(starved_graph.ok());
  EXPECT_LT(Recall(exact_edges, EdgeSet(*starved_graph)), default_recall);
  EXPECT_LT(starved_stats.candidate_pairs, exact_stats.candidate_pairs);
}

TEST(LshRecallTest, CandidatesContainEverySharedBandPair) {
  // The candidate set is *defined* as the pairs sharing at least one
  // band bucket within max_bucket. Recompute bucket membership from
  // first principles with the same MinHasher and check containment in
  // both directions: superset of shared-band pairs, and nothing that
  // shares no band.
  auto w = MakePlanted(/*num_intents=*/12, /*intent_size=*/6,
                       /*queries_per_intent=*/8, /*seed=*/7);
  EntityGraphLshOptions options;
  options.minhash.bands = 8;
  options.minhash.rows = 2;
  options.max_bucket = 0;  // unlimited: candidates == shared-band pairs
  auto pairs = BuildLshCandidatePairs(w.queries_of, w.titles, options,
                                      nullptr, nullptr);

  const MinHasher hasher(options.minhash);
  std::map<std::pair<size_t, uint64_t>, std::vector<uint32_t>> buckets;
  std::vector<uint64_t> shingles, scratch, keys;
  for (uint32_t e = 0; e < w.queries_of.size(); ++e) {
    shingles.clear();
    AppendQueryShingles(w.queries_of[e], &shingles);
    AppendTitleShingles(w.titles[e], options.title_shingle_len, &shingles);
    if (!hasher.BandKeys(shingles, &scratch, &keys)) continue;
    for (size_t b = 0; b < keys.size(); ++b) {
      buckets[{b, keys[b]}].push_back(e);
    }
  }
  std::set<uint64_t> expected;
  for (const auto& [key, members] : buckets) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        const uint32_t u = std::min(members[i], members[j]);
        const uint32_t v = std::max(members[i], members[j]);
        expected.insert((static_cast<uint64_t>(u) << 32) | v);
      }
    }
  }
  const std::set<uint64_t> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(pairs.size(), got.size()) << "candidates not deduped";
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
}

TEST(LshRecallTest, CandidatePairsIdenticalAcrossThreadCounts) {
  auto w = MakePlanted(/*num_intents=*/20, /*intent_size=*/7,
                       /*queries_per_intent=*/9, /*seed=*/31);
  EntityGraphLshOptions options;
  options.batch_entities = 16;  // force many batches through the queue
  options.queue_capacity = 2;
  auto serial = BuildLshCandidatePairs(w.queries_of, w.titles, options,
                                       nullptr, nullptr);
  ASSERT_FALSE(serial.empty());
  for (size_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    EntityGraphStats stats;
    auto parallel = BuildLshCandidatePairs(w.queries_of, w.titles, options,
                                           &pool, &stats);
    EXPECT_EQ(serial, parallel) << threads << " threads";
    EXPECT_EQ(stats.lsh_signed_entities, w.queries_of.size());
  }
}

TEST(LshRecallTest, GraphByteIdenticalAcrossThreadCounts) {
  // The full determinism contract: the LSH-strategy entity graph —
  // edges, order, and bitwise weights — must not depend on the thread
  // count. {1, 2, 4, 8} mirrors the CI matrix of the recall gate.
  auto w = MakePlanted(/*num_intents=*/25, /*intent_size=*/8,
                       /*queries_per_intent=*/10, /*seed=*/101);
  EntityGraphOptions options;
  options.candidate_strategy = CandidateStrategy::kMinHashLsh;
  options.lsh.batch_entities = 32;
  EntityGraphStats base_stats;
  auto base = BuildEntityGraph(w.qi, w.titles, w.vectors, options,
                               &base_stats);
  ASSERT_TRUE(base.ok());
  ASSERT_GT(base->num_edges(), 0u);
  const auto base_edges = base->AllEdges();
  for (size_t threads : {2u, 4u, 8u}) {
    options.num_threads = threads;
    EntityGraphStats stats;
    auto g = BuildEntityGraph(w.qi, w.titles, w.vectors, options, &stats);
    ASSERT_TRUE(g.ok());
    const auto edges = g->AllEdges();
    ASSERT_EQ(edges.size(), base_edges.size()) << threads << " threads";
    for (size_t i = 0; i < edges.size(); ++i) {
      EXPECT_EQ(edges[i].u, base_edges[i].u) << threads << " threads";
      EXPECT_EQ(edges[i].v, base_edges[i].v) << threads << " threads";
      EXPECT_EQ(edges[i].weight, base_edges[i].weight)
          << threads << " threads";
    }
    EXPECT_EQ(stats.candidate_pairs, base_stats.candidate_pairs);
    EXPECT_EQ(stats.kept_edges, base_stats.kept_edges);
    EXPECT_EQ(stats.lsh_signed_entities, base_stats.lsh_signed_entities);
    EXPECT_EQ(stats.lsh_buckets, base_stats.lsh_buckets);
    EXPECT_EQ(stats.lsh_emitted_pairs, base_stats.lsh_emitted_pairs);
  }
}

}  // namespace
}  // namespace shoal::core
