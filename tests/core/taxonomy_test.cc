#include "core/taxonomy.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace shoal::core {
namespace {

// Builds a dendrogram over 8 leaves with two final clusters:
//   cluster A = {0,1,2,3} built as ((0,1),(2,3)) then merged
//   cluster B = {4,5,6}  built as ((4,5),6)
//   leaf 7 stays a singleton root.
Dendrogram MakeTwoClusterDendrogram() {
  Dendrogram d(8);
  uint32_t m01 = d.Merge(0, 1, 0.9).value();    // node 8
  uint32_t m23 = d.Merge(2, 3, 0.85).value();   // node 9
  uint32_t a = d.Merge(m01, m23, 0.7).value();  // node 10
  uint32_t m45 = d.Merge(4, 5, 0.8).value();    // node 11
  uint32_t b = d.Merge(m45, 6, 0.6).value();    // node 12
  (void)a;
  (void)b;
  return d;
}

std::vector<uint32_t> Categories() {
  // Entities 0-3 in categories {10,10,11,11}; 4-6 in {12,12,13}; 7 in 14.
  return {10, 10, 11, 11, 12, 12, 13, 14};
}

TEST(TaxonomyTest, RootsAreFinalClusters) {
  auto d = MakeTwoClusterDendrogram();
  TaxonomyOptions options;
  options.min_topic_size = 2;
  options.min_root_size = 2;
  auto taxonomy = Taxonomy::Build(d, Categories(), options);
  // Singleton root (leaf 7) is dropped; two root topics remain.
  EXPECT_EQ(taxonomy.roots().size(), 2u);
  std::vector<size_t> sizes;
  for (uint32_t r : taxonomy.roots()) {
    sizes.push_back(taxonomy.topic(r).entities.size());
  }
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{3, 4}));
}

TEST(TaxonomyTest, SubTopicsNestUnderRoots) {
  auto d = MakeTwoClusterDendrogram();
  TaxonomyOptions options;
  options.min_topic_size = 2;
  options.min_root_size = 2;
  auto taxonomy = Taxonomy::Build(d, Categories(), options);
  // Cluster A (4 leaves) has sub-topics {0,1} and {2,3}.
  uint32_t root_a = kNoTopic;
  for (uint32_t r : taxonomy.roots()) {
    if (taxonomy.topic(r).entities.size() == 4) root_a = r;
  }
  ASSERT_NE(root_a, kNoTopic);
  const auto& topic_a = taxonomy.topic(root_a);
  ASSERT_EQ(topic_a.children.size(), 2u);
  for (uint32_t child : topic_a.children) {
    const auto& sub = taxonomy.topic(child);
    EXPECT_EQ(sub.parent, root_a);
    EXPECT_EQ(sub.level, 1u);
    EXPECT_EQ(sub.entities.size(), 2u);
  }
}

TEST(TaxonomyTest, SmallNodesFoldIntoParents) {
  auto d = MakeTwoClusterDendrogram();
  TaxonomyOptions options;
  options.min_topic_size = 4;  // only cluster A qualifies as a topic
  options.min_root_size = 3;
  auto taxonomy = Taxonomy::Build(d, Categories(), options);
  // Cluster B (3 leaves) is a root >= min_root_size but below
  // min_topic_size... root still qualifies only via queue admission:
  // roots enter the queue when >= min_root_size, and become topics when
  // >= min_topic_size. Cluster B (3) fails min_topic_size -> dropped.
  ASSERT_EQ(taxonomy.roots().size(), 1u);
  const auto& root = taxonomy.topic(taxonomy.roots()[0]);
  EXPECT_EQ(root.entities.size(), 4u);
  EXPECT_TRUE(root.children.empty());  // sub-merges of size 2 are folded
}

TEST(TaxonomyTest, CategoryCountsAggregated) {
  auto d = MakeTwoClusterDendrogram();
  TaxonomyOptions options;
  auto taxonomy = Taxonomy::Build(d, Categories(), options);
  uint32_t root_a = kNoTopic;
  for (uint32_t r : taxonomy.roots()) {
    if (taxonomy.topic(r).entities.size() == 4) root_a = r;
  }
  ASSERT_NE(root_a, kNoTopic);
  const auto& cats = taxonomy.topic(root_a).categories;
  ASSERT_EQ(cats.size(), 2u);
  // Categories 10 and 11, two entities each; ties sorted by id.
  EXPECT_EQ(cats[0].first, 10u);
  EXPECT_EQ(cats[0].second, 2u);
  EXPECT_EQ(cats[1].first, 11u);
  EXPECT_EQ(cats[1].second, 2u);
}

TEST(TaxonomyTest, TopicOfEntityIsDeepest) {
  auto d = MakeTwoClusterDendrogram();
  TaxonomyOptions options;
  options.min_topic_size = 2;
  options.min_root_size = 2;
  auto taxonomy = Taxonomy::Build(d, Categories(), options);
  uint32_t t0 = taxonomy.TopicOfEntity(0);
  ASSERT_NE(t0, kNoTopic);
  EXPECT_EQ(taxonomy.topic(t0).entities.size(), 2u);  // the {0,1} subtopic
  EXPECT_EQ(taxonomy.TopicOfEntity(1), t0);
  EXPECT_NE(taxonomy.TopicOfEntity(2), t0);
}

TEST(TaxonomyTest, RootTopicOfEntityWalksUp) {
  auto d = MakeTwoClusterDendrogram();
  TaxonomyOptions options;
  options.min_topic_size = 2;
  options.min_root_size = 2;
  auto taxonomy = Taxonomy::Build(d, Categories(), options);
  uint32_t root0 = taxonomy.RootTopicOfEntity(0);
  EXPECT_EQ(taxonomy.topic(root0).parent, kNoTopic);
  EXPECT_EQ(taxonomy.RootTopicOfEntity(3), root0);
  EXPECT_NE(taxonomy.RootTopicOfEntity(4), root0);
}

TEST(TaxonomyTest, DroppedEntityMapsToNoTopic) {
  auto d = MakeTwoClusterDendrogram();
  TaxonomyOptions options;
  options.min_root_size = 2;
  auto taxonomy = Taxonomy::Build(d, Categories(), options);
  EXPECT_EQ(taxonomy.TopicOfEntity(7), kNoTopic);
  EXPECT_EQ(taxonomy.RootTopicOfEntity(7), kNoTopic);
}

TEST(TaxonomyTest, RootLabelsDenseAndComplete) {
  auto d = MakeTwoClusterDendrogram();
  TaxonomyOptions options;
  options.min_root_size = 2;
  auto taxonomy = Taxonomy::Build(d, Categories(), options);
  auto labels = taxonomy.RootLabels();
  ASSERT_EQ(labels.size(), 8u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[4], labels[6]);
  EXPECT_NE(labels[0], labels[4]);
  // Dropped leaf 7 gets its own label distinct from both clusters.
  EXPECT_NE(labels[7], labels[0]);
  EXPECT_NE(labels[7], labels[4]);
}

TEST(TaxonomyTest, EmptyDendrogramProducesEmptyTaxonomy) {
  Dendrogram d(3);  // no merges: all roots are singletons
  auto taxonomy = Taxonomy::Build(d, {1, 2, 3}, TaxonomyOptions{});
  EXPECT_EQ(taxonomy.num_topics(), 0u);
  EXPECT_TRUE(taxonomy.roots().empty());
}

TEST(TaxonomyTest, SingleRootSizeOneOptions) {
  Dendrogram d(2);
  (void)d.Merge(0, 1, 0.9).value();
  TaxonomyOptions options;
  options.min_topic_size = 1;
  options.min_root_size = 1;
  auto taxonomy = Taxonomy::Build(d, {5, 6}, options);
  ASSERT_EQ(taxonomy.roots().size(), 1u);
  EXPECT_EQ(taxonomy.topic(taxonomy.roots()[0]).entities.size(), 2u);
}

}  // namespace
}  // namespace shoal::core
