#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel_hac.h"
#include "core/sequential_hac.h"
#include "graph/generators.h"

namespace shoal::core {
namespace {

// The SHOAL determinism contract (DESIGN.md): the dendrogram produced
// by ParallelHac is a pure function of the graph and the HAC options —
// never of the thread count or the partitioning. These tests sweep the
// full execution matrix and require byte-identical results.

std::vector<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t,
                       double>>
DendrogramBytes(const Dendrogram& d) {
  std::vector<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t,
                         double>>
      out;
  out.reserve(d.num_nodes());
  for (uint32_t i = 0; i < d.num_nodes(); ++i) {
    const auto& n = d.node(i);
    // merge_similarity is compared as an exact double: "deterministic"
    // means bit-identical floats, not approximately-equal ones.
    out.emplace_back(n.id, n.parent, n.left, n.right, n.size,
                     n.merge_similarity);
  }
  return out;
}

graph::WeightedGraph TestGraph(bool planted, uint64_t seed) {
  if (!planted) {
    auto er = graph::GenerateErdosRenyi(180, 0.07, seed);
    EXPECT_TRUE(er.ok());
    return std::move(er.value());
  }
  graph::PlantedPartitionOptions po;
  po.num_vertices = 200;
  po.num_clusters = 10;
  po.p_in = 0.45;
  po.p_out = 0.01;
  po.mu_in = 0.8;
  po.seed = seed;
  auto result = graph::GeneratePlantedPartition(po);
  EXPECT_TRUE(result.ok());
  return std::move(result->graph);
}

struct MatrixCase {
  bool planted;
  uint64_t seed;
};

class HacDeterminismTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(HacDeterminismTest, ByteIdenticalAcrossThreadsAndPartitions) {
  const MatrixCase& param = GetParam();
  auto graph = TestGraph(param.planted, param.seed);

  std::vector<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t,
                         double>>
      reference;
  bool have_reference = false;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (size_t partitions : {1u, 4u, 13u}) {
      ParallelHacOptions options;
      options.num_threads = threads;
      options.num_partitions = partitions;
      options.hac.threshold = 0.3;
      auto d = ParallelHac(graph, options);
      ASSERT_TRUE(d.ok()) << d.status().message();
      auto bytes = DendrogramBytes(d.value());
      if (!have_reference) {
        reference = std::move(bytes);
        have_reference = true;
      } else {
        EXPECT_EQ(bytes, reference)
            << "threads=" << threads << " partitions=" << partitions;
      }
    }
  }
}

// Delta diffusion suppresses messages, never decisions: at every
// diffusion depth the reduced message flow plus the exact ball-k
// verification must reproduce the full-broadcast dendrogram and merge
// schedule byte for byte, while sending strictly fewer messages.
TEST_P(HacDeterminismTest, DeltaMatchesFullBroadcastAtEveryDepth) {
  const MatrixCase& param = GetParam();
  auto graph = TestGraph(param.planted, param.seed);
  for (size_t k : {1u, 2u, 3u}) {
    ParallelHacOptions options;
    options.hac.threshold = 0.3;
    options.diffusion_iterations = k;

    options.diffusion_mode = DiffusionMode::kDelta;
    ParallelHacStats delta_stats;
    auto delta = ParallelHac(graph, options, &delta_stats);
    ASSERT_TRUE(delta.ok()) << delta.status().message();

    options.diffusion_mode = DiffusionMode::kFullBroadcast;
    ParallelHacStats full_stats;
    auto full = ParallelHac(graph, options, &full_stats);
    ASSERT_TRUE(full.ok()) << full.status().message();

    EXPECT_EQ(DendrogramBytes(delta.value()), DendrogramBytes(full.value()))
        << "k=" << k;
    EXPECT_EQ(delta_stats.total_merges, full_stats.total_merges) << "k=" << k;
    EXPECT_EQ(delta_stats.rounds, full_stats.rounds) << "k=" << k;
    EXPECT_LT(delta_stats.total_messages, full_stats.total_messages)
        << "k=" << k;
  }
}

// The fanout cap limits propagation, not correctness: a cap-1 run must
// agree byte for byte with an uncapped run, and the suppressed
// propagation must visibly land in the exact-verification fallback
// (candidate pairs get rejected rather than wrongly merged).
TEST_P(HacDeterminismTest, FanoutCapOnePreservesDendrogram) {
  const MatrixCase& param = GetParam();
  auto graph = TestGraph(param.planted, param.seed);
  ParallelHacOptions options;
  options.hac.threshold = 0.3;

  options.fanout_cap = 1;
  ParallelHacStats capped_stats;
  auto capped = ParallelHac(graph, options, &capped_stats);
  ASSERT_TRUE(capped.ok()) << capped.status().message();

  options.fanout_cap = 0;  // unlimited
  ParallelHacStats uncapped_stats;
  auto uncapped = ParallelHac(graph, options, &uncapped_stats);
  ASSERT_TRUE(uncapped.ok()) << uncapped.status().message();

  EXPECT_EQ(DendrogramBytes(capped.value()), DendrogramBytes(uncapped.value()));
  EXPECT_LE(capped_stats.total_messages, uncapped_stats.total_messages);
  EXPECT_GT(capped_stats.total_rejected, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, HacDeterminismTest,
    ::testing::Values(MatrixCase{false, 11}, MatrixCase{false, 29},
                      MatrixCase{false, 47}, MatrixCase{true, 11},
                      MatrixCase{true, 29}, MatrixCase{true, 47}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return std::string(info.param.planted ? "planted" : "er") + "_s" +
             std::to_string(info.param.seed);
    });

// On well-separated planted partitions the locally-maximal-edge rounds
// make the same merge decisions as exact best-first HAC, so the flat
// clusterings agree at the default threshold. This is the paper's
// quality claim (Sec 2.2) in its strongest checkable form.
TEST(HacParallelVsSequentialTest, FlatClustersAgreeOnPlantedPartitions) {
  for (uint64_t seed : {11ull, 29ull, 47ull}) {
    auto graph = TestGraph(/*planted=*/true, seed);

    ParallelHacOptions par_options;  // default threshold
    par_options.num_threads = 4;
    par_options.num_partitions = 4;
    auto par = ParallelHac(graph, par_options);
    ASSERT_TRUE(par.ok());

    HacOptions seq_options;  // same default threshold
    auto seq = SequentialHac(graph, seq_options);
    ASSERT_TRUE(seq.ok());

    auto par_flat = par->FlatClusters();
    auto seq_flat = seq->FlatClusters();
    ASSERT_EQ(par_flat.size(), seq_flat.size());
    // Same partition of the vertex set; label values are incidental, so
    // compare via canonical relabelling (label -> first vertex seen).
    auto canonical = [](const std::vector<uint32_t>& labels) {
      // Labels are dendrogram root ids, which range up to 2V - 1.
      std::vector<uint32_t> first(2 * labels.size(), kNoNode);
      std::vector<uint32_t> out(labels.size());
      for (uint32_t v = 0; v < labels.size(); ++v) {
        if (first[labels[v]] == kNoNode) first[labels[v]] = v;
        out[v] = first[labels[v]];
      }
      return out;
    };
    EXPECT_EQ(canonical(par_flat), canonical(seq_flat)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace shoal::core
