#include "core/entity_graph.h"

#include <cmath>

#include <gtest/gtest.h>

namespace shoal::core {
namespace {

// Hand-built fixture: 4 entities, 3 queries.
//   query 0 -> entities {0, 1}
//   query 1 -> entities {0, 1, 2}
//   query 2 -> entities {3}
// Entities 0 and 1 share both queries; 2 shares one with them; 3 is
// isolated (never co-clicked).
struct Fixture {
  graph::BipartiteGraph qi{3, 4};
  std::vector<std::vector<uint32_t>> titles;
  text::EmbeddingTable vectors{4, 2};

  Fixture() {
    EXPECT_TRUE(qi.AddInteraction(0, 0).ok());
    EXPECT_TRUE(qi.AddInteraction(0, 1).ok());
    EXPECT_TRUE(qi.AddInteraction(1, 0).ok());
    EXPECT_TRUE(qi.AddInteraction(1, 1).ok());
    EXPECT_TRUE(qi.AddInteraction(1, 2).ok());
    EXPECT_TRUE(qi.AddInteraction(2, 3).ok());
    // Words 0,1 point +x; word 2 +y; word 3 -x.
    vectors.Row(0)[0] = 1.0f;
    vectors.Row(1)[0] = 1.0f;
    vectors.Row(2)[1] = 1.0f;
    vectors.Row(3)[0] = -1.0f;
    titles = {{0}, {1}, {2}, {3}};
  }
};

TEST(EntityGraphTest, ValidatesInputs) {
  Fixture f;
  EntityGraphOptions options;
  std::vector<std::vector<uint32_t>> wrong_titles = {{0}};
  EXPECT_FALSE(
      BuildEntityGraph(f.qi, wrong_titles, f.vectors, options).ok());
  options.alpha = 1.5;
  EXPECT_FALSE(BuildEntityGraph(f.qi, f.titles, f.vectors, options).ok());
}

TEST(EntityGraphTest, CoClickedEntitiesGetEdges) {
  Fixture f;
  EntityGraphOptions options;
  options.similarity_threshold = 0.1;
  EntityGraphStats stats;
  auto g = BuildEntityGraph(f.qi, f.titles, f.vectors, options, &stats);
  ASSERT_TRUE(g.ok());
  // Candidates: (0,1), (0,2), (1,2) — never (x,3).
  EXPECT_EQ(stats.candidate_pairs, 3u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_FALSE(g->HasEdge(0, 3));
  EXPECT_FALSE(g->HasEdge(1, 3));
  EXPECT_FALSE(g->HasEdge(2, 3));
}

TEST(EntityGraphTest, EdgeWeightMatchesEq3) {
  Fixture f;
  EntityGraphOptions options;
  options.alpha = 0.7;
  options.similarity_threshold = 0.0;
  auto g = BuildEntityGraph(f.qi, f.titles, f.vectors, options);
  ASSERT_TRUE(g.ok());
  // Entities 0,1: Jaccard = 2/2 = 1.0; content = shifted cos(+x,+x) = 1.0.
  EXPECT_NEAR(g->EdgeWeight(0, 1), 0.7 * 1.0 + 0.3 * 1.0, 1e-6);
  // Entities 0,2: Jaccard = 1/2; content = shifted cos(+x,+y) = 0.5.
  EXPECT_NEAR(g->EdgeWeight(0, 2), 0.7 * 0.5 + 0.3 * 0.5, 1e-6);
}

TEST(EntityGraphTest, ThresholdSparsifies) {
  Fixture f;
  EntityGraphOptions options;
  options.similarity_threshold = 0.9;
  EntityGraphStats stats;
  auto g = BuildEntityGraph(f.qi, f.titles, f.vectors, options, &stats);
  ASSERT_TRUE(g.ok());
  // Only the (0,1) pair reaches 1.0.
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_EQ(stats.scored_pairs, 3u);
  EXPECT_EQ(stats.kept_edges, 1u);
}

TEST(EntityGraphTest, AlphaZeroUsesContentOnly) {
  Fixture f;
  EntityGraphOptions options;
  options.alpha = 0.0;
  options.similarity_threshold = 0.0;
  auto g = BuildEntityGraph(f.qi, f.titles, f.vectors, options);
  ASSERT_TRUE(g.ok());
  // (0,1): content 1.0; (0,2): content 0.5.
  EXPECT_NEAR(g->EdgeWeight(0, 1), 1.0, 1e-6);
  EXPECT_NEAR(g->EdgeWeight(0, 2), 0.5, 1e-6);
}

TEST(EntityGraphTest, HeadQueryCapLimitsCandidates) {
  // One query clicked on 10 entities: uncapped -> 45 candidate pairs;
  // capped at 4 items -> C(4,2) = 6.
  graph::BipartiteGraph qi(1, 10);
  std::vector<std::vector<uint32_t>> titles(10, std::vector<uint32_t>{0});
  text::EmbeddingTable vectors(1, 2);
  vectors.Row(0)[0] = 1.0f;
  for (uint32_t e = 0; e < 10; ++e) {
    ASSERT_TRUE(qi.AddInteraction(0, e).ok());
  }
  EntityGraphOptions options;
  options.max_items_per_query = 4;
  options.similarity_threshold = 0.0;
  EntityGraphStats stats;
  auto g = BuildEntityGraph(qi, titles, vectors, options, &stats);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(stats.candidate_pairs, 6u);
  EXPECT_EQ(stats.capped_queries, 1u);
}

TEST(EntityGraphTest, HeadQueryCapKeepsStrongestLinksByClickWeight) {
  // Regression: the fanout cap used to keep the *first* N links in
  // storage order, silently dropping strong co-click edges added late.
  // One query clicks 6 entities; the two heaviest links (entities 4 and
  // 5, 10 clicks each) arrive last. With the cap at 2, the only
  // candidate pair must be (4,5), not the storage-order pair (0,1).
  graph::BipartiteGraph qi(1, 6);
  std::vector<std::vector<uint32_t>> titles(6, std::vector<uint32_t>{0});
  text::EmbeddingTable vectors(1, 2);
  vectors.Row(0)[0] = 1.0f;
  for (uint32_t e = 0; e < 4; ++e) {
    ASSERT_TRUE(qi.AddInteraction(0, e, 1).ok());
  }
  ASSERT_TRUE(qi.AddInteraction(0, 4, 10).ok());
  ASSERT_TRUE(qi.AddInteraction(0, 5, 10).ok());

  EntityGraphOptions options;
  options.max_items_per_query = 2;
  options.similarity_threshold = 0.0;
  EntityGraphStats stats;
  auto g = BuildEntityGraph(qi, titles, vectors, options, &stats);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(stats.candidate_pairs, 1u);
  EXPECT_EQ(stats.capped_queries, 1u);
  EXPECT_TRUE(g->HasEdge(4, 5));
  EXPECT_FALSE(g->HasEdge(0, 1));
}

TEST(EntityGraphTest, HeadQueryCapBreaksClickTiesTowardSmallerItemId) {
  // Equal click counts: the cap keeps the smaller item ids, making the
  // selection independent of link storage order.
  graph::BipartiteGraph qi(1, 4);
  std::vector<std::vector<uint32_t>> titles(4, std::vector<uint32_t>{0});
  text::EmbeddingTable vectors(1, 2);
  vectors.Row(0)[0] = 1.0f;
  // Insert in descending id order; all counts equal.
  for (uint32_t e = 4; e-- > 0;) {
    ASSERT_TRUE(qi.AddInteraction(0, e, 3).ok());
  }
  EntityGraphOptions options;
  options.max_items_per_query = 2;
  options.similarity_threshold = 0.0;
  EntityGraphStats stats;
  auto g = BuildEntityGraph(qi, titles, vectors, options, &stats);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(stats.candidate_pairs, 1u);
  EXPECT_TRUE(g->HasEdge(0, 1));
}

TEST(EntityGraphTest, StageTimingsArePopulated) {
  Fixture f;
  EntityGraphOptions options;
  options.similarity_threshold = 0.1;
  EntityGraphStats stats;
  stats.candidate_seconds = -1.0;
  stats.profile_seconds = -1.0;
  stats.scoring_seconds = -1.0;
  stats.degree_cap_seconds = -1.0;
  auto g = BuildEntityGraph(f.qi, f.titles, f.vectors, options, &stats);
  ASSERT_TRUE(g.ok());
  EXPECT_GE(stats.candidate_seconds, 0.0);
  EXPECT_GE(stats.profile_seconds, 0.0);
  EXPECT_GE(stats.scoring_seconds, 0.0);
  EXPECT_GE(stats.degree_cap_seconds, 0.0);
}

TEST(EntityGraphTest, DegreeCapKeepsStrongestEdges) {
  // Star-ish co-click pattern via one query over 6 entities with varying
  // content similarity; degree cap must retain the strongest edges.
  graph::BipartiteGraph qi(1, 6);
  text::EmbeddingTable vectors(6, 2);
  for (uint32_t w = 0; w < 6; ++w) {
    float angle = 0.3f * static_cast<float>(w);
    vectors.Row(w)[0] = std::cos(angle);
    vectors.Row(w)[1] = std::sin(angle);
  }
  std::vector<std::vector<uint32_t>> titles;
  for (uint32_t e = 0; e < 6; ++e) {
    titles.push_back({e});
    ASSERT_TRUE(qi.AddInteraction(0, e).ok());
  }
  EntityGraphOptions options;
  options.similarity_threshold = 0.0;
  options.max_degree = 2;
  auto g = BuildEntityGraph(qi, titles, vectors, options);
  ASSERT_TRUE(g.ok());
  // Every vertex should have a bounded degree (cap is soft: an edge
  // survives if either endpoint has room, so max observed degree can
  // exceed the cap slightly but not explode).
  for (uint32_t v = 0; v < 6; ++v) {
    EXPECT_LE(g->Degree(v), 5u);
  }
  EXPECT_LT(g->num_edges(), 15u);  // strictly fewer than all pairs
}

TEST(EntityGraphTest, EmptyBipartiteGraphGivesEmptyEntityGraph) {
  graph::BipartiteGraph qi(2, 3);
  std::vector<std::vector<uint32_t>> titles(3);
  text::EmbeddingTable vectors(1, 2);
  auto g = BuildEntityGraph(qi, titles, vectors, EntityGraphOptions{});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 0u);
  EXPECT_EQ(g->num_vertices(), 3u);
}

}  // namespace
}  // namespace shoal::core
