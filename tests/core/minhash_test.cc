#include "core/minhash.h"

#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace shoal::core {
namespace {

std::vector<uint64_t> ShinglesOf(const std::vector<uint32_t>& ids) {
  std::vector<uint64_t> out;
  AppendQueryShingles(ids, &out);
  return out;
}

TEST(MinHashTest, SignatureIsDeterministic) {
  MinHashConfig config;
  const MinHasher a(config);
  const MinHasher b(config);
  const std::vector<uint64_t> shingles = ShinglesOf({1, 2, 3, 4, 5});
  std::vector<uint64_t> sig_a, sig_b;
  a.Sign(shingles, &sig_a);
  b.Sign(shingles, &sig_b);
  EXPECT_EQ(sig_a, sig_b);
  EXPECT_EQ(sig_a.size(), a.signature_size());
}

TEST(MinHashTest, SignatureIgnoresShingleOrder) {
  const MinHasher hasher((MinHashConfig()));
  std::vector<uint64_t> forward, reversed;
  hasher.Sign(ShinglesOf({1, 2, 3, 4}), &forward);
  hasher.Sign(ShinglesOf({4, 3, 2, 1}), &reversed);
  EXPECT_EQ(forward, reversed);
}

TEST(MinHashTest, SeedChangesSignature) {
  MinHashConfig config;
  const MinHasher a(config);
  config.seed ^= 0x1234;
  const MinHasher b(config);
  std::vector<uint64_t> sig_a, sig_b;
  a.Sign(ShinglesOf({1, 2, 3}), &sig_a);
  b.Sign(ShinglesOf({1, 2, 3}), &sig_b);
  EXPECT_NE(sig_a, sig_b);
}

TEST(MinHashTest, EmptySetYieldsSentinelSignature) {
  const MinHasher hasher((MinHashConfig()));
  std::vector<uint64_t> sig;
  hasher.Sign({}, &sig);
  for (uint64_t v : sig) EXPECT_EQ(v, MinHasher::kEmpty);
  std::vector<uint64_t> scratch, keys;
  EXPECT_FALSE(hasher.BandKeys({}, &scratch, &keys));
}

TEST(MinHashTest, ConfigClampsToOneBandOneRow) {
  MinHashConfig config;
  config.bands = 0;
  config.rows = 0;
  const MinHasher hasher(config);
  EXPECT_EQ(hasher.bands(), 1u);
  EXPECT_EQ(hasher.rows(), 1u);
}

TEST(MinHashTest, EstimateTracksTrueJaccard) {
  // Sets A = [0, 200), B = [100, 300): true Jaccard = 100/300 = 1/3.
  // With 128 independent rows the estimate's std-dev is about
  // sqrt(j(1-j)/128) = 0.042, so +-0.15 is an eight-sigma corridor.
  MinHashConfig config;
  config.bands = 64;
  config.rows = 2;
  const MinHasher hasher(config);
  std::vector<uint32_t> a_ids, b_ids;
  for (uint32_t i = 0; i < 200; ++i) a_ids.push_back(i);
  for (uint32_t i = 100; i < 300; ++i) b_ids.push_back(i);
  std::vector<uint64_t> sig_a, sig_b;
  hasher.Sign(ShinglesOf(a_ids), &sig_a);
  hasher.Sign(ShinglesOf(b_ids), &sig_b);
  EXPECT_NEAR(MinHasher::EstimateJaccard(sig_a, sig_b), 1.0 / 3.0, 0.15);
}

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  const MinHasher hasher((MinHashConfig()));
  std::vector<uint64_t> sig_a, sig_b;
  hasher.Sign(ShinglesOf({10, 20, 30}), &sig_a);
  hasher.Sign(ShinglesOf({10, 20, 30}), &sig_b);
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccard(sig_a, sig_b), 1.0);
}

TEST(MinHashTest, BandKeysDifferAcrossBands) {
  // Same row minima in different bands must not alias into one bucket
  // key; with rows=1 every band sees the same minimum, so any collision
  // across bands would be an aliasing bug.
  MinHashConfig config;
  config.bands = 16;
  config.rows = 1;
  const MinHasher hasher(config);
  std::vector<uint64_t> sig(hasher.signature_size(), 42);
  std::unordered_set<uint64_t> keys;
  for (size_t b = 0; b < hasher.bands(); ++b) {
    keys.insert(hasher.BandKey(sig, b));
  }
  EXPECT_EQ(keys.size(), hasher.bands());
}

TEST(MinHashTest, BandKeysMatchSignPlusFold) {
  const MinHasher hasher((MinHashConfig()));
  const std::vector<uint64_t> shingles = ShinglesOf({5, 6, 7});
  std::vector<uint64_t> scratch, keys;
  ASSERT_TRUE(hasher.BandKeys(shingles, &scratch, &keys));
  ASSERT_EQ(keys.size(), hasher.bands());
  std::vector<uint64_t> sig;
  hasher.Sign(shingles, &sig);
  EXPECT_EQ(scratch, sig);
  for (size_t b = 0; b < hasher.bands(); ++b) {
    EXPECT_EQ(keys[b], hasher.BandKey(sig, b));
  }
}

TEST(MinHashTest, QueryAndTitleShinglesAreDisjointNamespaces) {
  std::vector<uint64_t> as_query, as_title;
  AppendQueryShingles({7}, &as_query);
  AppendTitleShingles({7}, /*shingle_len=*/1, &as_title);
  ASSERT_EQ(as_query.size(), 1u);
  ASSERT_EQ(as_title.size(), 1u);
  EXPECT_NE(as_query[0], as_title[0]);
}

TEST(MinHashTest, TitleShinglesSlideOverTokens) {
  std::vector<uint64_t> out;
  AppendTitleShingles({1, 2, 3, 4}, /*shingle_len=*/2, &out);
  EXPECT_EQ(out.size(), 3u);  // (1,2), (2,3), (3,4)
  // A shared bigram produces a shared shingle.
  std::vector<uint64_t> other;
  AppendTitleShingles({9, 2, 3}, /*shingle_len=*/2, &other);
  EXPECT_EQ(other[1], out[1]);  // both contain (2,3)
  // n-grams are order-sensitive.
  std::vector<uint64_t> swapped;
  AppendTitleShingles({2, 1}, /*shingle_len=*/2, &swapped);
  std::vector<uint64_t> pair12;
  AppendTitleShingles({1, 2}, /*shingle_len=*/2, &pair12);
  EXPECT_NE(swapped[0], pair12[0]);
}

TEST(MinHashTest, ShortTitleHashesAsOneShingle) {
  std::vector<uint64_t> out;
  AppendTitleShingles({1, 2}, /*shingle_len=*/3, &out);
  EXPECT_EQ(out.size(), 1u);
  std::vector<uint64_t> empty_out;
  AppendTitleShingles({}, /*shingle_len=*/3, &empty_out);
  EXPECT_TRUE(empty_out.empty());
  // shingle_len 0 behaves as unigrams.
  std::vector<uint64_t> unigrams;
  AppendTitleShingles({1, 2, 3}, /*shingle_len=*/0, &unigrams);
  EXPECT_EQ(unigrams.size(), 3u);
}

}  // namespace
}  // namespace shoal::core
