#include "core/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

namespace shoal::core {
namespace {

TEST(QueryJaccardTest, IdenticalSetsIsOne) {
  EXPECT_DOUBLE_EQ(QueryJaccard({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(QueryJaccardTest, DisjointSetsIsZero) {
  EXPECT_DOUBLE_EQ(QueryJaccard({1, 2}, {3, 4}), 0.0);
}

TEST(QueryJaccardTest, PartialOverlap) {
  // |{2,3}| / |{1,2,3,4}| = 0.5
  EXPECT_DOUBLE_EQ(QueryJaccard({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(QueryJaccardTest, EmptySets) {
  EXPECT_DOUBLE_EQ(QueryJaccard({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(QueryJaccard({1}, {}), 0.0);
  EXPECT_DOUBLE_EQ(QueryJaccard({}, {1}), 0.0);
}

TEST(QueryJaccardTest, Symmetric) {
  std::vector<uint32_t> a = {1, 5, 9};
  std::vector<uint32_t> b = {2, 5, 7, 9};
  EXPECT_DOUBLE_EQ(QueryJaccard(a, b), QueryJaccard(b, a));
}

TEST(QueryJaccardTest, SubsetRelation) {
  // |{1,2}| / |{1,2,3,4}| = 0.5
  EXPECT_DOUBLE_EQ(QueryJaccard({1, 2}, {1, 2, 3, 4}), 0.5);
}

TEST(QueryJaccardTest, BoundedInUnitInterval) {
  std::vector<uint32_t> a = {1, 2, 3, 4, 5};
  std::vector<uint32_t> b = {4, 5, 6};
  double j = QueryJaccard(a, b);
  EXPECT_GE(j, 0.0);
  EXPECT_LE(j, 1.0);
}

// --- content similarity -----------------------------------------------

text::EmbeddingTable MakeTable() {
  // 4 words in 2-d: two pointing +x, one +y, one -x.
  text::EmbeddingTable table(4, 2);
  table.Row(0)[0] = 1.0f;
  table.Row(1)[0] = 2.0f;   // same direction as word 0
  table.Row(2)[1] = 1.0f;   // orthogonal
  table.Row(3)[0] = -1.0f;  // opposite
  return table;
}

TEST(ContentSimilarityTest, IdenticalDirectionIsOne) {
  auto table = MakeTable();
  auto u = BuildContentProfile(table, {0});
  auto v = BuildContentProfile(table, {1});
  EXPECT_NEAR(ContentSimilarity(u, v), 1.0, 1e-6);
}

TEST(ContentSimilarityTest, OppositeDirectionIsZero) {
  auto table = MakeTable();
  auto u = BuildContentProfile(table, {0});
  auto v = BuildContentProfile(table, {3});
  EXPECT_NEAR(ContentSimilarity(u, v), 0.0, 1e-6);
}

TEST(ContentSimilarityTest, OrthogonalIsHalf) {
  auto table = MakeTable();
  auto u = BuildContentProfile(table, {0});
  auto v = BuildContentProfile(table, {2});
  EXPECT_NEAR(ContentSimilarity(u, v), 0.5, 1e-6);
}

TEST(ContentSimilarityTest, FactorisationMatchesPairwiseDefinition) {
  // Eq. 2 as written: mean over word pairs of (1/2 + 1/2 cos). The
  // profile-based implementation must agree exactly.
  auto table = MakeTable();
  std::vector<uint32_t> words_u = {0, 2};
  std::vector<uint32_t> words_v = {1, 3, 2};
  double direct = 0.0;
  for (uint32_t wu : words_u) {
    for (uint32_t wv : words_v) {
      direct += 0.5 + 0.5 * text::Cosine(table.Row(wu), table.Row(wv), 2);
    }
  }
  direct /= static_cast<double>(words_u.size() * words_v.size());
  auto u = BuildContentProfile(table, words_u);
  auto v = BuildContentProfile(table, words_v);
  EXPECT_NEAR(ContentSimilarity(u, v), direct, 1e-6);
}

TEST(ContentSimilarityTest, EmptyProfileGivesMidpoint) {
  auto table = MakeTable();
  auto u = BuildContentProfile(table, {});
  auto v = BuildContentProfile(table, {0});
  EXPECT_DOUBLE_EQ(ContentSimilarity(u, v), 0.5);
  EXPECT_DOUBLE_EQ(ContentSimilarity(u, u), 0.5);
}

TEST(ContentSimilarityTest, ZeroVectorsSkipped) {
  text::EmbeddingTable table(2, 2);
  table.Row(0)[0] = 1.0f;  // word 1 stays zero
  auto u = BuildContentProfile(table, {0, 1});
  auto v = BuildContentProfile(table, {0});
  EXPECT_NEAR(ContentSimilarity(u, v), 1.0, 1e-6);
}

TEST(ContentSimilarityTest, OutOfRangeWordIdsIgnored) {
  auto table = MakeTable();
  auto u = BuildContentProfile(table, {0, 999});
  auto v = BuildContentProfile(table, {1});
  EXPECT_NEAR(ContentSimilarity(u, v), 1.0, 1e-6);
}

TEST(ContentSimilarityTest, Symmetric) {
  auto table = MakeTable();
  auto u = BuildContentProfile(table, {0, 2});
  auto v = BuildContentProfile(table, {1, 3});
  EXPECT_DOUBLE_EQ(ContentSimilarity(u, v), ContentSimilarity(v, u));
}

// --- combined similarity -----------------------------------------------

TEST(CombinedSimilarityTest, AlphaMixing) {
  // Eq. 3 with the paper's alpha = 0.7.
  EXPECT_NEAR(CombinedSimilarity(1.0, 0.0, 0.7), 0.7, 1e-12);
  EXPECT_NEAR(CombinedSimilarity(0.0, 1.0, 0.7), 0.3, 1e-12);
  EXPECT_NEAR(CombinedSimilarity(0.5, 0.5, 0.7), 0.5, 1e-12);
}

TEST(CombinedSimilarityTest, ExtremeAlphas) {
  EXPECT_DOUBLE_EQ(CombinedSimilarity(0.8, 0.2, 1.0), 0.8);
  EXPECT_DOUBLE_EQ(CombinedSimilarity(0.8, 0.2, 0.0), 0.2);
}

TEST(CombinedSimilarityTest, StaysInUnitInterval) {
  for (double alpha : {0.0, 0.3, 0.7, 1.0}) {
    for (double sq : {0.0, 0.5, 1.0}) {
      for (double sc : {0.0, 0.5, 1.0}) {
        double s = CombinedSimilarity(sq, sc, alpha);
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace shoal::core
