#include "core/taxonomy_io.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "util/tsv.h"

namespace shoal::core {
namespace {

class TaxonomyIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: parallel ctest processes must not share a
    // directory that TearDown deletes.
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("shoal_taxonomy_io_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Two-root taxonomy with sub-topics, categories and descriptions.
  static Taxonomy MakeTaxonomy() {
    Dendrogram d(8);
    uint32_t m01 = d.Merge(0, 1, 0.9).value();
    uint32_t m23 = d.Merge(2, 3, 0.85).value();
    (void)d.Merge(m01, m23, 0.7).value();
    uint32_t m45 = d.Merge(4, 5, 0.8).value();
    uint32_t m67 = d.Merge(6, 7, 0.75).value();
    (void)d.Merge(m45, m67, 0.6).value();
    TaxonomyOptions options;
    options.min_topic_size = 2;
    options.min_root_size = 2;
    Taxonomy taxonomy =
        Taxonomy::Build(d, {10, 10, 11, 11, 12, 12, 13, 13}, options);
    taxonomy.topic(taxonomy.roots()[0]).description = {"beach trip",
                                                       "swimwear sale"};
    return taxonomy;
  }

  static CategoryCorrelation MakeCorrelations() {
    std::vector<CategoryCorrelation::Pair> pairs = {
        {10, 11, 5}, {12, 13, 3}, {10, 13, 2}};
    auto result = CorrelationFromPairs(pairs);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }

  std::string dir_;
};

TEST_F(TaxonomyIoTest, RoundTripPreservesStructure) {
  Taxonomy original = MakeTaxonomy();
  CategoryCorrelation correlations = MakeCorrelations();
  ASSERT_TRUE(SaveTaxonomy(original, correlations, dir_).ok());
  auto loaded = LoadTaxonomy(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Taxonomy& restored = loaded->taxonomy;

  ASSERT_EQ(restored.num_topics(), original.num_topics());
  EXPECT_EQ(restored.num_entities(), original.num_entities());
  EXPECT_EQ(restored.roots(), original.roots());
  for (uint32_t t = 0; t < original.num_topics(); ++t) {
    const Topic& a = original.topic(t);
    const Topic& b = restored.topic(t);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.entities, b.entities);
    EXPECT_EQ(a.categories, b.categories);
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(a.children, b.children);
  }
  // Entity->topic mapping rebuilt identically.
  for (uint32_t e = 0; e < original.num_entities(); ++e) {
    EXPECT_EQ(restored.TopicOfEntity(e), original.TopicOfEntity(e));
    EXPECT_EQ(restored.RootTopicOfEntity(e), original.RootTopicOfEntity(e));
  }
}

TEST_F(TaxonomyIoTest, RoundTripPreservesCorrelations) {
  ASSERT_TRUE(SaveTaxonomy(MakeTaxonomy(), MakeCorrelations(), dir_).ok());
  auto loaded = LoadTaxonomy(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->correlations.Strength(10, 11), 5u);
  EXPECT_EQ(loaded->correlations.Strength(13, 12), 3u);
  EXPECT_EQ(loaded->correlations.Strength(10, 12), 0u);
  EXPECT_EQ(loaded->correlations.pairs().size(), 3u);
  auto related = loaded->correlations.Related(10);
  ASSERT_EQ(related.size(), 2u);
  EXPECT_EQ(related[0].first, 11u);
}

TEST_F(TaxonomyIoTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadTaxonomy(dir_ + "/nope").ok());
}

TEST_F(TaxonomyIoTest, CorruptParentRejected) {
  ASSERT_TRUE(SaveTaxonomy(MakeTaxonomy(), MakeCorrelations(), dir_).ok());
  // Rewrite topics.tsv with a parent pointing at a nonexistent topic.
  auto rows = util::ReadTsv(dir_ + "/topics.tsv").value();
  rows[1][1] = "999";
  ASSERT_TRUE(util::WriteTsv(dir_ + "/topics.tsv", rows).ok());
  EXPECT_FALSE(LoadTaxonomy(dir_).ok());
}

TEST_F(TaxonomyIoTest, ParentCycleRejected) {
  std::vector<Topic> topics(2);
  topics[0].id = 0;
  topics[0].parent = 1;
  topics[1].id = 1;
  topics[1].parent = 0;
  EXPECT_FALSE(TaxonomyFromTopics(std::move(topics), 0).ok());
}

TEST_F(TaxonomyIoTest, SelfParentRejected) {
  std::vector<Topic> topics(1);
  topics[0].id = 0;
  topics[0].parent = 0;
  EXPECT_FALSE(TaxonomyFromTopics(std::move(topics), 0).ok());
}

TEST_F(TaxonomyIoTest, EntityOutOfRangeRejected) {
  std::vector<Topic> topics(1);
  topics[0].id = 0;
  topics[0].entities = {5};
  EXPECT_FALSE(TaxonomyFromTopics(std::move(topics), 3).ok());
}

TEST_F(TaxonomyIoTest, MisnumberedTopicRejected) {
  std::vector<Topic> topics(1);
  topics[0].id = 7;
  EXPECT_FALSE(TaxonomyFromTopics(std::move(topics), 0).ok());
}

TEST_F(TaxonomyIoTest, CorrelationValidation) {
  EXPECT_FALSE(CorrelationFromPairs({{1, 1, 3}}).ok());  // self pair
  EXPECT_FALSE(CorrelationFromPairs({{1, 2, 0}}).ok());  // zero strength
  EXPECT_FALSE(
      CorrelationFromPairs({{1, 2, 3}, {2, 1, 4}}).ok());  // duplicate
}

TEST_F(TaxonomyIoTest, EmptyTaxonomyRoundTrips) {
  Dendrogram d(2);
  Taxonomy empty = Taxonomy::Build(d, {0, 1}, TaxonomyOptions{});
  ASSERT_TRUE(
      SaveTaxonomy(empty, CorrelationFromPairs({}).value(), dir_).ok());
  auto loaded = LoadTaxonomy(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->taxonomy.num_topics(), 0u);
  EXPECT_TRUE(loaded->correlations.pairs().empty());
}

}  // namespace
}  // namespace shoal::core
