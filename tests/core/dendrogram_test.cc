#include "core/dendrogram.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace shoal::core {
namespace {

TEST(DendrogramTest, InitialStateAllLeavesAreRoots) {
  Dendrogram d(4);
  EXPECT_EQ(d.num_leaves(), 4u);
  EXPECT_EQ(d.num_nodes(), 4u);
  EXPECT_EQ(d.num_merges(), 0u);
  EXPECT_EQ(d.Roots().size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(d.IsLeaf(i));
    EXPECT_TRUE(d.IsRoot(i));
    EXPECT_EQ(d.node(i).size, 1u);
  }
}

TEST(DendrogramTest, MergeCreatesInternalNode) {
  Dendrogram d(3);
  auto merged = d.Merge(0, 1, 0.9);
  ASSERT_TRUE(merged.ok());
  uint32_t m = merged.value();
  EXPECT_EQ(m, 3u);
  EXPECT_FALSE(d.IsLeaf(m));
  EXPECT_TRUE(d.IsRoot(m));
  EXPECT_FALSE(d.IsRoot(0));
  EXPECT_FALSE(d.IsRoot(1));
  EXPECT_EQ(d.node(m).size, 2u);
  EXPECT_EQ(d.node(m).left, 0u);
  EXPECT_EQ(d.node(m).right, 1u);
  EXPECT_DOUBLE_EQ(d.node(m).merge_similarity, 0.9);
  EXPECT_EQ(d.node(0).parent, m);
  EXPECT_EQ(d.node(1).parent, m);
}

TEST(DendrogramTest, MergeOfNonRootRejected) {
  Dendrogram d(3);
  ASSERT_TRUE(d.Merge(0, 1, 0.9).ok());
  EXPECT_EQ(d.Merge(0, 2, 0.8).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(DendrogramTest, MergeSelfRejected) {
  Dendrogram d(2);
  EXPECT_EQ(d.Merge(0, 0, 0.5).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(DendrogramTest, MergeOutOfRangeRejected) {
  Dendrogram d(2);
  EXPECT_EQ(d.Merge(0, 9, 0.5).status().code(),
            util::StatusCode::kOutOfRange);
}

TEST(DendrogramTest, MergingMergedNodes) {
  Dendrogram d(4);
  uint32_t m1 = d.Merge(0, 1, 0.9).value();
  uint32_t m2 = d.Merge(2, 3, 0.8).value();
  uint32_t m3 = d.Merge(m1, m2, 0.6).value();
  EXPECT_EQ(d.node(m3).size, 4u);
  EXPECT_EQ(d.Roots().size(), 1u);
  EXPECT_EQ(d.Roots()[0], m3);
  EXPECT_EQ(d.num_merges(), 3u);
}

TEST(DendrogramTest, LeavesUnderCollectsMembers) {
  Dendrogram d(5);
  uint32_t m1 = d.Merge(1, 3, 0.9).value();
  uint32_t m2 = d.Merge(m1, 4, 0.7).value();
  auto leaves = d.LeavesUnder(m2);
  std::sort(leaves.begin(), leaves.end());
  EXPECT_EQ(leaves, (std::vector<uint32_t>{1, 3, 4}));
  EXPECT_EQ(d.LeavesUnder(0), std::vector<uint32_t>{0});
}

TEST(DendrogramTest, FlatClustersGroupByRoot) {
  Dendrogram d(5);
  d.Merge(0, 1, 0.9).value();
  d.Merge(2, 3, 0.8).value();
  auto labels = d.FlatClusters();
  ASSERT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[4], labels[0]);
  EXPECT_NE(labels[4], labels[2]);
}

TEST(DendrogramTest, CutAtHighThresholdSplitsWeakMerges) {
  Dendrogram d(4);
  uint32_t m1 = d.Merge(0, 1, 0.9).value();
  uint32_t m2 = d.Merge(2, 3, 0.4).value();
  (void)d.Merge(m1, m2, 0.2).value();
  // Cut at 0.5: the 0.9 merge survives, the 0.4 and 0.2 merges split.
  auto labels = d.CutAt(0.5);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(DendrogramTest, CutAtZeroKeepsRoots) {
  Dendrogram d(4);
  uint32_t m1 = d.Merge(0, 1, 0.9).value();
  (void)d.Merge(m1, 2, 0.5).value();
  auto labels = d.CutAt(0.0);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[3], labels[0]);
}

TEST(DendrogramTest, CutAboveEverythingIsAllSingletons) {
  Dendrogram d(3);
  uint32_t m1 = d.Merge(0, 1, 0.9).value();
  (void)d.Merge(m1, 2, 0.8).value();
  auto labels = d.CutAt(0.95);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(DendrogramTest, SizesAreConsistentInvariant) {
  // Property: after any merge sequence, each internal node's size equals
  // the sum of its children's sizes, and root sizes sum to num_leaves.
  Dendrogram d(8);
  uint32_t a = d.Merge(0, 1, 0.9).value();
  uint32_t b = d.Merge(2, 3, 0.85).value();
  uint32_t c = d.Merge(a, b, 0.7).value();
  (void)d.Merge(4, 5, 0.6).value();
  (void)c;
  size_t root_size_sum = 0;
  for (uint32_t root : d.Roots()) root_size_sum += d.node(root).size;
  EXPECT_EQ(root_size_sum, 8u);
  for (uint32_t n = static_cast<uint32_t>(d.num_leaves());
       n < d.num_nodes(); ++n) {
    EXPECT_EQ(d.node(n).size,
              d.node(d.node(n).left).size + d.node(d.node(n).right).size);
  }
}

}  // namespace
}  // namespace shoal::core
