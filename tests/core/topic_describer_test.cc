#include "core/topic_describer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace shoal::core {
namespace {

// Two topics with distinct vocabularies and an ambiguous query:
//   topic 0 = entities {0,1}, titles about words {100,101}
//   topic 1 = entities {2,3}, titles about words {200,201}
// Queries:
//   q0 ("100")   -> clicks on entities 0,1 (concentrated on topic 0)
//   q1 ("200")   -> clicks on entities 2,3 (concentrated on topic 1)
//   q2 ("300")   -> one click on each topic (diffuse)
struct DescriberFixture {
  Dendrogram dendrogram{4};
  std::vector<uint32_t> categories{1, 1, 2, 2};
  Taxonomy taxonomy;
  graph::BipartiteGraph qi{3, 4};
  std::vector<std::vector<uint32_t>> query_words{{100}, {200}, {300}};
  std::vector<std::string> query_texts{"beach", "router", "misc"};
  std::vector<std::vector<uint32_t>> titles{
      {100, 101}, {100, 101}, {200, 201}, {200, 201}};

  DescriberFixture() {
    (void)dendrogram.Merge(0, 1, 0.9);
    (void)dendrogram.Merge(2, 3, 0.9);
    TaxonomyOptions options;
    options.min_topic_size = 2;
    options.min_root_size = 2;
    taxonomy = Taxonomy::Build(dendrogram, categories, options);
    EXPECT_EQ(taxonomy.roots().size(), 2u);
    // q0: topic 0 clicks, heavier on entity 0.
    EXPECT_TRUE(qi.AddInteraction(0, 0, 5).ok());
    EXPECT_TRUE(qi.AddInteraction(0, 1, 3).ok());
    // q1: topic 1 clicks.
    EXPECT_TRUE(qi.AddInteraction(1, 2, 4).ok());
    EXPECT_TRUE(qi.AddInteraction(1, 3, 4).ok());
    // q2: one click on each side.
    EXPECT_TRUE(qi.AddInteraction(2, 1, 1).ok());
    EXPECT_TRUE(qi.AddInteraction(2, 2, 1).ok());
  }

  DescriberInput Input() {
    DescriberInput input;
    input.taxonomy = &taxonomy;
    input.query_item_graph = &qi;
    input.query_words = &query_words;
    input.query_texts = &query_texts;
    input.entity_title_words = &titles;
    return input;
  }

  uint32_t TopicOf(uint32_t entity) {
    return taxonomy.RootTopicOfEntity(entity);
  }
};

TEST(TopicDescriberTest, ValidatesInput) {
  DescriberFixture f;
  DescriberInput input;  // all null
  EXPECT_FALSE(
      TopicDescriber::Describe(f.taxonomy, input, DescriberOptions{}).ok());
}

TEST(TopicDescriberTest, ValidatesMetadataSizes) {
  DescriberFixture f;
  auto input = f.Input();
  std::vector<std::vector<uint32_t>> short_words{{1}};
  input.query_words = &short_words;
  EXPECT_FALSE(
      TopicDescriber::Describe(f.taxonomy, input, DescriberOptions{}).ok());
}

TEST(TopicDescriberTest, ConcentratedQueryDescribesItsTopic) {
  DescriberFixture f;
  auto rankings =
      TopicDescriber::Describe(f.taxonomy, f.Input(), DescriberOptions{});
  ASSERT_TRUE(rankings.ok());
  uint32_t topic0 = f.TopicOf(0);
  uint32_t topic1 = f.TopicOf(2);
  // The top query of each topic is the one concentrated on it.
  ASSERT_FALSE((*rankings)[topic0].empty());
  EXPECT_EQ((*rankings)[topic0][0].query, 0u);
  ASSERT_FALSE((*rankings)[topic1].empty());
  EXPECT_EQ((*rankings)[topic1][0].query, 1u);
}

TEST(TopicDescriberTest, DescriptionsWrittenToTopics) {
  DescriberFixture f;
  DescriberOptions options;
  options.queries_per_topic = 2;
  auto rankings = TopicDescriber::Describe(f.taxonomy, f.Input(), options);
  ASSERT_TRUE(rankings.ok());
  uint32_t topic0 = f.TopicOf(0);
  const auto& description = f.taxonomy.topic(topic0).description;
  ASSERT_FALSE(description.empty());
  EXPECT_EQ(description[0], "beach");
}

TEST(TopicDescriberTest, DiffuseQueryRanksBelowConcentrated) {
  DescriberFixture f;
  auto rankings =
      TopicDescriber::Describe(f.taxonomy, f.Input(), DescriberOptions{});
  ASSERT_TRUE(rankings.ok());
  uint32_t topic0 = f.TopicOf(0);
  double r_concentrated = 0.0;
  double r_diffuse = 0.0;
  for (const auto& scored : (*rankings)[topic0]) {
    if (scored.query == 0) r_concentrated = scored.representativeness;
    if (scored.query == 2) r_diffuse = scored.representativeness;
  }
  EXPECT_GT(r_concentrated, r_diffuse);
}

TEST(TopicDescriberTest, ScoresWithinExpectedRanges) {
  DescriberFixture f;
  auto rankings =
      TopicDescriber::Describe(f.taxonomy, f.Input(), DescriberOptions{});
  ASSERT_TRUE(rankings.ok());
  for (const auto& topic_ranking : *rankings) {
    for (const auto& scored : topic_ranking) {
      EXPECT_GE(scored.popularity, 0.0);
      EXPECT_LE(scored.popularity, 1.0);
      EXPECT_GE(scored.concentration, 0.0);
      EXPECT_LE(scored.concentration, 1.0);
      EXPECT_GE(scored.representativeness, 0.0);
      EXPECT_LE(scored.representativeness, 1.0);
    }
  }
}

TEST(TopicDescriberTest, RepresentativenessIsGeometricMean) {
  DescriberFixture f;
  auto rankings =
      TopicDescriber::Describe(f.taxonomy, f.Input(), DescriberOptions{});
  ASSERT_TRUE(rankings.ok());
  for (const auto& topic_ranking : *rankings) {
    for (const auto& scored : topic_ranking) {
      EXPECT_NEAR(scored.representativeness,
                  std::sqrt(scored.popularity * scored.concentration),
                  1e-9);
    }
  }
}

TEST(TopicDescriberTest, RootsOnlySkipsSubTopics) {
  // Build a deeper taxonomy with sub-topics and confirm only roots get
  // descriptions under roots_only.
  Dendrogram d(4);
  uint32_t m01 = d.Merge(0, 1, 0.9).value();
  uint32_t m23 = d.Merge(2, 3, 0.85).value();
  (void)d.Merge(m01, m23, 0.7).value();
  TaxonomyOptions taxonomy_options;
  taxonomy_options.min_topic_size = 2;
  taxonomy_options.min_root_size = 2;
  auto taxonomy = Taxonomy::Build(d, {1, 1, 2, 2}, taxonomy_options);
  ASSERT_EQ(taxonomy.roots().size(), 1u);
  ASSERT_GT(taxonomy.num_topics(), 1u);

  DescriberFixture f;  // reuse its bipartite graph and metadata
  DescriberInput input = f.Input();
  input.taxonomy = &taxonomy;
  DescriberOptions options;
  options.roots_only = true;
  auto rankings = TopicDescriber::Describe(taxonomy, input, options);
  ASSERT_TRUE(rankings.ok());
  uint32_t root = taxonomy.roots()[0];
  EXPECT_FALSE(taxonomy.topic(root).description.empty());
  for (uint32_t t = 0; t < taxonomy.num_topics(); ++t) {
    if (t == root) continue;
    EXPECT_TRUE(taxonomy.topic(t).description.empty());
  }
}

TEST(TopicDescriberTest, QueriesPerTopicCapRespected) {
  DescriberFixture f;
  DescriberOptions options;
  options.queries_per_topic = 1;
  auto rankings = TopicDescriber::Describe(f.taxonomy, f.Input(), options);
  ASSERT_TRUE(rankings.ok());
  for (uint32_t r : f.taxonomy.roots()) {
    EXPECT_LE(f.taxonomy.topic(r).description.size(), 1u);
  }
}

}  // namespace
}  // namespace shoal::core
