#include "core/category_correlation.h"

#include <gtest/gtest.h>

namespace shoal::core {
namespace {

// Builds a taxonomy whose root topics have controlled category sets by
// driving Taxonomy::Build with a hand-made dendrogram and category map.
//
// Root topic A covers entities {0,1,2} with categories {10,11,10}.
// Root topic B covers entities {3,4,5} with categories {10,11,12}.
// Root topic C covers entities {6,7,8} with categories {12,13,12}.
// Co-occurrences over root topics:
//   (10,11): A and B -> 2
//   (10,12): B       -> 1
//   (11,12): B       -> 1
//   (12,13): C       -> 1
Taxonomy MakeTaxonomy() {
  Dendrogram d(9);
  auto chain = [&d](uint32_t a, uint32_t b, uint32_t c) {
    uint32_t m = d.Merge(a, b, 0.9).value();
    (void)d.Merge(m, c, 0.8).value();
  };
  chain(0, 1, 2);
  chain(3, 4, 5);
  chain(6, 7, 8);
  std::vector<uint32_t> categories = {10, 11, 10, 10, 11, 12, 12, 13, 12};
  TaxonomyOptions options;
  options.min_topic_size = 3;
  options.min_root_size = 3;
  return Taxonomy::Build(d, categories, options);
}

TEST(CategoryCorrelationTest, CountsCoOccurrences) {
  auto taxonomy = MakeTaxonomy();
  CategoryCorrelationOptions options;
  options.min_strength = 0;  // keep everything
  auto correlation = CategoryCorrelation::Mine(taxonomy, options);
  EXPECT_EQ(correlation.Strength(10, 11), 2u);
  EXPECT_EQ(correlation.Strength(11, 10), 2u);  // symmetric
  EXPECT_EQ(correlation.Strength(10, 12), 1u);
  EXPECT_EQ(correlation.Strength(12, 13), 1u);
  EXPECT_EQ(correlation.Strength(10, 13), 0u);
}

TEST(CategoryCorrelationTest, ThresholdPrunes) {
  auto taxonomy = MakeTaxonomy();
  CategoryCorrelationOptions options;
  options.min_strength = 1;  // keep strictly greater than 1
  auto correlation = CategoryCorrelation::Mine(taxonomy, options);
  EXPECT_EQ(correlation.Strength(10, 11), 2u);
  EXPECT_EQ(correlation.Strength(10, 12), 0u);  // pruned
  EXPECT_EQ(correlation.pairs().size(), 1u);
}

TEST(CategoryCorrelationTest, RelatedSortedByStrength) {
  auto taxonomy = MakeTaxonomy();
  CategoryCorrelationOptions options;
  options.min_strength = 0;
  auto correlation = CategoryCorrelation::Mine(taxonomy, options);
  auto related = correlation.Related(10);
  ASSERT_EQ(related.size(), 2u);
  EXPECT_EQ(related[0].first, 11u);
  EXPECT_EQ(related[0].second, 2u);
  EXPECT_EQ(related[1].first, 12u);
  EXPECT_EQ(related[1].second, 1u);
}

TEST(CategoryCorrelationTest, RelatedOfUnknownCategoryEmpty) {
  auto taxonomy = MakeTaxonomy();
  auto correlation =
      CategoryCorrelation::Mine(taxonomy, CategoryCorrelationOptions{});
  EXPECT_TRUE(correlation.Related(999).empty());
}

TEST(CategoryCorrelationTest, PairsSortedByStrengthThenIds) {
  auto taxonomy = MakeTaxonomy();
  CategoryCorrelationOptions options;
  options.min_strength = 0;
  auto correlation = CategoryCorrelation::Mine(taxonomy, options);
  const auto& pairs = correlation.pairs();
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0].strength, 2u);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i].strength, pairs[i - 1].strength);
    EXPECT_LT(pairs[i].c1, pairs[i].c2);
  }
}

TEST(CategoryCorrelationTest, MinCategoryCountFiltersIncidentalMembers) {
  auto taxonomy = MakeTaxonomy();
  CategoryCorrelationOptions options;
  options.min_strength = 0;
  options.min_category_count = 2;  // categories need >= 2 items in a topic
  auto correlation = CategoryCorrelation::Mine(taxonomy, options);
  // Topic A: only category 10 has 2 items -> no pair from A.
  // Topic B: all categories have 1 item -> no pairs.
  // Topic C: only category 12 qualifies -> no pairs.
  EXPECT_TRUE(correlation.pairs().empty());
}

TEST(CategoryCorrelationTest, EmptyTaxonomyYieldsNothing) {
  Dendrogram d(2);
  auto taxonomy = Taxonomy::Build(d, {1, 2}, TaxonomyOptions{});
  auto correlation =
      CategoryCorrelation::Mine(taxonomy, CategoryCorrelationOptions{});
  EXPECT_TRUE(correlation.pairs().empty());
}

}  // namespace
}  // namespace shoal::core
