#include "core/lsh_index.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace shoal::core {
namespace {

uint64_t Pair(uint32_t u, uint32_t v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

TEST(LshIndexTest, SharedBucketEmitsPair) {
  LshIndex index(2);
  const uint64_t keys_a[] = {100, 200};
  const uint64_t keys_b[] = {100, 999};
  const uint64_t keys_c[] = {111, 222};
  index.Insert(0, keys_a);
  index.Insert(1, keys_b);
  index.Insert(2, keys_c);
  LshStats stats;
  auto pairs = index.CandidatePairs(/*max_bucket=*/0, nullptr, &stats);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], Pair(0, 1));
  EXPECT_EQ(stats.buckets, 1u);
  EXPECT_EQ(stats.emitted_pairs, 1u);
  EXPECT_EQ(stats.candidate_pairs, 1u);
  EXPECT_EQ(stats.skipped_buckets, 0u);
}

TEST(LshIndexTest, PairSharedInManyBandsDeduped) {
  LshIndex index(3);
  const uint64_t keys_a[] = {1, 2, 3};
  const uint64_t keys_b[] = {1, 2, 3};  // collides in all three bands
  index.Insert(5, keys_a);
  index.Insert(9, keys_b);
  LshStats stats;
  auto pairs = index.CandidatePairs(0, nullptr, &stats);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], Pair(5, 9));
  EXPECT_EQ(stats.emitted_pairs, 3u);    // one emission per band
  EXPECT_EQ(stats.candidate_pairs, 1u);  // deduped
}

TEST(LshIndexTest, BucketEmitsAllPairsSortedAscending) {
  LshIndex index(1);
  for (uint32_t e : {4, 2, 7}) {
    const uint64_t key[] = {77};
    index.Insert(e, key);
  }
  auto pairs = index.CandidatePairs(0, nullptr, nullptr);
  const std::vector<uint64_t> want = {Pair(2, 4), Pair(2, 7), Pair(4, 7)};
  EXPECT_EQ(pairs, want);
}

TEST(LshIndexTest, OversizedBucketSkippedAndCounted) {
  LshIndex index(1);
  for (uint32_t e = 0; e < 5; ++e) {
    const uint64_t key[] = {42};
    index.Insert(e, key);
  }
  LshStats stats;
  auto pairs = index.CandidatePairs(/*max_bucket=*/4, nullptr, &stats);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(stats.buckets, 1u);
  EXPECT_EQ(stats.skipped_buckets, 1u);
  EXPECT_EQ(stats.emitted_pairs, 0u);
  // max_bucket = 0 means unlimited: C(5,2) pairs.
  auto all = index.CandidatePairs(/*max_bucket=*/0, nullptr, &stats);
  EXPECT_EQ(all.size(), 10u);
  EXPECT_EQ(stats.skipped_buckets, 0u);
}

TEST(LshIndexTest, BandBucketSizes) {
  LshIndex index(2);
  const uint64_t keys_a[] = {1, 10};
  const uint64_t keys_b[] = {1, 20};
  const uint64_t keys_c[] = {1, 20};
  index.Insert(0, keys_a);
  index.Insert(1, keys_b);
  index.Insert(2, keys_c);
  EXPECT_EQ(index.BandBucketSizes(0), (std::vector<size_t>{3}));
  EXPECT_EQ(index.BandBucketSizes(1), (std::vector<size_t>{1, 2}));
}

TEST(LshIndexTest, ParallelScanMatchesSerial) {
  // 8 bands, 64 entities, key = entity % k per band so buckets overlap
  // in a band-dependent pattern. The pooled scan must produce exactly
  // the serial pair vector (already sorted + deduped).
  LshIndex index(8);
  for (uint32_t e = 0; e < 64; ++e) {
    uint64_t keys[8];
    for (uint64_t b = 0; b < 8; ++b) keys[b] = (b << 32) | (e % (b + 2));
    index.Insert(e, keys);
  }
  LshStats serial_stats;
  auto serial = index.CandidatePairs(16, nullptr, &serial_stats);
  util::ThreadPool pool(4);
  LshStats pooled_stats;
  auto pooled = index.CandidatePairs(16, &pool, &pooled_stats);
  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(serial_stats.buckets, pooled_stats.buckets);
  EXPECT_EQ(serial_stats.skipped_buckets, pooled_stats.skipped_buckets);
  EXPECT_EQ(serial_stats.emitted_pairs, pooled_stats.emitted_pairs);
  EXPECT_EQ(serial_stats.candidate_pairs, pooled_stats.candidate_pairs);
}

}  // namespace
}  // namespace shoal::core
