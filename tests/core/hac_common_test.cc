#include "core/hac_common.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace shoal::core {
namespace {

TEST(MergedSimilarityTest, SqrtNormalizedEqualSizes) {
  // Eq. 4 with nA = nB: plain average.
  EXPECT_NEAR(
      MergedSimilarity(LinkageRule::kSqrtNormalized, 0.8, 0.4, 1, 1), 0.6,
      1e-12);
}

TEST(MergedSimilarityTest, SqrtNormalizedWeightsBySqrtSize) {
  // nA = 4, nB = 1: weights 2/3 and 1/3.
  EXPECT_NEAR(
      MergedSimilarity(LinkageRule::kSqrtNormalized, 0.9, 0.3, 4, 1),
      (2.0 * 0.9 + 1.0 * 0.3) / 3.0, 1e-12);
}

TEST(MergedSimilarityTest, SqrtNormalizedMissingNeighborIsZero) {
  // The paper: S(A,C) = 0 when unavailable.
  EXPECT_NEAR(
      MergedSimilarity(LinkageRule::kSqrtNormalized, 0.0, 0.6, 1, 1), 0.3,
      1e-12);
}

TEST(MergedSimilarityTest, ArithmeticMeanWeightsBySize) {
  EXPECT_NEAR(
      MergedSimilarity(LinkageRule::kArithmeticMean, 0.9, 0.3, 3, 1),
      (3.0 * 0.9 + 1.0 * 0.3) / 4.0, 1e-12);
}

TEST(MergedSimilarityTest, MaxAndMinRules) {
  EXPECT_DOUBLE_EQ(MergedSimilarity(LinkageRule::kMax, 0.2, 0.7, 5, 2), 0.7);
  EXPECT_DOUBLE_EQ(MergedSimilarity(LinkageRule::kMin, 0.2, 0.7, 5, 2), 0.2);
}

TEST(MergedSimilarityTest, AllRulesBoundedByInputs) {
  for (LinkageRule rule :
       {LinkageRule::kSqrtNormalized, LinkageRule::kArithmeticMean,
        LinkageRule::kMax, LinkageRule::kMin}) {
    for (uint32_t na : {1u, 2u, 10u}) {
      for (uint32_t nb : {1u, 5u}) {
        double s = MergedSimilarity(rule, 0.3, 0.8, na, nb);
        EXPECT_GE(s, 0.3 - 1e-12) << LinkageRuleName(rule);
        EXPECT_LE(s, 0.8 + 1e-12) << LinkageRuleName(rule);
      }
    }
  }
}

TEST(MergedSimilarityTest, RuleNames) {
  EXPECT_STREQ(LinkageRuleName(LinkageRule::kSqrtNormalized),
               "sqrt_normalized");
  EXPECT_STREQ(LinkageRuleName(LinkageRule::kArithmeticMean),
               "arithmetic_mean");
  EXPECT_STREQ(LinkageRuleName(LinkageRule::kMax), "max");
  EXPECT_STREQ(LinkageRuleName(LinkageRule::kMin), "min");
}

TEST(EdgeBeatsTest, HigherSimilarityWins) {
  EXPECT_TRUE(EdgeBeats(5, 6, 0.9, 1, 2, 0.8));
  EXPECT_FALSE(EdgeBeats(5, 6, 0.7, 1, 2, 0.8));
}

TEST(EdgeBeatsTest, TiesBreakOnSmallerIdPair) {
  EXPECT_TRUE(EdgeBeats(1, 2, 0.5, 1, 3, 0.5));
  EXPECT_FALSE(EdgeBeats(1, 3, 0.5, 1, 2, 0.5));
  EXPECT_TRUE(EdgeBeats(0, 9, 0.5, 1, 2, 0.5));
}

TEST(EdgeBeatsTest, OrientationIrrelevant) {
  EXPECT_EQ(EdgeBeats(2, 1, 0.5, 3, 1, 0.5), EdgeBeats(1, 2, 0.5, 1, 3, 0.5));
}

TEST(EdgeBeatsTest, StrictTotalOrder) {
  // An edge never beats itself; exactly one of two distinct edges wins.
  EXPECT_FALSE(EdgeBeats(1, 2, 0.5, 1, 2, 0.5));
  bool ab = EdgeBeats(1, 2, 0.5, 3, 4, 0.5);
  bool ba = EdgeBeats(3, 4, 0.5, 1, 2, 0.5);
  EXPECT_NE(ab, ba);
}

// --- ClusterGraph -------------------------------------------------------

graph::WeightedGraph TriangleWithTail() {
  // 0-1 (0.9), 1-2 (0.7), 0-2 (0.6), 2-3 (0.4)
  graph::WeightedGraph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.4).ok());
  return g;
}

TEST(ClusterGraphTest, InitialStateMirrorsBaseGraph) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g);
  EXPECT_EQ(clusters.num_active(), 4u);
  EXPECT_EQ(clusters.ClusterSize(0), 1u);
  EXPECT_DOUBLE_EQ(clusters.SimilarityOrZero(0, 1), 0.9);
  EXPECT_DOUBLE_EQ(clusters.SimilarityOrZero(2, 3), 0.4);
}

TEST(ClusterGraphTest, GlobalBestEdgeFindsMaximum) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g);
  auto best = clusters.GlobalBestEdge();
  EXPECT_EQ(std::min(best.u, best.v), 0u);
  EXPECT_EQ(std::max(best.u, best.v), 1u);
  EXPECT_DOUBLE_EQ(best.similarity, 0.9);
}

TEST(ClusterGraphTest, MergeAppliesEq4) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g);
  ASSERT_TRUE(clusters.Merge(0, 1, 4, LinkageRule::kSqrtNormalized).ok());
  EXPECT_EQ(clusters.num_active(), 3u);
  EXPECT_FALSE(clusters.IsActive(0));
  EXPECT_FALSE(clusters.IsActive(1));
  EXPECT_TRUE(clusters.IsActive(4));
  EXPECT_EQ(clusters.ClusterSize(4), 2u);
  // S(01, 2) = (sqrt(1)*0.6 + sqrt(1)*0.7) / 2 = 0.65
  EXPECT_NEAR(clusters.SimilarityOrZero(4, 2), 0.65, 1e-12);
  // Vertex 2's adjacency rewired to the merged node.
  EXPECT_TRUE(clusters.HasNeighbor(2, 4));
  EXPECT_FALSE(clusters.HasNeighbor(2, 0));
  EXPECT_FALSE(clusters.HasNeighbor(2, 1));
  // Untouched edge survives.
  EXPECT_DOUBLE_EQ(clusters.SimilarityOrZero(2, 3), 0.4);
}

TEST(ClusterGraphTest, MergeWithMissingNeighborUsesZero) {
  // 0-1 edge plus 1-2 edge; merging 0,1 must give S(01,2) with
  // S(0,2) = 0.
  graph::WeightedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.8).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.6).ok());
  ClusterGraph clusters(g);
  ASSERT_TRUE(clusters.Merge(0, 1, 3, LinkageRule::kSqrtNormalized).ok());
  EXPECT_NEAR(clusters.SimilarityOrZero(3, 2), 0.3, 1e-12);
}

TEST(ClusterGraphTest, SequentialMergesGrowSizes) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g);
  ASSERT_TRUE(clusters.Merge(0, 1, 4, LinkageRule::kSqrtNormalized).ok());
  ASSERT_TRUE(clusters.Merge(4, 2, 5, LinkageRule::kSqrtNormalized).ok());
  EXPECT_EQ(clusters.ClusterSize(5), 3u);
  // S(012, 3): S(01,3)=0 missing, S(2,3)=0.4, sizes 2 and 1:
  // (sqrt(2)*0 + 1*0.4) / (sqrt(2)+1)
  double expected = 0.4 / (std::sqrt(2.0) + 1.0);
  EXPECT_NEAR(clusters.SimilarityOrZero(5, 3), expected, 1e-12);
}

TEST(ClusterGraphTest, MergeValidation) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g);
  EXPECT_FALSE(clusters.Merge(0, 0, 4, LinkageRule::kMax).ok());
  EXPECT_FALSE(clusters.Merge(0, 1, 99, LinkageRule::kMax).ok());
  ASSERT_TRUE(clusters.Merge(0, 1, 4, LinkageRule::kMax).ok());
  EXPECT_FALSE(clusters.Merge(0, 2, 5, LinkageRule::kMax).ok());
}

TEST(ClusterGraphTest, BestEdgeOnEmptyGraph) {
  graph::WeightedGraph g(3);
  ClusterGraph clusters(g);
  auto best = clusters.GlobalBestEdge();
  EXPECT_LT(best.similarity, 0.0);
}

TEST(ClusterGraphTest, ActiveClustersEnumeration) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g);
  ASSERT_TRUE(clusters.Merge(1, 2, 4, LinkageRule::kMax).ok());
  auto active = clusters.ActiveClusters();
  EXPECT_EQ(active, (std::vector<uint32_t>{0, 3, 4}));
}

TEST(ClusterGraphTest, RowsStaySortedAcrossMerges) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g);
  ASSERT_TRUE(clusters.Merge(0, 1, 4, LinkageRule::kSqrtNormalized).ok());
  ASSERT_TRUE(clusters.Merge(4, 2, 5, LinkageRule::kSqrtNormalized).ok());
  for (uint32_t c : clusters.ActiveClusters()) {
    const auto& row = clusters.Neighbors(c);
    for (size_t i = 1; i < row.size(); ++i) {
      EXPECT_LT(row[i - 1].id, row[i].id) << "row " << c;
    }
  }
}

TEST(ClusterGraphTest, FindEdgeBinarySearch) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g);
  const ClusterEdge* e = clusters.FindEdge(2, 3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->id, 3u);
  EXPECT_DOUBLE_EQ(e->similarity, 0.4);
  EXPECT_EQ(clusters.FindEdge(0, 3), nullptr);
}

TEST(ClusterGraphTest, MergeableFrontierShrinks) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g, /*track_threshold=*/0.5);
  // 2-3 edge (0.4) is below threshold, so 3 is never mergeable.
  EXPECT_EQ(clusters.MergeableClusters(), (std::vector<uint32_t>{0, 1, 2}));
  ASSERT_TRUE(clusters.Merge(0, 1, 4, LinkageRule::kSqrtNormalized).ok());
  // S(01,2) = 0.65 >= 0.5, so {2, 4} remain on the frontier.
  EXPECT_EQ(clusters.MergeableClusters(), (std::vector<uint32_t>{2, 4}));
  ASSERT_TRUE(clusters.Merge(4, 2, 5, LinkageRule::kSqrtNormalized).ok());
  // Remaining edge 5-3 has similarity 0.4/(sqrt(2)+1) < 0.5.
  EXPECT_TRUE(clusters.MergeableClusters().empty());
}

// --- ValidateMatching / MergeBatch --------------------------------------

// 0-1-2-3-4-5 path with a 1-4 chord, so two matched pairs share
// neighbours and a cross-pair edge exists.
graph::WeightedGraph TwoPairGraph() {
  graph::WeightedGraph g(6);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(3, 4, 0.8).ok());
  EXPECT_TRUE(g.AddEdge(4, 5, 0.3).ok());
  EXPECT_TRUE(g.AddEdge(1, 4, 0.4).ok());
  return g;
}

TEST(ClusterGraphTest, ValidateMatchingAcceptsDisjointPairs) {
  auto g = TwoPairGraph();
  ClusterGraph clusters(g);
  EXPECT_TRUE(clusters.ValidateMatching({{0, 1}, {3, 4}}, 6).ok());
}

TEST(ClusterGraphTest, ValidateMatchingRejectsBadInput) {
  auto g = TwoPairGraph();
  ClusterGraph clusters(g);
  // Wrong first id.
  EXPECT_FALSE(clusters.ValidateMatching({{0, 1}}, 7).ok());
  // Self pair.
  EXPECT_FALSE(clusters.ValidateMatching({{2, 2}}, 6).ok());
  // Shared endpoint.
  EXPECT_FALSE(clusters.ValidateMatching({{0, 1}, {1, 2}}, 6).ok());
  // Inactive endpoint.
  ASSERT_TRUE(clusters.Merge(0, 1, 6, LinkageRule::kMax).ok());
  EXPECT_FALSE(clusters.ValidateMatching({{1, 2}}, 7).ok());
  // A failed validation must not leave stale marks behind.
  EXPECT_TRUE(clusters.ValidateMatching({{3, 4}}, 7).ok());
}

// MergeBatch must be bit-identical to applying the same pairs serially,
// for every linkage rule, including the cross-pair similarity (the
// 1-4 chord becomes a (01)-(34) edge whose value nests two linkage
// applications).
TEST(ClusterGraphTest, MergeBatchMatchesSerialMerges) {
  for (LinkageRule rule :
       {LinkageRule::kSqrtNormalized, LinkageRule::kArithmeticMean,
        LinkageRule::kMax, LinkageRule::kMin}) {
    auto g = TwoPairGraph();
    ClusterGraph serial(g);
    ASSERT_TRUE(serial.Merge(0, 1, 6, rule).ok());
    ASSERT_TRUE(serial.Merge(3, 4, 7, rule).ok());

    ClusterGraph batched(g);
    ASSERT_TRUE(batched.MergeBatch({{0, 1}, {3, 4}}, 6, rule).ok());

    ASSERT_EQ(batched.num_nodes(), serial.num_nodes());
    for (uint32_t c = 0; c < serial.num_nodes(); ++c) {
      EXPECT_EQ(batched.IsActive(c), serial.IsActive(c)) << c;
      if (!serial.IsActive(c)) continue;
      EXPECT_EQ(batched.ClusterSize(c), serial.ClusterSize(c)) << c;
      // Bit-identical rows: same ids, same order, same doubles.
      EXPECT_EQ(batched.Neighbors(c), serial.Neighbors(c))
          << "row " << c << " rule " << LinkageRuleName(rule);
    }
  }
}

TEST(ClusterGraphTest, MergeBatchWithPoolMatchesSerial) {
  util::ThreadPool pool(4);
  auto g = TwoPairGraph();
  ClusterGraph serial(g);
  ASSERT_TRUE(serial.Merge(0, 1, 6, LinkageRule::kSqrtNormalized).ok());
  ASSERT_TRUE(serial.Merge(3, 4, 7, LinkageRule::kSqrtNormalized).ok());
  ClusterGraph batched(g);
  ASSERT_TRUE(
      batched
          .MergeBatch({{0, 1}, {3, 4}}, 6, LinkageRule::kSqrtNormalized,
                      &pool)
          .ok());
  for (uint32_t c = 0; c < serial.num_nodes(); ++c) {
    if (!serial.IsActive(c)) continue;
    EXPECT_EQ(batched.Neighbors(c), serial.Neighbors(c)) << c;
  }
}

// Regression test for atomic round failure: a batch containing one
// corrupt pair must leave the graph completely untouched.
TEST(ClusterGraphTest, MergeBatchCorruptPairLeavesGraphUnchanged) {
  auto g = TwoPairGraph();
  ClusterGraph clusters(g, /*track_threshold=*/0.3);
  ClusterGraph before(g, /*track_threshold=*/0.3);
  // {3, 3} is a self pair — invalid — while {0, 1} is fine. Nothing may
  // be applied.
  EXPECT_FALSE(clusters.MergeBatch({{0, 1}, {3, 3}}, 6,
                                   LinkageRule::kSqrtNormalized)
                   .ok());
  ASSERT_EQ(clusters.num_nodes(), before.num_nodes());
  EXPECT_EQ(clusters.num_active(), before.num_active());
  for (uint32_t c = 0; c < before.num_nodes(); ++c) {
    EXPECT_EQ(clusters.IsActive(c), before.IsActive(c)) << c;
    EXPECT_EQ(clusters.Neighbors(c), before.Neighbors(c)) << c;
    EXPECT_EQ(clusters.MergeableEdgeCount(c), before.MergeableEdgeCount(c))
        << c;
  }
  // And the graph still works after the rejected batch.
  EXPECT_TRUE(clusters.MergeBatch({{0, 1}, {3, 4}}, 6,
                                  LinkageRule::kSqrtNormalized)
                  .ok());
}

TEST(ClusterGraphTest, MergeBatchEmptyIsNoOp) {
  auto g = TriangleWithTail();
  ClusterGraph clusters(g);
  EXPECT_TRUE(clusters.MergeBatch({}, 4, LinkageRule::kMax).ok());
  EXPECT_EQ(clusters.num_active(), 4u);
  EXPECT_EQ(clusters.num_nodes(), 4u);
}

}  // namespace
}  // namespace shoal::core
