#include "core/query_search.h"

#include <gtest/gtest.h>

namespace shoal::core {
namespace {

// Two root topics with disjoint title vocabularies.
struct SearchFixture {
  text::Vocabulary vocab;
  Dendrogram dendrogram{4};
  Taxonomy taxonomy;
  std::vector<std::vector<uint32_t>> titles;

  SearchFixture() {
    uint32_t beach = vocab.AddWord("beach");
    uint32_t swim = vocab.AddWord("swim");
    uint32_t router = vocab.AddWord("router");
    uint32_t wifi = vocab.AddWord("wifi");
    titles = {{beach, swim}, {beach}, {router, wifi}, {router}};
    (void)dendrogram.Merge(0, 1, 0.9);
    (void)dendrogram.Merge(2, 3, 0.9);
    TaxonomyOptions options;
    options.min_topic_size = 2;
    options.min_root_size = 2;
    taxonomy = Taxonomy::Build(dendrogram, {1, 1, 2, 2}, options);
  }
};

TEST(QueryTopicIndexTest, RequiresVocab) {
  SearchFixture f;
  EXPECT_FALSE(QueryTopicIndex::Build(f.taxonomy, f.titles, nullptr,
                                      QueryTopicIndex::Options{})
                   .ok());
}

TEST(QueryTopicIndexTest, FindsMatchingTopic) {
  SearchFixture f;
  auto index = QueryTopicIndex::Build(f.taxonomy, f.titles, &f.vocab,
                                      QueryTopicIndex::Options{});
  ASSERT_TRUE(index.ok());
  auto hits = index->Search("beach", 5);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].topic, f.taxonomy.RootTopicOfEntity(0));
  for (const auto& hit : hits) {
    EXPECT_NE(hit.topic, f.taxonomy.RootTopicOfEntity(2));
  }
}

TEST(QueryTopicIndexTest, UnknownWordsIgnored) {
  SearchFixture f;
  auto index = QueryTopicIndex::Build(f.taxonomy, f.titles, &f.vocab,
                                      QueryTopicIndex::Options{});
  ASSERT_TRUE(index.ok());
  auto hits = index->Search("beach zzzunknown", 5);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].topic, f.taxonomy.RootTopicOfEntity(0));
}

TEST(QueryTopicIndexTest, AllUnknownWordsGiveNoHits) {
  SearchFixture f;
  auto index = QueryTopicIndex::Build(f.taxonomy, f.titles, &f.vocab,
                                      QueryTopicIndex::Options{});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->Search("zzz qqq", 5).empty());
  EXPECT_TRUE(index->Search("", 5).empty());
}

TEST(QueryTopicIndexTest, KLimitsResults) {
  SearchFixture f;
  auto index = QueryTopicIndex::Build(f.taxonomy, f.titles, &f.vocab,
                                      QueryTopicIndex::Options{});
  ASSERT_TRUE(index.ok());
  // "beach router" matches both root topics (and their subtopics if any).
  auto hits = index->Search("beach router", 1);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(QueryTopicIndexTest, ScoresDescending) {
  SearchFixture f;
  auto index = QueryTopicIndex::Build(f.taxonomy, f.titles, &f.vocab,
                                      QueryTopicIndex::Options{});
  ASSERT_TRUE(index.ok());
  auto hits = index->Search("beach swim router", 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
}

TEST(QueryTopicIndexTest, DescriptionsBoostRetrieval) {
  SearchFixture f;
  // Attach a description mentioning "camping" to topic of entity 0.
  uint32_t camping = f.vocab.AddWord("camping");
  (void)camping;
  uint32_t root = f.taxonomy.RootTopicOfEntity(0);
  f.taxonomy.topic(root).description.push_back("camping holiday");
  auto index = QueryTopicIndex::Build(f.taxonomy, f.titles, &f.vocab,
                                      QueryTopicIndex::Options{});
  ASSERT_TRUE(index.ok());
  auto hits = index->Search("camping", 5);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].topic, root);
}

TEST(QueryTopicIndexTest, RootsOnlyIndexesFewerDocs) {
  // A taxonomy with sub-topics: roots_only search never returns them.
  text::Vocabulary vocab;
  uint32_t w = vocab.AddWord("beach");
  std::vector<std::vector<uint32_t>> titles(4, std::vector<uint32_t>{w});
  Dendrogram d(4);
  uint32_t m01 = d.Merge(0, 1, 0.9).value();
  uint32_t m23 = d.Merge(2, 3, 0.85).value();
  (void)d.Merge(m01, m23, 0.7).value();
  TaxonomyOptions taxonomy_options;
  taxonomy_options.min_topic_size = 2;
  auto taxonomy = Taxonomy::Build(d, {1, 1, 1, 1}, taxonomy_options);
  ASSERT_GT(taxonomy.num_topics(), 1u);

  QueryTopicIndex::Options options;
  options.roots_only = true;
  auto index = QueryTopicIndex::Build(taxonomy, titles, &vocab, options);
  ASSERT_TRUE(index.ok());
  auto hits = index->Search("beach", 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].topic, taxonomy.roots()[0]);
}

}  // namespace
}  // namespace shoal::core
