#include "core/sequential_hac.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/modularity.h"

namespace shoal::core {
namespace {

TEST(SequentialHacTest, RejectsNonPositiveThreshold) {
  graph::WeightedGraph g(2);
  HacOptions options;
  options.threshold = 0.0;
  EXPECT_FALSE(SequentialHac(g, options).ok());
}

TEST(SequentialHacTest, EmptyGraphNoMerges) {
  graph::WeightedGraph g(5);
  auto d = SequentialHac(g, HacOptions{});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_merges(), 0u);
  EXPECT_EQ(d->Roots().size(), 5u);
}

TEST(SequentialHacTest, MergesAboveThresholdOnly) {
  graph::WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.3).ok());
  HacOptions options;
  options.threshold = 0.5;
  auto d = SequentialHac(g, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_merges(), 1u);
  auto labels = d->FlatClusters();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[2], labels[3]);
}

TEST(SequentialHacTest, MergeOrderIsGreedy) {
  // Chain 0-1 (0.9), 1-2 (0.8): first merge is (0,1); then S(01,2) =
  // (0 + 0.8)/2 = 0.4 < threshold 0.5, so only one merge happens.
  graph::WeightedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.8).ok());
  HacOptions options;
  options.threshold = 0.5;
  SequentialHacStats stats;
  auto d = SequentialHac(g, options, &stats);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(d->node(3).left, 0u);
  EXPECT_EQ(d->node(3).right, 1u);
}

TEST(SequentialHacTest, ChainMergesWhenUpdateStaysHigh) {
  // Same chain but max linkage: S(01,2) = max(0, 0.8) = 0.8 >= 0.5.
  graph::WeightedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.8).ok());
  HacOptions options;
  options.threshold = 0.5;
  options.linkage = LinkageRule::kMax;
  auto d = SequentialHac(g, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_merges(), 2u);
  EXPECT_EQ(d->Roots().size(), 1u);
}

TEST(SequentialHacTest, RecoversPlantedPartition) {
  graph::PlantedPartitionOptions planted_options;
  planted_options.num_vertices = 120;
  planted_options.num_clusters = 4;
  planted_options.p_in = 0.5;
  planted_options.p_out = 0.01;
  planted_options.mu_in = 0.9;
  planted_options.mu_out = 0.15;
  auto planted = graph::GeneratePlantedPartition(planted_options);
  ASSERT_TRUE(planted.ok());
  HacOptions options;
  options.threshold = 0.4;
  auto d = SequentialHac(planted->graph, options);
  ASSERT_TRUE(d.ok());
  auto q = graph::Modularity(planted->graph, d->FlatClusters());
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q.value(), 0.3);  // the paper's quality bar
}

TEST(SequentialHacTest, DeterministicAcrossRuns) {
  auto g = graph::GenerateErdosRenyi(60, 0.15, 3);
  ASSERT_TRUE(g.ok());
  HacOptions options;
  options.threshold = 0.3;
  auto d1 = SequentialHac(*g, options);
  auto d2 = SequentialHac(*g, options);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  ASSERT_EQ(d1->num_nodes(), d2->num_nodes());
  for (uint32_t n = 0; n < d1->num_nodes(); ++n) {
    EXPECT_EQ(d1->node(n).left, d2->node(n).left);
    EXPECT_EQ(d1->node(n).right, d2->node(n).right);
  }
}

TEST(SequentialHacTest, MergeSimilaritiesAreMonotoneNonIncreasing) {
  // Greedy exact HAC with a "reducible" linkage produces non-increasing
  // merge similarities; sqrt-normalised average with zeros for missing
  // entries is contractive (never exceeds its inputs), so the global max
  // can only fall.
  auto g = graph::GenerateErdosRenyi(80, 0.2, 11);
  ASSERT_TRUE(g.ok());
  HacOptions options;
  options.threshold = 0.2;
  auto d = SequentialHac(*g, options);
  ASSERT_TRUE(d.ok());
  double prev = 2.0;
  for (uint32_t n = static_cast<uint32_t>(d->num_leaves());
       n < d->num_nodes(); ++n) {
    EXPECT_LE(d->node(n).merge_similarity, prev + 1e-9);
    prev = d->node(n).merge_similarity;
  }
}

TEST(SequentialHacTest, AllMergesAboveThreshold) {
  auto g = graph::GenerateErdosRenyi(60, 0.25, 17);
  ASSERT_TRUE(g.ok());
  HacOptions options;
  options.threshold = 0.45;
  auto d = SequentialHac(*g, options);
  ASSERT_TRUE(d.ok());
  for (uint32_t n = static_cast<uint32_t>(d->num_leaves());
       n < d->num_nodes(); ++n) {
    EXPECT_GE(d->node(n).merge_similarity, 0.45);
  }
}

TEST(SequentialHacTest, StatsReported) {
  graph::WeightedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.8).ok());
  HacOptions options;
  options.linkage = LinkageRule::kMax;
  SequentialHacStats stats;
  auto d = SequentialHac(g, options, &stats);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(stats.merges, 2u);
  EXPECT_GE(stats.heap_pops, stats.merges);
}

}  // namespace
}  // namespace shoal::core
