#include "core/parallel_hac.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/modularity.h"

namespace shoal::core {
namespace {

ParallelHacOptions FastOptions() {
  ParallelHacOptions options;
  options.num_partitions = 4;
  options.num_threads = 2;
  return options;
}

TEST(ParallelHacTest, ValidatesOptions) {
  graph::WeightedGraph g(2);
  ParallelHacOptions options = FastOptions();
  options.hac.threshold = 0.0;
  EXPECT_FALSE(ParallelHac(g, options).ok());
  options = FastOptions();
  options.diffusion_iterations = 0;
  EXPECT_FALSE(ParallelHac(g, options).ok());
}

// The resume entry point shares ValidateOptions with the fresh path: a
// zero diffusion depth must be rejected before any state is touched,
// not fall into the k - 1 superstep arithmetic.
TEST(ParallelHacTest, ResumeValidatesDiffusionIterations) {
  ParallelHacOptions options = FastOptions();
  options.diffusion_iterations = 0;
  HacResumeState state;  // contents irrelevant: options fail first
  auto resumed = ResumeParallelHac(options, std::move(state));
  EXPECT_FALSE(resumed.ok());
}

TEST(ParallelHacTest, EmptyGraphNoMerges) {
  graph::WeightedGraph g(5);
  auto d = ParallelHac(g, FastOptions());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_merges(), 0u);
}

TEST(ParallelHacTest, SingleEdgeMerges) {
  graph::WeightedGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ParallelHacStats stats;
  auto d = ParallelHac(g, FastOptions(), &stats);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_merges(), 1u);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.total_merges, 1u);
  EXPECT_DOUBLE_EQ(d->node(2).merge_similarity, 0.9);
}

TEST(ParallelHacTest, BelowThresholdEdgesIgnored) {
  graph::WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.3).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.9).ok());
  ParallelHacOptions options = FastOptions();
  options.hac.threshold = 0.5;
  auto d = ParallelHac(g, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_merges(), 1u);
  auto labels = d->FlatClusters();
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
}

TEST(ParallelHacTest, IndependentEdgesMergeInOneRound) {
  // Two far-apart strong edges must merge in the same round — the whole
  // point of distributed merging (Figure 3: AB and EF merge together).
  graph::WeightedGraph g(6);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.85).ok());
  ASSERT_TRUE(g.AddEdge(4, 5, 0.8).ok());
  ParallelHacStats stats;
  auto d = ParallelHac(g, FastOptions(), &stats);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.merges_per_round[0], 3u);
}

TEST(ParallelHacTest, LocalMaximaFormMatching) {
  // In a triangle only one edge can be locally maximal (they all share
  // vertices), so the first round merges exactly one pair.
  graph::WeightedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.8).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.7).ok());
  ParallelHacStats stats;
  auto d = ParallelHac(g, FastOptions(), &stats);
  ASSERT_TRUE(d.ok());
  ASSERT_GE(stats.rounds, 1u);
  EXPECT_EQ(stats.merges_per_round[0], 1u);
  // First merge must be the best edge (0,1).
  EXPECT_EQ(d->node(3).left, 0u);
  EXPECT_EQ(d->node(3).right, 1u);
}

TEST(ParallelHacTest, MoreDiffusionIterationsFewerLocalMaxima) {
  // The paper's Figure 3 trade-off: larger k means each edge must
  // dominate a wider neighbourhood, so the first round finds at most as
  // many local maxima.
  auto g = graph::GenerateErdosRenyi(100, 0.08, 21);
  ASSERT_TRUE(g.ok());
  size_t prev_first_round = SIZE_MAX;
  for (size_t k : {1u, 2u, 4u}) {
    ParallelHacOptions options = FastOptions();
    options.diffusion_iterations = k;
    options.hac.threshold = 0.2;
    ParallelHacStats stats;
    auto d = ParallelHac(*g, options, &stats);
    ASSERT_TRUE(d.ok());
    ASSERT_FALSE(stats.merges_per_round.empty());
    EXPECT_LE(stats.merges_per_round[0], prev_first_round);
    prev_first_round = stats.merges_per_round[0];
  }
}

TEST(ParallelHacTest, FewerRoundsThanSequentialIterations) {
  // Challenge 2: sequential HAC needs one iteration per merge; parallel
  // HAC packs many independent merges into each early round. On a
  // clustered graph the first rounds carry most of the merges, so the
  // total round count is well below the merge count.
  graph::PlantedPartitionOptions planted_options;
  planted_options.num_vertices = 300;
  planted_options.num_clusters = 20;
  planted_options.p_in = 0.5;
  planted_options.p_out = 0.005;
  planted_options.mu_in = 0.85;
  planted_options.seed = 5;
  auto planted = graph::GeneratePlantedPartition(planted_options);
  ASSERT_TRUE(planted.ok());
  ParallelHacOptions options = FastOptions();
  options.hac.threshold = 0.3;
  ParallelHacStats stats;
  auto d = ParallelHac(planted->graph, options, &stats);
  ASSERT_TRUE(d.ok());
  ASSERT_GT(stats.total_merges, 100u);
  EXPECT_LT(stats.rounds, stats.total_merges / 2);
  // The first round alone performs many independent merges.
  EXPECT_GT(stats.merges_per_round[0], 10u);
}

TEST(ParallelHacTest, AllMergesAboveThreshold) {
  auto g = graph::GenerateErdosRenyi(80, 0.15, 7);
  ASSERT_TRUE(g.ok());
  ParallelHacOptions options = FastOptions();
  options.hac.threshold = 0.45;
  auto d = ParallelHac(*g, options);
  ASSERT_TRUE(d.ok());
  for (uint32_t n = static_cast<uint32_t>(d->num_leaves());
       n < d->num_nodes(); ++n) {
    EXPECT_GE(d->node(n).merge_similarity, 0.45);
  }
}

TEST(ParallelHacTest, TerminatesWithNoMergeableEdgesLeft) {
  auto g = graph::GenerateErdosRenyi(60, 0.2, 13);
  ASSERT_TRUE(g.ok());
  ParallelHacOptions options = FastOptions();
  options.hac.threshold = 0.5;
  auto d = ParallelHac(g.value(), options);
  ASSERT_TRUE(d.ok());
  // Rebuild the final cluster graph and verify no remaining edge
  // reaches the threshold.
  ClusterGraph clusters(g.value());
  for (uint32_t n = static_cast<uint32_t>(d->num_leaves());
       n < d->num_nodes(); ++n) {
    ASSERT_TRUE(clusters
                    .Merge(d->node(n).left, d->node(n).right, n,
                           options.hac.linkage)
                    .ok());
  }
  auto best = clusters.GlobalBestEdge();
  if (best.similarity >= 0.0) {
    EXPECT_LT(best.similarity, options.hac.threshold);
  }
}

TEST(ParallelHacTest, DeterministicAcrossThreadCounts) {
  auto g = graph::GenerateErdosRenyi(100, 0.1, 19);
  ASSERT_TRUE(g.ok());
  auto run = [&](size_t threads, size_t partitions) {
    ParallelHacOptions options;
    options.num_threads = threads;
    options.num_partitions = partitions;
    options.hac.threshold = 0.3;
    auto d = ParallelHac(*g, options);
    EXPECT_TRUE(d.ok());
    return d->FlatClusters();
  };
  auto a = run(1, 2);
  auto b = run(4, 8);
  EXPECT_EQ(a, b);
}

TEST(ParallelHacTest, RecoversPlantedPartitionWithGoodModularity) {
  graph::PlantedPartitionOptions planted_options;
  planted_options.num_vertices = 150;
  planted_options.num_clusters = 5;
  planted_options.p_in = 0.6;
  planted_options.p_out = 0.01;
  planted_options.mu_in = 0.9;
  planted_options.mu_out = 0.15;
  auto planted = graph::GeneratePlantedPartition(planted_options);
  ASSERT_TRUE(planted.ok());
  ParallelHacOptions options = FastOptions();
  options.hac.threshold = 0.35;
  auto d = ParallelHac(planted->graph, options);
  ASSERT_TRUE(d.ok());
  auto q = graph::Modularity(planted->graph, d->FlatClusters());
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q.value(), 0.3);  // the paper's in-text claim
}

TEST(ParallelHacTest, StatsAccounting) {
  auto g = graph::GenerateErdosRenyi(50, 0.2, 23);
  ASSERT_TRUE(g.ok());
  ParallelHacOptions options = FastOptions();
  options.hac.threshold = 0.3;
  ParallelHacStats stats;
  auto d = ParallelHac(*g, options, &stats);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(stats.rounds, stats.merges_per_round.size());
  size_t sum = 0;
  for (size_t m : stats.merges_per_round) sum += m;
  EXPECT_EQ(sum, stats.total_merges);
  EXPECT_EQ(d->num_merges(), stats.total_merges);
  EXPECT_GT(stats.total_supersteps, 0u);
}

}  // namespace
}  // namespace shoal::core
