// Serial-vs-parallel equivalence for BuildEntityGraph: the sharded
// builder must produce the exact edge set, weights, and stats (timings
// aside) of the num_threads == 1 reference path, at every thread count
// and across shard boundaries that do not divide the input evenly.

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/entity_graph.h"
#include "core/similarity.h"
#include "util/thread_pool.h"

namespace shoal::core {
namespace {

struct RandomWorkload {
  graph::BipartiteGraph qi{0, 0};
  std::vector<std::vector<uint32_t>> titles;
  text::EmbeddingTable vectors{0, 0};
};

// Deterministic pseudo-random bipartite graph + titles + embeddings.
// Deliberately odd sizes so thread-count sweeps hit uneven chunks.
RandomWorkload MakeWorkload(size_t num_queries, size_t num_entities,
                            size_t vocab, uint64_t seed) {
  RandomWorkload w;
  w.qi = graph::BipartiteGraph(num_queries, num_entities);
  w.vectors = text::EmbeddingTable(vocab, 8);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> coord(-1.0f, 1.0f);
  for (size_t v = 0; v < vocab; ++v) {
    for (size_t d = 0; d < 8; ++d) w.vectors.Row(v)[d] = coord(rng);
  }
  std::uniform_int_distribution<uint32_t> word(0, vocab - 1);
  std::uniform_int_distribution<size_t> title_len(0, 5);
  w.titles.resize(num_entities);
  for (auto& title : w.titles) {
    size_t len = title_len(rng);
    for (size_t i = 0; i < len; ++i) title.push_back(word(rng));
  }
  std::uniform_int_distribution<uint32_t> entity(
      0, static_cast<uint32_t>(num_entities - 1));
  std::uniform_int_distribution<uint32_t> clicks(1, 9);
  for (uint32_t q = 0; q < num_queries; ++q) {
    std::uniform_int_distribution<size_t> fanout(0, 12);
    size_t links = fanout(rng);
    for (size_t i = 0; i < links; ++i) {
      EXPECT_TRUE(w.qi.AddInteraction(q, entity(rng), clicks(rng)).ok());
    }
  }
  return w;
}

void ExpectSameGraph(const graph::WeightedGraph& expected,
                     const graph::WeightedGraph& actual, size_t threads) {
  ASSERT_EQ(expected.num_vertices(), actual.num_vertices());
  ASSERT_EQ(expected.num_edges(), actual.num_edges())
      << "edge count diverged at " << threads << " threads";
  auto expected_edges = expected.AllEdges();
  auto actual_edges = actual.AllEdges();
  ASSERT_EQ(expected_edges.size(), actual_edges.size());
  for (size_t i = 0; i < expected_edges.size(); ++i) {
    EXPECT_EQ(expected_edges[i].u, actual_edges[i].u)
        << "edge " << i << " at " << threads << " threads";
    EXPECT_EQ(expected_edges[i].v, actual_edges[i].v)
        << "edge " << i << " at " << threads << " threads";
    // Bitwise equality: the parallel path runs the same arithmetic per
    // pair in the same order, so not even the last ulp may move.
    EXPECT_EQ(expected_edges[i].weight, actual_edges[i].weight)
        << "edge " << i << " at " << threads << " threads";
  }
}

void ExpectSameCounters(const EntityGraphStats& expected,
                        const EntityGraphStats& actual, size_t threads) {
  EXPECT_EQ(expected.candidate_pairs, actual.candidate_pairs)
      << threads << " threads";
  EXPECT_EQ(expected.scored_pairs, actual.scored_pairs)
      << threads << " threads";
  EXPECT_EQ(expected.kept_edges, actual.kept_edges) << threads << " threads";
  EXPECT_EQ(expected.capped_queries, actual.capped_queries)
      << threads << " threads";
}

TEST(EntityGraphParallelTest, MatchesSerialAcrossThreadCounts) {
  auto w = MakeWorkload(/*num_queries=*/61, /*num_entities=*/97,
                        /*vocab=*/23, /*seed=*/2019);
  EntityGraphOptions options;
  options.similarity_threshold = 0.2;
  options.max_degree = 7;
  EntityGraphStats serial_stats;
  auto serial = BuildEntityGraph(w.qi, w.titles, w.vectors, options,
                                 &serial_stats);
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial->num_edges(), 0u) << "workload too sparse to be a test";

  for (size_t threads : {2u, 3u, 8u}) {
    options.num_threads = threads;
    EntityGraphStats stats;
    auto parallel =
        BuildEntityGraph(w.qi, w.titles, w.vectors, options, &stats);
    ASSERT_TRUE(parallel.ok());
    ExpectSameGraph(*serial, *parallel, threads);
    ExpectSameCounters(serial_stats, stats, threads);
  }
}

TEST(EntityGraphParallelTest, MatchesSerialWithFanoutCapEngaged) {
  auto w = MakeWorkload(/*num_queries=*/37, /*num_entities=*/53,
                        /*vocab=*/11, /*seed=*/7);
  EntityGraphOptions options;
  options.similarity_threshold = 0.0;
  options.max_items_per_query = 3;  // well under the max fanout of 12
  EntityGraphStats serial_stats;
  auto serial = BuildEntityGraph(w.qi, w.titles, w.vectors, options,
                                 &serial_stats);
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial_stats.capped_queries, 0u);

  for (size_t threads : {2u, 5u, 8u}) {
    options.num_threads = threads;
    EntityGraphStats stats;
    auto parallel =
        BuildEntityGraph(w.qi, w.titles, w.vectors, options, &stats);
    ASSERT_TRUE(parallel.ok());
    ExpectSameGraph(*serial, *parallel, threads);
    ExpectSameCounters(serial_stats, stats, threads);
  }
}

TEST(EntityGraphParallelTest, MoreThreadsThanQueriesOrEntities) {
  // Shards collapse to fewer chunks than workers; results still match.
  auto w = MakeWorkload(/*num_queries=*/5, /*num_entities=*/9,
                        /*vocab=*/7, /*seed=*/13);
  EntityGraphOptions options;
  options.similarity_threshold = 0.0;
  auto serial = BuildEntityGraph(w.qi, w.titles, w.vectors, options);
  ASSERT_TRUE(serial.ok());

  options.num_threads = 16;
  auto parallel = BuildEntityGraph(w.qi, w.titles, w.vectors, options);
  ASSERT_TRUE(parallel.ok());
  ExpectSameGraph(*serial, *parallel, 16);
}

TEST(EntityGraphParallelTest, HardwareConcurrencyAliasMatchesSerial) {
  auto w = MakeWorkload(/*num_queries=*/29, /*num_entities=*/41,
                        /*vocab=*/13, /*seed=*/3);
  EntityGraphOptions options;
  options.similarity_threshold = 0.1;
  auto serial = BuildEntityGraph(w.qi, w.titles, w.vectors, options);
  ASSERT_TRUE(serial.ok());

  options.num_threads = 0;  // hardware concurrency
  auto parallel = BuildEntityGraph(w.qi, w.titles, w.vectors, options);
  ASSERT_TRUE(parallel.ok());
  ExpectSameGraph(*serial, *parallel, 0);
}

TEST(EntityGraphParallelTest, EmptyInputsAtAnyThreadCount) {
  graph::BipartiteGraph qi(3, 4);
  std::vector<std::vector<uint32_t>> titles(4);
  text::EmbeddingTable vectors(1, 2);
  for (size_t threads : {1u, 2u, 8u}) {
    EntityGraphOptions options;
    options.num_threads = threads;
    EntityGraphStats stats;
    auto g = BuildEntityGraph(qi, titles, vectors, options, &stats);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->num_edges(), 0u);
    EXPECT_EQ(stats.candidate_pairs, 0u);
    EXPECT_EQ(stats.scored_pairs, 0u);
  }
}

TEST(EntityGraphParallelTest, BatchProfilesMatchSingleProfiles) {
  auto w = MakeWorkload(/*num_queries=*/11, /*num_entities=*/31,
                        /*vocab=*/17, /*seed=*/5);
  util::ThreadPool pool(4);
  auto batched = BuildContentProfiles(w.vectors, w.titles, &pool);
  ASSERT_EQ(batched.size(), w.titles.size());
  for (size_t e = 0; e < w.titles.size(); ++e) {
    ContentProfile single = BuildContentProfile(w.vectors, w.titles[e]);
    EXPECT_EQ(single.mean_unit_vector, batched[e].mean_unit_vector)
        << "entity " << e;
  }
}

}  // namespace
}  // namespace shoal::core
