#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroElements) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForChunkedPartitionIsExact) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelForChunked(10, [&](size_t begin, size_t end, size_t worker) {
    (void)worker;
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  size_t expected_begin = 0;
  size_t total = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    total += end - begin;
    expected_begin = end;
  }
  EXPECT_EQ(total, 10u);
}

TEST(ThreadPoolTest, MoreTasksThanThreads) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.ParallelFor(500, [&sum](size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 500L * 499 / 2);
}

TEST(ThreadPoolTest, SequentialWavesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    pool.ParallelFor(20, [&counter](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, TotalThreadsCreatedCountsSpawns) {
  const uint64_t before = ThreadPool::TotalThreadsCreated();
  {
    ThreadPool pool(3);
    EXPECT_EQ(ThreadPool::TotalThreadsCreated(), before + 3);
  }
  // Destruction joins but never un-counts; the counter is monotone.
  EXPECT_EQ(ThreadPool::TotalThreadsCreated(), before + 3);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace shoal::util
