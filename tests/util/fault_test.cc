#include "util/fault.h"

#include <vector>

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultTest, DisarmedByDefaultAfterReset) {
  FaultInjector::Global().Reset();
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_TRUE(FaultInjector::Global().OnHacRound(0).ok());
  EXPECT_TRUE(FaultInjector::Global().OnBspSuperstep(0).ok());
  EXPECT_TRUE(FaultInjector::Global().OnStage("hac").ok());
  EXPECT_FALSE(FaultInjector::Global().ShouldFailWrite());
}

TEST_F(FaultTest, EmptyAndOffSpecsDisarm) {
  ASSERT_TRUE(FaultInjector::Global().Configure("abort_at_round:1").ok());
  EXPECT_TRUE(FaultInjector::Global().armed());
  ASSERT_TRUE(FaultInjector::Global().Configure("").ok());
  EXPECT_FALSE(FaultInjector::Global().armed());
  ASSERT_TRUE(FaultInjector::Global().Configure("abort_at_round:1").ok());
  ASSERT_TRUE(FaultInjector::Global().Configure("off").ok());
  EXPECT_FALSE(FaultInjector::Global().armed());
}

TEST_F(FaultTest, MalformedSpecsRejectedAndDisarmed) {
  EXPECT_FALSE(FaultInjector::Global().Configure("bogus_directive:1").ok());
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_FALSE(FaultInjector::Global().Configure("abort_at_round").ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("abort_at_round:x").ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("fail_write:2.0").ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("fail_write:-0.5").ok());
}

TEST_F(FaultTest, AbortAtRoundTriggersOnlyAtThatRound) {
  ASSERT_TRUE(FaultInjector::Global().Configure("abort_at_round:3").ok());
  EXPECT_TRUE(FaultInjector::Global().OnHacRound(0).ok());
  EXPECT_TRUE(FaultInjector::Global().OnHacRound(2).ok());
  auto status = FaultInjector::Global().OnHacRound(3);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("fault injected"), std::string::npos);
  EXPECT_TRUE(FaultInjector::Global().OnHacRound(4).ok());
}

TEST_F(FaultTest, AbortAtSuperstepCountsCumulatively) {
  ASSERT_TRUE(
      FaultInjector::Global().Configure("abort_at_superstep:4").ok());
  // Two engine runs of 3 supersteps each; the 5th call (index 4,
  // 0-based cumulative) fails even though the per-run counter reset.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(FaultInjector::Global().OnBspSuperstep(i).ok());
  }
  EXPECT_TRUE(FaultInjector::Global().OnBspSuperstep(0).ok());
  EXPECT_EQ(FaultInjector::Global().OnBspSuperstep(1).code(),
            StatusCode::kInternal);
}

TEST_F(FaultTest, AbortAtStageMatchesByName) {
  ASSERT_TRUE(
      FaultInjector::Global().Configure("abort_at_stage:entity_graph").ok());
  EXPECT_TRUE(FaultInjector::Global().OnStage("word2vec").ok());
  EXPECT_EQ(FaultInjector::Global().OnStage("entity_graph").code(),
            StatusCode::kInternal);
  EXPECT_TRUE(FaultInjector::Global().OnStage("hac").ok());
}

TEST_F(FaultTest, FailWriteProbabilityZeroNeverFires) {
  ASSERT_TRUE(FaultInjector::Global().Configure("fail_write:0.0").ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultInjector::Global().ShouldFailWrite());
  }
}

TEST_F(FaultTest, FailWriteProbabilityOneAlwaysFires) {
  ASSERT_TRUE(FaultInjector::Global().Configure("fail_write:1.0").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FaultInjector::Global().ShouldFailWrite());
  }
}

TEST_F(FaultTest, FailWriteIsDeterministicAcrossRuns) {
  std::vector<bool> first;
  ASSERT_TRUE(FaultInjector::Global().Configure("fail_write:0.5").ok());
  for (int i = 0; i < 64; ++i) {
    first.push_back(FaultInjector::Global().ShouldFailWrite());
  }
  // Reconfiguring resets the write counter; the same sequence replays.
  ASSERT_TRUE(FaultInjector::Global().Configure("fail_write:0.5").ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(FaultInjector::Global().ShouldFailWrite(), first[i]) << i;
  }
  size_t fired = 0;
  for (bool b : first) fired += b;
  // 0.5 probability over 64 draws: both outcomes must occur.
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 64u);
}

TEST_F(FaultTest, CombinedDirectivesBothActive) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("abort_at_round:1,fail_write_at:1")
                  .ok());
  EXPECT_TRUE(FaultInjector::Global().ShouldFailWrite());
  EXPECT_FALSE(FaultInjector::Global().ShouldFailWrite());
  EXPECT_EQ(FaultInjector::Global().OnHacRound(1).code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace shoal::util
