#include "util/status.h"

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryMethodsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ErrorStatusesAreNotOk) {
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("no such topic");
  EXPECT_EQ(s.ToString(), "NotFound: no such topic");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::OutOfRange("index 7");
  Status copy = original;
  EXPECT_EQ(copy, original);
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    SHOAL_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorMacroPassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto outer = [&]() -> Status {
    SHOAL_RETURN_IF_ERROR(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

}  // namespace
}  // namespace shoal::util
