#include "util/bounded_queue.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 3);
}

TEST(BoundedQueueTest, CapacityZeroClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(BoundedQueueTest, PushBlocksUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks: queue is full
    second_pushed.store(true);
  });
  // The producer cannot finish until a Pop makes room.
  EXPECT_FALSE(second_pushed.load());
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueueTest, PopDrainsAfterClose) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(7));
  ASSERT_TRUE(q.Push(8));
  q.Close();
  EXPECT_TRUE(q.closed());
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.Pop(&v));  // closed and drained
}

TEST(BoundedQueueTest, PushAfterCloseFails) {
  BoundedQueue<int> q(2);
  q.Close();
  EXPECT_FALSE(q.Push(1));
  int v = 0;
  EXPECT_FALSE(q.Pop(&v));
}

TEST(BoundedQueueTest, CloseWakesBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] {
    EXPECT_FALSE(q.Push(2));  // blocked on full queue, then closed
  });
  q.Close();
  producer.join();
}

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(q.Pop(&v));  // blocked on empty queue, then closed
  });
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, MpmcStressDeliversEveryItemOnce) {
  // 4 producers x 250 items through a tiny queue into 3 consumers;
  // every value must arrive exactly once. The capacity of 2 forces
  // constant blocking on both sides.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(2);
  std::atomic<size_t> remaining{kProducers};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
      if (remaining.fetch_sub(1) == 1) q.Close();
    });
  }
  std::mutex mu;
  std::vector<int> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      int v = 0;
      while (q.Pop(&v)) {
        std::lock_guard<std::mutex> lock(mu);
        received.push_back(v);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  ASSERT_EQ(received.size(),
            static_cast<size_t>(kProducers * kPerProducer));
  std::sort(received.begin(), received.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(received[i], i);
  }
}

}  // namespace
}  // namespace shoal::util
