#include "util/stats.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-5.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(50.0), 1e-12);
}

TEST(HistogramTest, CountsFallInBuckets) {
  Histogram h(0.0, 1.0, 10);
  h.Add(0.05);
  h.Add(0.15);
  h.Add(0.95);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(17.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(HistogramTest, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.0);
}

TEST(HistogramTest, QuantileOnEmptyReturnsLo) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_EQ(h.Quantile(0.5), 2.0);
}

TEST(RunningStatsTest, NonFiniteSamplesDoNotPoisonMoments) {
  RunningStats s;
  s.Add(1.0);
  s.Add(std::nan(""));
  s.Add(std::numeric_limits<double>::infinity());
  s.Add(-std::numeric_limits<double>::infinity());
  s.Add(3.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.non_finite_count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 3.0);
  EXPECT_TRUE(std::isfinite(s.variance()));
  EXPECT_TRUE(std::isfinite(s.sum()));
}

TEST(RunningStatsTest, OnlyNonFiniteSamplesLeaveStatsEmpty) {
  RunningStats s;
  s.Add(std::nan(""));
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.non_finite_count(), 1u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, NonFiniteSamplesCountedNotClamped) {
  Histogram h(0.0, 1.0, 4);
  h.Add(std::nan(""));
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  h.Add(0.5);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.non_finite(), 3u);
  // Neither edge bucket absorbed the infinities.
  EXPECT_EQ(h.buckets()[0], 0u);
  EXPECT_EQ(h.buckets()[3], 0u);
  EXPECT_EQ(h.buckets()[2], 1u);
}

TEST(HistogramTest, ToStringRendersBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.Add(0.25);
  h.Add(0.75);
  std::string s = h.ToString(10);
  EXPECT_NE(s.find("##########"), std::string::npos);
  EXPECT_NE(s.find("10"), std::string::npos);
}

}  // namespace
}  // namespace shoal::util
