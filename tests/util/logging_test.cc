#include "util/logging.h"

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, BelowThresholdMessagesAreCheap) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These should be dropped silently (no crash, no assertion).
  SHOAL_LOG(kDebug) << "dropped " << 1;
  SHOAL_LOG(kInfo) << "dropped " << 2;
  SetLogLevel(original);
}

TEST(LoggingTest, StreamAcceptsMixedTypes) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kFatal);  // silence output during the test
  SHOAL_LOG(kWarning) << "n=" << 42 << " f=" << 1.5 << " s=" << "str";
  SetLogLevel(original);
}

TEST(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  LogLevel level = LogLevel::kFatal;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("fatal", &level));
  EXPECT_EQ(level, LogLevel::kFatal);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownNamesUntouched) {
  LogLevel level = LogLevel::kWarning;
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(SHOAL_LOG(kFatal) << "fatal path", "fatal path");
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SHOAL_CHECK(1 == 2) << "impossible", "Check failed");
}

TEST(LoggingTest, CheckSuccessDoesNothing) {
  SHOAL_CHECK(true) << "never evaluated";
}

}  // namespace
}  // namespace shoal::util
