#include "util/logging.h"

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, BelowThresholdMessagesAreCheap) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These should be dropped silently (no crash, no assertion).
  SHOAL_LOG(kDebug) << "dropped " << 1;
  SHOAL_LOG(kInfo) << "dropped " << 2;
  SetLogLevel(original);
}

TEST(LoggingTest, StreamAcceptsMixedTypes) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kFatal);  // silence output during the test
  SHOAL_LOG(kWarning) << "n=" << 42 << " f=" << 1.5 << " s=" << "str";
  SetLogLevel(original);
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(SHOAL_LOG(kFatal) << "fatal path", "fatal path");
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SHOAL_CHECK(1 == 2) << "impossible", "Check failed");
}

TEST(LoggingTest, CheckSuccessDoesNothing) {
  SHOAL_CHECK(true) << "never evaluated";
}

}  // namespace
}  // namespace shoal::util
