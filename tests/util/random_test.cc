#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformBoundRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ReseedReproducesSequence) {
  Rng rng(55);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.Next());
  rng.Reseed(55);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

TEST(ZipfTest, RankOneMostFrequent) {
  Rng rng(43);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  Rng rng(47);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 0.1, 0.01);
  }
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(53);
  ZipfDistribution zipf(7, 1.2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 7u);
  }
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t state = 0;
  uint64_t a = SplitMix64(state);
  uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace shoal::util
