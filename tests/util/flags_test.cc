#include "util/flags.h"

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

// Builds an argv array from string literals (argv[0] is the program).
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "test_program");
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  FlagParser flags;
  flags.AddInt64("n", 10, "count");
  flags.AddDouble("alpha", 0.7, "mix");
  flags.AddBool("verbose", false, "chatty");
  flags.AddString("name", "shoal", "label");
  ArgvBuilder args({});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt64("n"), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha"), 0.7);
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("name"), "shoal");
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser flags;
  flags.AddInt64("n", 0, "count");
  ArgvBuilder args({"--n=42"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt64("n"), 42);
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser flags;
  flags.AddDouble("alpha", 0.0, "mix");
  ArgvBuilder args({"--alpha", "0.35"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha"), 0.35);
}

TEST(FlagsTest, BareBoolEnables) {
  FlagParser flags;
  flags.AddBool("fast", false, "speed");
  ArgvBuilder args({"--fast"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.GetBool("fast"));
}

TEST(FlagsTest, BoolAcceptsExplicitValues) {
  FlagParser flags;
  flags.AddBool("fast", true, "speed");
  ArgvBuilder args({"--fast=false"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_FALSE(flags.GetBool("fast"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser flags;
  ArgvBuilder args({"--mystery=1"});
  EXPECT_EQ(flags.Parse(args.argc(), args.argv()).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, MalformedIntRejected) {
  FlagParser flags;
  flags.AddInt64("n", 0, "count");
  ArgvBuilder args({"--n=abc"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, MalformedDoubleRejected) {
  FlagParser flags;
  flags.AddDouble("x", 0.0, "value");
  ArgvBuilder args({"--x=1.2.3"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, MalformedBoolRejected) {
  FlagParser flags;
  flags.AddBool("b", false, "flag");
  ArgvBuilder args({"--b=maybe"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, PositionalArgsCollected) {
  FlagParser flags;
  flags.AddInt64("n", 1, "count");
  ArgvBuilder args({"input.tsv", "--n=2", "output.tsv"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.tsv");
  EXPECT_EQ(flags.positional()[1], "output.tsv");
}

TEST(FlagsTest, NegativeNumbers) {
  FlagParser flags;
  flags.AddInt64("n", 0, "count");
  flags.AddDouble("x", 0.0, "value");
  ArgvBuilder args({"--n=-5", "--x=-0.25"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt64("n"), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x"), -0.25);
}

TEST(FlagsTest, HelpRequested) {
  FlagParser flags;
  flags.AddInt64("n", 1, "count");
  ArgvBuilder args({"--help"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.help_requested());
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagParser flags;
  flags.AddInt64("entities", 2000, "number of item entities");
  std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("entities"), std::string::npos);
  EXPECT_NE(usage.find("2000"), std::string::npos);
  EXPECT_NE(usage.find("number of item entities"), std::string::npos);
}

TEST(FlagsTest, MissingValueAtEndRejected) {
  FlagParser flags;
  flags.AddInt64("n", 0, "count");
  ArgvBuilder args({"--n"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

}  // namespace
}  // namespace shoal::util
