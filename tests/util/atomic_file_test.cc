#include "util/atomic_file.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "util/fault.h"
#include "util/tsv.h"

namespace shoal::util {
namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_atomic_file_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().Reset();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // Files in the test dir besides `name` (stray temp files, etc.).
  size_t OtherFileCount(const std::string& name) {
    size_t count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().filename() != name) ++count;
    }
    return count;
  }

  std::filesystem::path dir_;
};

TEST_F(AtomicFileTest, WritesContents) {
  ASSERT_TRUE(AtomicWriteFile(Path("f.txt"), "hello\n").ok());
  auto read = ReadTextFile(Path("f.txt"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "hello\n");
  EXPECT_EQ(OtherFileCount("f.txt"), 0u) << "temp file left behind";
}

TEST_F(AtomicFileTest, OverwritesExistingFile) {
  ASSERT_TRUE(AtomicWriteFile(Path("f.txt"), "old").ok());
  ASSERT_TRUE(AtomicWriteFile(Path("f.txt"), "new").ok());
  auto read = ReadTextFile(Path("f.txt"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "new");
}

TEST_F(AtomicFileTest, BinarySafe) {
  std::string contents("\x00\x01\xff\n\r\x7f", 6);
  ASSERT_TRUE(AtomicWriteFile(Path("b.bin"), contents).ok());
  auto read = ReadTextFile(Path("b.bin"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), contents);
}

TEST_F(AtomicFileTest, MissingDirectoryIsIoError) {
  auto status = AtomicWriteFile(Path("no/such/dir/f.txt"), "x");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(AtomicFileTest, InjectedFailureLeavesTargetUntouched) {
  ASSERT_TRUE(AtomicWriteFile(Path("f.txt"), "original").ok());
  ASSERT_TRUE(FaultInjector::Global().Configure("fail_write:1.0").ok());
  auto status = AtomicWriteFile(Path("f.txt"), "clobbered");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  FaultInjector::Global().Reset();
  auto read = ReadTextFile(Path("f.txt"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "original");
  EXPECT_EQ(OtherFileCount("f.txt"), 0u)
      << "failed write must discard its temp file";
}

TEST_F(AtomicFileTest, FailWriteAtFailsExactlyThatWrite) {
  ASSERT_TRUE(FaultInjector::Global().Configure("fail_write_at:2").ok());
  EXPECT_TRUE(AtomicWriteFile(Path("a.txt"), "1").ok());
  EXPECT_EQ(AtomicWriteFile(Path("b.txt"), "2").code(),
            StatusCode::kIoError);
  EXPECT_TRUE(AtomicWriteFile(Path("c.txt"), "3").ok());
  EXPECT_FALSE(std::filesystem::exists(Path("b.txt")));
}

}  // namespace
}  // namespace shoal::util
