#include "util/tsv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

class TsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: parallel ctest processes must not share a
    // directory that TearDown deletes.
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_tsv_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(TsvTest, RoundTrip) {
  std::vector<std::vector<std::string>> rows = {
      {"a", "b", "c"}, {"1", "2", "3"}};
  ASSERT_TRUE(WriteTsv(Path("t.tsv"), rows).ok());
  auto read = ReadTsv(Path("t.tsv"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
}

TEST_F(TsvTest, SkipsCommentsAndBlankLines) {
  ASSERT_TRUE(
      WriteTextFile(Path("c.tsv"), "# header\n\na\tb\n   \n# more\nc\td\n")
          .ok());
  auto read = ReadTsv(Path("c.tsv"));
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[0][0], "a");
  EXPECT_EQ((*read)[1][1], "d");
}

TEST_F(TsvTest, RejectsFieldWithTab) {
  EXPECT_FALSE(WriteTsv(Path("bad.tsv"), {{"a\tb"}}).ok());
}

TEST_F(TsvTest, RejectsFieldWithNewline) {
  EXPECT_FALSE(WriteTsv(Path("bad.tsv"), {{"a\nb"}}).ok());
}

TEST_F(TsvTest, MissingFileIsIoError) {
  auto read = ReadTsv(Path("nope.tsv"));
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(TsvTest, TextFileRoundTrip) {
  const std::string content = "hello\nworld\n";
  ASSERT_TRUE(WriteTextFile(Path("x.txt"), content).ok());
  auto read = ReadTextFile(Path("x.txt"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
}

TEST_F(TsvTest, EmptyRowsWriteEmptyFile) {
  ASSERT_TRUE(WriteTsv(Path("empty.tsv"), {}).ok());
  auto read = ReadTsv(Path("empty.tsv"));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

}  // namespace
}  // namespace shoal::util
