#include "util/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(JsonValueTest, BuildAndDumpCompact) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::Str("shoal"));
  obj.Set("count", JsonValue::Number(3));
  obj.Set("ratio", JsonValue::Number(0.5));
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("none", JsonValue::Null());
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Number(1));
  arr.Append(JsonValue::Number(2));
  obj.Set("items", std::move(arr));
  EXPECT_EQ(obj.Dump(),
            "{\"name\":\"shoal\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"none\":null,\"items\":[1,2]}");
}

TEST(JsonValueTest, IntegralNumbersRenderWithoutDecimalPoint) {
  EXPECT_EQ(JsonValue::Number(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Number(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue::Number(1e15).Dump(), "1000000000000000");
}

TEST(JsonValueTest, NonFiniteNumbersRenderAsNull) {
  EXPECT_EQ(JsonValue::Number(std::nan("")).Dump(), "null");
  EXPECT_EQ(
      JsonValue::Number(std::numeric_limits<double>::infinity()).Dump(),
      "null");
}

TEST(JsonValueTest, EscapesControlAndQuoteCharacters) {
  std::string text = "a\"b\\c\n\t";
  text.push_back('\x01');
  JsonValue v = JsonValue::Str(text);
  EXPECT_EQ(v.Dump(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonValueTest, RoundTripThroughParse) {
  JsonValue obj = JsonValue::Object();
  obj.Set("pi", JsonValue::Number(3.14159));
  obj.Set("list", JsonValue::Array());
  obj.Set("nested", JsonValue::Object());
  const std::string dumped = obj.Dump(2);
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  const JsonValue* pi = parsed->Find("pi");
  ASSERT_NE(pi, nullptr);
  EXPECT_DOUBLE_EQ(pi->number(), 3.14159);
  EXPECT_EQ(parsed->Dump(2), dumped);
}

TEST(JsonValueTest, ParseScalarsAndStrings) {
  EXPECT_TRUE(JsonValue::Parse("true")->bool_value());
  EXPECT_FALSE(JsonValue::Parse("false")->bool_value());
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-2.5e2")->number(), -250.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\\u0041\"")->string_value(), "hiA");
}

TEST(JsonValueTest, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("01").ok());
  EXPECT_FALSE(JsonValue::Parse("+1").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());  // trailing garbage
}

TEST(JsonValueTest, ParseRejectsPathologicalNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonValueTest, FindReturnsNullForMissingKey) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", JsonValue::Number(1));
  EXPECT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("b"), nullptr);
}

TEST(JsonValueTest, PrettyPrintIndents) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", JsonValue::Number(1));
  EXPECT_EQ(obj.Dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonNumberToStringTest, PreservesPrecision) {
  const double v = 0.1234567890123456;
  auto parsed = JsonValue::Parse(JsonNumberToString(v));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->number(), v);
}

}  // namespace
}  // namespace shoal::util
