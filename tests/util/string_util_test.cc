#include "util/string_util.h"

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(SplitTest, BasicSplit) {
  auto parts = Split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiterYieldsWhole) {
  auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  auto parts = SplitWhitespace("  beach \t dress\nnow ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "beach");
  EXPECT_EQ(parts[1], "dress");
  EXPECT_EQ(parts[2], "now");
}

TEST(SplitWhitespaceTest, EmptyAndBlank) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("  \t\n ").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, AsciiLowercasing) {
  EXPECT_EQ(ToLower("Beach DRESS 42"), "beach dress 42");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("shoal_core", "shoal"));
  EXPECT_FALSE(StartsWith("core", "shoal"));
  EXPECT_TRUE(EndsWith("graph.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("graph.tsv", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d items in %s", 7, "topic"), "7 items in topic");
  EXPECT_EQ(StringPrintf("%.2f", 1.005), "1.00");
}

TEST(StringPrintfTest, EmptyFormat) {
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(FormatDoubleTest, StripsTrailingZeros) {
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(0.30, 4), "0.3");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(1.2345, 2), "1.23");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(200000000), "200,000,000");
}

}  // namespace
}  // namespace shoal::util
