#include "util/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, DereferenceOperators) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(*r, "hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(err.value_or(-1), -1);
  Result<int> ok = 7;
  EXPECT_EQ(ok.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, MoveOnlyType) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1};
  r.value().push_back(2);
  EXPECT_EQ(r->size(), 2u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto source = []() -> Result<int> { return 10; };
  auto consumer = [&]() -> Status {
    SHOAL_ASSIGN_OR_RETURN(int x, source());
    EXPECT_EQ(x, 10);
    return Status::OK();
  };
  EXPECT_TRUE(consumer().ok());

  auto failing = []() -> Result<int> { return Status::IoError("disk"); };
  auto fail_consumer = [&]() -> Status {
    SHOAL_ASSIGN_OR_RETURN(int x, failing());
    (void)x;
    ADD_FAILURE() << "should not reach here";
    return Status::OK();
  };
  EXPECT_EQ(fail_consumer().code(), StatusCode::kIoError);
}

TEST(ResultTest, CopySemantics) {
  Result<std::string> a = std::string("abc");
  Result<std::string> b = a;
  EXPECT_EQ(b.value(), "abc");
  EXPECT_EQ(a.value(), "abc");
}

}  // namespace
}  // namespace shoal::util
