#include "util/rcu.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace shoal::util {
namespace {

TEST(RcuCellTest, ReadReturnsInitialValue) {
  RcuCell<const int> cell(std::make_shared<const int>(42));
  auto value = cell.Read();
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 42);
  EXPECT_EQ(cell.epoch(), 1u);
}

TEST(RcuCellTest, DefaultConstructedHoldsNull) {
  RcuCell<const int> cell;
  EXPECT_EQ(cell.Read(), nullptr);
}

TEST(RcuCellTest, WritePublishesAndBumpsEpoch) {
  RcuCell<const int> cell(std::make_shared<const int>(1));
  cell.Write(std::make_shared<const int>(2));
  EXPECT_EQ(*cell.Read(), 2);
  EXPECT_EQ(cell.epoch(), 2u);
  cell.Write(std::make_shared<const int>(3));
  EXPECT_EQ(*cell.Read(), 3);
  EXPECT_EQ(cell.epoch(), 3u);
}

TEST(RcuCellTest, HeldSnapshotSurvivesWrite) {
  RcuCell<const int> cell(std::make_shared<const int>(7));
  std::shared_ptr<const int> held = cell.Read();
  std::weak_ptr<const int> watch = held;
  cell.Write(std::make_shared<const int>(8));
  // The in-flight snapshot is untouched by the swap.
  EXPECT_EQ(*held, 7);
  EXPECT_EQ(*cell.Read(), 8);  // also refreshes this thread's cache
  held.reset();
  // With the holder gone and the cache refreshed, the old value is dead.
  EXPECT_TRUE(watch.expired());
}

TEST(RcuCellTest, TwoCellsDoNotAliasTheThreadCache) {
  RcuCell<const int> a(std::make_shared<const int>(10));
  RcuCell<const int> b(std::make_shared<const int>(20));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(*a.Read(), 10);
    EXPECT_EQ(*b.Read(), 20);
  }
  a.Write(std::make_shared<const int>(11));
  EXPECT_EQ(*a.Read(), 11);
  EXPECT_EQ(*b.Read(), 20);
}

// The TSan acceptance test for the serving read path: many readers spin
// on Read() while a writer publishes a rising sequence. Every observed
// value must be well-formed (pointer valid, value in range) and
// monotonic per thread, and no access may race (TSan job enforces).
TEST(RcuCellTest, ConcurrentReadersSeeMonotonicValuesUnderWrites) {
  constexpr int kReaders = 4;
  constexpr int kWrites = 400;
  RcuCell<const int> cell(std::make_shared<const int>(0));
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      int last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const int> snap = cell.Read();
        if (snap == nullptr || *snap < last || *snap > kWrites) {
          failures.fetch_add(1);
          return;
        }
        last = *snap;
      }
    });
  }

  for (int w = 1; w <= kWrites; ++w) {
    cell.Write(std::make_shared<const int>(w));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(*cell.Read(), kWrites);
  EXPECT_EQ(cell.epoch(), static_cast<uint64_t>(kWrites) + 1);
}

// Reader threads that exit and new ones that start keep working: slots
// are recycled across thread lifetimes.
TEST(RcuCellTest, SlotRecyclingAcrossShortLivedThreads) {
  RcuCell<const int> cell(std::make_shared<const int>(5));
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 100; ++i) {
          auto snap = cell.Read();
          ASSERT_NE(snap, nullptr);
          EXPECT_GE(*snap, 5);
        }
      });
    }
    for (auto& t : threads) t.join();
    cell.Write(std::make_shared<const int>(6 + round));
  }
}

}  // namespace
}  // namespace shoal::util
