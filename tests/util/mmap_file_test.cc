#include "util/mmap_file.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "util/tsv.h"

namespace shoal::util {
namespace {

class MmapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_mmap_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(MmapFileTest, MapsFileContentsByteForByte) {
  std::string payload;
  for (int i = 0; i < 10000; ++i) payload.push_back(static_cast<char>(i * 7));
  ASSERT_TRUE(WriteTextFile(Path("blob"), payload).ok());

  auto mapped = MmapFile::Open(Path("blob"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->size(), payload.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(mapped->data()),
                        mapped->size()),
            payload);
}

TEST_F(MmapFileTest, EmptyFileMapsToEmptyRange) {
  ASSERT_TRUE(WriteTextFile(Path("empty"), "").ok());
  auto mapped = MmapFile::Open(Path("empty"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->size(), 0u);
  EXPECT_EQ(mapped->data(), nullptr);
}

TEST_F(MmapFileTest, MissingFileFailsCleanly) {
  auto mapped = MmapFile::Open(Path("no_such_file"));
  EXPECT_FALSE(mapped.ok());
}

TEST_F(MmapFileTest, DirectoryIsRejected) {
  auto mapped = MmapFile::Open(dir_.string());
  EXPECT_FALSE(mapped.ok());
}

TEST_F(MmapFileTest, MoveTransfersTheMapping) {
  ASSERT_TRUE(WriteTextFile(Path("blob"), "hello mapping").ok());
  auto opened = MmapFile::Open(Path("blob"));
  ASSERT_TRUE(opened.ok());
  MmapFile first = std::move(opened).value();
  const uint8_t* data = first.data();
  MmapFile second = std::move(first);
  EXPECT_EQ(second.data(), data);
  EXPECT_EQ(second.size(), 13u);
  EXPECT_EQ(first.data(), nullptr);  // NOLINT(bugprone-use-after-move)

  MmapFile third;
  third = std::move(second);
  EXPECT_EQ(third.data(), data);
  // The mapping stays readable through the final owner.
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(third.data()),
                        third.size()),
            "hello mapping");
}

}  // namespace
}  // namespace shoal::util
