// SpliceDendrogram correctness: frozen components replay bit-identical
// subtrees, dirty components agree with a from-scratch HAC of the new
// graph on flat clusters, the dirty set covers exactly the components
// with changed edges, and the whole operation is deterministic at any
// thread count.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dendrogram.h"
#include "core/parallel_hac.h"
#include "daemon/splice.h"
#include "graph/weighted_graph.h"

namespace shoal::daemon {
namespace {

core::ParallelHacOptions TestHac(size_t threads = 1) {
  core::ParallelHacOptions options;
  options.hac.threshold = 0.3;
  options.num_threads = threads;
  return options;
}

// Deterministic random graph: `num_vertices` vertices, `num_edges`
// distinct pairs with weights in (0.3, 1.0] so HAC has work to do.
graph::WeightedGraph RandomGraph(size_t num_vertices, size_t num_edges,
                                 uint64_t seed) {
  graph::WeightedGraph g(num_vertices);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> vertex(
      0, static_cast<uint32_t>(num_vertices - 1));
  std::uniform_real_distribution<double> weight(0.31, 1.0);
  size_t added = 0;
  while (added < num_edges) {
    uint32_t u = vertex(rng), v = vertex(rng);
    if (u == v) continue;
    if (g.AddEdge(u, v, weight(rng)).ok()) ++added;
  }
  return g;
}

// Cluster labels normalized to first-appearance order, so two
// partitions compare equal iff they group leaves identically.
std::vector<uint32_t> NormalizedClusters(const std::vector<uint32_t>& raw) {
  std::vector<uint32_t> canon(raw.size(), core::kNoNode);
  std::vector<uint32_t> normalized(raw.size());
  uint32_t next = 0;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (canon[raw[i]] == core::kNoNode) canon[raw[i]] = next++;
    normalized[i] = canon[raw[i]];
  }
  return normalized;
}

void ExpectSameDendrogram(const core::Dendrogram& expected,
                          const core::Dendrogram& actual,
                          const std::string& context) {
  ASSERT_EQ(expected.num_leaves(), actual.num_leaves()) << context;
  ASSERT_EQ(expected.num_nodes(), actual.num_nodes()) << context;
  for (uint32_t id = 0; id < expected.num_nodes(); ++id) {
    EXPECT_EQ(expected.node(id).left, actual.node(id).left)
        << context << " node " << id;
    EXPECT_EQ(expected.node(id).right, actual.node(id).right)
        << context << " node " << id;
    EXPECT_EQ(expected.node(id).merge_similarity,
              actual.node(id).merge_similarity)
        << context << " node " << id;
  }
}

TEST(SpliceTest, UnchangedGraphReplaysBitIdentically) {
  auto g = RandomGraph(/*num_vertices=*/40, /*num_edges=*/70, /*seed=*/2019);
  auto standing = core::ParallelHac(g, TestHac());
  ASSERT_TRUE(standing.ok());
  ASSERT_GT(standing->num_merges(), 0u);

  auto spliced = SpliceDendrogram(g, *standing, g, TestHac());
  ASSERT_TRUE(spliced.ok());
  EXPECT_EQ(spliced->stats.changed_edges, 0u);
  EXPECT_EQ(spliced->stats.dirty_components, 0u);
  EXPECT_EQ(spliced->stats.dirty_leaves, 0u);
  EXPECT_EQ(spliced->stats.hac_merges, 0u);
  EXPECT_EQ(spliced->stats.replayed_merges, standing->num_merges());
  ExpectSameDendrogram(*standing, spliced->dendrogram, "unchanged graph");
  for (uint32_t id = 0; id < standing->num_nodes(); ++id) {
    EXPECT_EQ(spliced->old_to_new_node[id], id) << "node " << id;
  }
  for (bool dirty : spliced->dirty_leaf) EXPECT_FALSE(dirty);
}

TEST(SpliceTest, AgreesWithFromScratchHacOnFlatClusters) {
  auto old_graph =
      RandomGraph(/*num_vertices=*/60, /*num_edges=*/110, /*seed=*/7);
  auto standing = core::ParallelHac(old_graph, TestHac());
  ASSERT_TRUE(standing.ok());

  // Perturb: drop some edges, add some new ones, reweight others.
  graph::WeightedGraph new_graph(old_graph.num_vertices());
  auto edges = old_graph.AllEdges();
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> weight(0.31, 1.0);
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i % 9 == 0) continue;  // removed
    const double w = i % 5 == 0 ? weight(rng) : edges[i].weight;
    ASSERT_TRUE(new_graph.AddEdge(edges[i].u, edges[i].v, w).ok());
  }
  std::uniform_int_distribution<uint32_t> vertex(
      0, static_cast<uint32_t>(old_graph.num_vertices() - 1));
  for (int i = 0; i < 12; ++i) {
    uint32_t u = vertex(rng), v = vertex(rng);
    if (u == v) continue;
    (void)new_graph.AddEdge(u, v, weight(rng)).ok();  // dup add is an error
  }

  auto spliced = SpliceDendrogram(old_graph, *standing, new_graph, TestHac());
  ASSERT_TRUE(spliced.ok());
  EXPECT_GT(spliced->stats.changed_edges, 0u);
  EXPECT_GT(spliced->stats.dirty_leaves, 0u);

  auto scratch = core::ParallelHac(new_graph, TestHac());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(spliced->dendrogram.num_merges(), scratch->num_merges());
  EXPECT_EQ(NormalizedClusters(spliced->dendrogram.FlatClusters()),
            NormalizedClusters(scratch->FlatClusters()));
  EXPECT_EQ(NormalizedClusters(spliced->dendrogram.CutAt(0.5)),
            NormalizedClusters(scratch->CutAt(0.5)));
}

TEST(SpliceTest, FrozenComponentRidesAcrossUntouched) {
  // Two disjoint 4-cliques; only the second one changes.
  graph::WeightedGraph old_graph(8);
  for (uint32_t base : {0u, 4u}) {
    for (uint32_t i = 0; i < 4; ++i) {
      for (uint32_t j = i + 1; j < 4; ++j) {
        ASSERT_TRUE(
            old_graph.AddEdge(base + i, base + j, 0.4 + 0.05 * (i + j)).ok());
      }
    }
  }
  auto standing = core::ParallelHac(old_graph, TestHac());
  ASSERT_TRUE(standing.ok());

  graph::WeightedGraph new_graph(8);
  auto edges = old_graph.AllEdges();
  for (const auto& e : edges) {
    const bool in_second = e.u >= 4;
    const double w = in_second && e.u == 4 && e.v == 5 ? 0.95 : e.weight;
    ASSERT_TRUE(new_graph.AddEdge(e.u, e.v, w).ok());
  }

  auto spliced = SpliceDendrogram(old_graph, *standing, new_graph, TestHac());
  ASSERT_TRUE(spliced.ok());
  EXPECT_EQ(spliced->stats.dirty_components, 1u);
  EXPECT_EQ(spliced->stats.dirty_leaves, 4u);
  for (uint32_t leaf = 0; leaf < 8; ++leaf) {
    EXPECT_EQ(spliced->dirty_leaf[leaf], leaf >= 4) << "leaf " << leaf;
  }
  // Every node of the frozen component maps to a structurally identical
  // node of the new dendrogram.
  for (uint32_t id = 0; id < standing->num_nodes(); ++id) {
    auto leaves = standing->LeavesUnder(id);
    const bool frozen = leaves.front() < 4;
    if (!frozen) {
      EXPECT_EQ(spliced->old_to_new_node[id], core::kNoNode) << "node " << id;
      continue;
    }
    const uint32_t mapped = spliced->old_to_new_node[id];
    ASSERT_NE(mapped, core::kNoNode) << "node " << id;
    if (standing->IsLeaf(id)) {
      EXPECT_EQ(mapped, id);  // leaves keep their entity ids
    } else {
      EXPECT_EQ(spliced->dendrogram.node(mapped).merge_similarity,
                standing->node(id).merge_similarity)
          << "node " << id;
    }
  }
}

TEST(SpliceTest, DeterministicAcrossThreadCounts) {
  auto old_graph =
      RandomGraph(/*num_vertices=*/70, /*num_edges=*/130, /*seed=*/23);
  auto standing = core::ParallelHac(old_graph, TestHac());
  ASSERT_TRUE(standing.ok());

  graph::WeightedGraph new_graph(old_graph.num_vertices());
  auto edges = old_graph.AllEdges();
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> weight(0.31, 1.0);
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i % 7 == 0) continue;
    ASSERT_TRUE(
        new_graph.AddEdge(edges[i].u, edges[i].v,
                          i % 3 == 0 ? weight(rng) : edges[i].weight)
            .ok());
  }

  auto reference = SpliceDendrogram(old_graph, *standing, new_graph,
                                    TestHac(/*threads=*/1));
  ASSERT_TRUE(reference.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    auto variant = SpliceDendrogram(old_graph, *standing, new_graph,
                                    TestHac(threads));
    ASSERT_TRUE(variant.ok());
    ExpectSameDendrogram(reference->dendrogram, variant->dendrogram,
                         std::to_string(threads) + " threads");
    EXPECT_EQ(reference->dirty_leaf, variant->dirty_leaf);
    EXPECT_EQ(reference->old_to_new_node, variant->old_to_new_node);
    EXPECT_EQ(reference->stats.dirty_components,
              variant->stats.dirty_components);
    EXPECT_EQ(reference->stats.replayed_merges,
              variant->stats.replayed_merges);
    EXPECT_EQ(reference->stats.hac_merges, variant->stats.hac_merges);
  }
}

TEST(SpliceTest, EmptyOldGraphIsAFullRebuild) {
  graph::WeightedGraph old_graph(10);
  core::Dendrogram standing(10);  // 10 singleton leaves, no merges
  auto new_graph = RandomGraph(/*num_vertices=*/10, /*num_edges=*/16,
                               /*seed=*/3);
  auto spliced =
      SpliceDendrogram(old_graph, standing, new_graph, TestHac());
  ASSERT_TRUE(spliced.ok());
  auto scratch = core::ParallelHac(new_graph, TestHac());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(NormalizedClusters(spliced->dendrogram.FlatClusters()),
            NormalizedClusters(scratch->FlatClusters()));
}

}  // namespace
}  // namespace shoal::daemon
