// End-to-end TaxonomyDaemon cycles over a planted drift workload: the
// maintained entity graph must match a from-scratch build of every
// window, published indexes must be byte-identical at any thread count,
// and a daemon restored from its snapshot must continue exactly where
// the original process would have.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/entity_graph.h"
#include "daemon/daemon.h"
#include "data/drift_log.h"
#include "util/tsv.h"

namespace shoal::daemon {
namespace {

class DaemonCycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: parallel ctest processes must not share a
    // directory that TearDown deletes.
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("shoal_daemon_cycle_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static data::DriftLog MakeLog(size_t num_days) {
    data::DriftOptions options;
    options.catalog.num_entities = 220;
    options.catalog.num_queries = 160;
    options.catalog.seed = 2019;
    options.num_days = num_days;
    options.background_pairs = 1500;
    options.drift_clicks_per_day = 600;
    auto generated = data::GenerateDriftLog(options);
    EXPECT_TRUE(generated.ok());
    return std::move(generated).value();
  }

  // Spool with the catalog and days [0, num_days) already arrived.
  std::string MakeSpool(const data::DriftLog& log, size_t num_days,
                        const std::string& name) {
    const std::string spool = dir_ + "/" + name;
    std::filesystem::create_directories(spool);
    EXPECT_TRUE(data::ExportDriftCatalog(log, spool).ok());
    for (size_t d = 0; d < num_days; ++d) {
      EXPECT_TRUE(data::ExportDriftDay(log, d, spool).ok());
    }
    return spool;
  }

  DaemonOptions MakeOptions(const std::string& spool,
                            const std::string& tag) {
    DaemonOptions options;
    options.spool_dir = spool;
    options.index_path = dir_ + "/" + tag + ".idx";
    options.snapshot_path = dir_ + "/" + tag + ".snap";
    options.window_days = 3;
    return options;
  }

  static std::string FileBytes(const std::string& path) {
    auto read = util::ReadTextFile(path);
    EXPECT_TRUE(read.ok()) << path;
    return read.ok() ? std::move(read).value() : std::string();
  }

  std::string dir_;
};

TEST_F(DaemonCycleTest, MaintainedGraphMatchesFromScratchEveryCycle) {
  auto log = MakeLog(/*num_days=*/5);
  const std::string spool = MakeSpool(log, 5, "spool");
  DaemonOptions options = MakeOptions(spool, "a");
  auto created = TaxonomyDaemon::Create(options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto& daemon = *created.value();

  for (size_t d = 0; d < 5; ++d) {
    auto report = daemon.RunOnce();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->has_value()) << "day " << d;
    EXPECT_EQ((*report)->day_file, data::DriftDayFileName(d));
    EXPECT_EQ((*report)->published_version, d + 1);
    EXPECT_EQ((*report)->full_rebuild, d == 0);
    EXPECT_GT((*report)->num_topics, 0u);
    EXPECT_EQ((*report)->touched_topics + (*report)->carried_topics,
              (*report)->num_topics);

    const size_t begin = d + 1 >= options.window_days
                             ? d + 1 - options.window_days
                             : 0;
    auto reference = core::BuildEntityGraph(
        data::BuildWindowGraph(log, begin, d + 1), daemon.title_words(),
        daemon.word_vectors(), options.entity_graph);
    ASSERT_TRUE(reference.ok());
    auto maintained = daemon.graph().Materialize();
    ASSERT_TRUE(maintained.ok());
    ASSERT_EQ(reference->num_edges(), maintained->num_edges()) << "day " << d;
    auto expected_edges = reference->AllEdges();
    auto actual_edges = maintained->AllEdges();
    for (size_t i = 0; i < expected_edges.size(); ++i) {
      ASSERT_EQ(expected_edges[i].u, actual_edges[i].u) << "day " << d;
      ASSERT_EQ(expected_edges[i].v, actual_edges[i].v) << "day " << d;
      ASSERT_EQ(expected_edges[i].weight, actual_edges[i].weight)
          << "day " << d;
    }
  }
  // Later cycles must ride on the standing state, not rebuild: with the
  // drift workload's stationary background, most topics carry over.
  auto drained = daemon.RunOnce();
  ASSERT_TRUE(drained.ok());
  EXPECT_FALSE(drained->has_value()) << "spool should be drained";
}

TEST_F(DaemonCycleTest, PublishedIndexByteIdenticalAcrossThreadCounts) {
  auto log = MakeLog(/*num_days=*/4);
  const std::string spool = MakeSpool(log, 4, "spool");
  std::vector<std::string> final_images;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::string tag = "t";
    tag += std::to_string(threads);
    DaemonOptions options = MakeOptions(spool, tag);
    options.num_threads = threads;
    auto created = TaxonomyDaemon::Create(options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto& daemon = *created.value();
    while (true) {
      auto report = daemon.RunOnce();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      if (!report->has_value()) break;
    }
    EXPECT_EQ(daemon.published_version(), 4u);
    final_images.push_back(FileBytes(options.index_path));
  }
  for (size_t i = 1; i < final_images.size(); ++i) {
    EXPECT_EQ(final_images[0], final_images[i])
        << "published index diverged at thread variant " << i;
  }
}

TEST_F(DaemonCycleTest, SnapshotRestoreContinuesByteIdentically) {
  auto log = MakeLog(/*num_days=*/4);
  // Both spools start with days 1-3; day 4 arrives later in each.
  const std::string spool_a = MakeSpool(log, 3, "spool_a");
  const std::string spool_b = MakeSpool(log, 3, "spool_b");

  DaemonOptions options_a = MakeOptions(spool_a, "a");
  auto created_a = TaxonomyDaemon::Create(options_a);
  ASSERT_TRUE(created_a.ok()) << created_a.status().ToString();
  auto& daemon_a = *created_a.value();
  for (int i = 0; i < 3; ++i) {
    auto report = daemon_a.RunOnce();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->has_value());
  }

  // A second process picks up A's snapshot (same options, own spool and
  // index paths so the two do not race).
  DaemonOptions options_b = MakeOptions(spool_b, "b");
  options_b.snapshot_path = options_a.snapshot_path;
  auto created_b = TaxonomyDaemon::Create(options_b);
  ASSERT_TRUE(created_b.ok()) << created_b.status().ToString();
  auto& daemon_b = *created_b.value();
  EXPECT_TRUE(daemon_b.restored_from_snapshot());
  EXPECT_EQ(daemon_b.cycles_done(), 3u);
  EXPECT_EQ(daemon_b.published_version(), 3u);

  // The restored standing store matches the live one bit for bit.
  auto store_a = daemon_a.graph().StoreEdges();
  auto store_b = daemon_b.graph().StoreEdges();
  ASSERT_EQ(store_a.size(), store_b.size());
  for (size_t i = 0; i < store_a.size(); ++i) {
    EXPECT_EQ(store_a[i].u, store_b[i].u);
    EXPECT_EQ(store_a[i].v, store_b[i].v);
    EXPECT_EQ(store_a[i].s, store_b[i].s);
  }

  // Nothing new in B's spool yet: the restore must not re-consume days.
  auto idle = daemon_b.RunOnce();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->has_value());

  // Day 4 arrives in both worlds; the continued process and the
  // restored process must publish identical bytes.
  ASSERT_TRUE(data::ExportDriftDay(log, 3, spool_a).ok());
  ASSERT_TRUE(data::ExportDriftDay(log, 3, spool_b).ok());
  auto report_a = daemon_a.RunOnce();
  ASSERT_TRUE(report_a.ok());
  ASSERT_TRUE(report_a->has_value());
  auto report_b = daemon_b.RunOnce();
  ASSERT_TRUE(report_b.ok());
  ASSERT_TRUE(report_b->has_value());
  EXPECT_EQ((*report_a)->published_version, (*report_b)->published_version);
  EXPECT_EQ(FileBytes(options_a.index_path), FileBytes(options_b.index_path));
}

TEST_F(DaemonCycleTest, OptionsSkewAgainstSnapshotIsRejected) {
  auto log = MakeLog(/*num_days=*/2);
  const std::string spool = MakeSpool(log, 2, "spool");
  DaemonOptions options = MakeOptions(spool, "a");
  auto created = TaxonomyDaemon::Create(options);
  ASSERT_TRUE(created.ok());
  auto report = (*created)->RunOnce();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->has_value());

  DaemonOptions skewed = options;
  skewed.entity_graph.similarity_threshold += 0.1;
  auto rejected = TaxonomyDaemon::Create(skewed);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(DaemonCycleTest, DriftKeepsMostTopicsCarried) {
  auto log = MakeLog(/*num_days=*/5);
  const std::string spool = MakeSpool(log, 5, "spool");
  DaemonOptions options = MakeOptions(spool, "a");
  auto created = TaxonomyDaemon::Create(options);
  ASSERT_TRUE(created.ok());
  auto& daemon = *created.value();
  // Warm up through the first full window.
  for (int i = 0; i < 3; ++i) {
    auto report = daemon.RunOnce();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->has_value());
  }
  // Steady-state cycles: the stationary background cancels out of the
  // delta, so a healthy fraction of topics must ride across untouched.
  for (int i = 0; i < 2; ++i) {
    auto report = daemon.RunOnce();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->has_value());
    EXPECT_LT((*report)->dirty_fraction, 1.0);
    EXPECT_GT((*report)->carried_topics, 0u);
    EXPECT_GT((*report)->delta.delta_entries, 0u);
  }
}

}  // namespace
}  // namespace shoal::daemon
