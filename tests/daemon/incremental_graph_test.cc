// IncrementalEntityGraph correctness: after any sequence of sliding-
// window deltas, the standing store must be byte-identical to what
// BuildEntityGraph computes from scratch over the same window — the
// invariant everything else in src/daemon leans on. Also covers thread
// invariance, the identity-preservation of LSH discovery, and the
// negative-count guard.

#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/entity_graph.h"
#include "daemon/incremental_graph.h"
#include "graph/bipartite_graph.h"

namespace shoal::daemon {
namespace {

// One day = aggregated (query, entity) -> count.
using DayCounts = std::map<std::pair<uint32_t, uint32_t>, uint32_t>;

struct Workload {
  size_t num_queries = 0;
  size_t num_entities = 0;
  std::vector<std::vector<uint32_t>> titles;
  text::EmbeddingTable vectors{0, 0};
  std::vector<DayCounts> days;
};

// Deterministic catalog + day streams. Later days introduce entities
// from the top of the id range ("births") so new-entity discovery has
// something to discover.
Workload MakeWorkload(size_t num_queries, size_t num_entities, size_t vocab,
                      size_t num_days, uint64_t seed) {
  Workload w;
  w.num_queries = num_queries;
  w.num_entities = num_entities;
  w.vectors = text::EmbeddingTable(vocab, 8);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> coord(-1.0f, 1.0f);
  for (size_t v = 0; v < vocab; ++v) {
    for (size_t d = 0; d < 8; ++d) w.vectors.Row(v)[d] = coord(rng);
  }
  std::uniform_int_distribution<uint32_t> word(
      0, static_cast<uint32_t>(vocab - 1));
  w.titles.resize(num_entities);
  for (auto& title : w.titles) {
    std::uniform_int_distribution<size_t> title_len(1, 5);
    size_t len = title_len(rng);
    for (size_t i = 0; i < len; ++i) title.push_back(word(rng));
  }
  // Entities [active_floor, num_entities) are born one day at a time.
  const size_t always_active = num_entities - std::min(num_entities / 4,
                                                       num_days);
  std::uniform_int_distribution<uint32_t> query(
      0, static_cast<uint32_t>(num_queries - 1));
  std::uniform_int_distribution<uint32_t> clicks(1, 9);
  w.days.resize(num_days);
  for (size_t d = 0; d < num_days; ++d) {
    const size_t active = std::min(always_active + d, num_entities);
    std::uniform_int_distribution<uint32_t> entity(
        0, static_cast<uint32_t>(active - 1));
    std::uniform_int_distribution<size_t> volume(40, 80);
    size_t pairs = volume(rng);
    for (size_t i = 0; i < pairs; ++i) {
      w.days[d][{query(rng), entity(rng)}] += clicks(rng);
    }
    // Give each newborn a burst so it actually enters the graph.
    if (active > always_active) {
      const uint32_t born = static_cast<uint32_t>(active - 1);
      for (int i = 0; i < 6; ++i) w.days[d][{query(rng), born}] += 2;
    }
  }
  return w;
}

// The incoming-minus-retiring delta of one window step, zero entries
// dropped, sorted by (query, entity) like the daemon produces.
ClickDelta MakeDelta(const DayCounts* incoming, const DayCounts* retiring) {
  std::map<std::pair<uint32_t, uint32_t>, int64_t> net;
  if (incoming != nullptr) {
    for (const auto& [pair, count] : *incoming) net[pair] += count;
  }
  if (retiring != nullptr) {
    for (const auto& [pair, count] : *retiring) net[pair] -= count;
  }
  ClickDelta delta;
  for (const auto& [pair, change] : net) {
    if (change == 0) continue;
    delta.entries.push_back({pair.first, pair.second, change});
  }
  return delta;
}

// Aggregate of days [begin, end) as the bipartite input the from-
// scratch builder sees.
graph::BipartiteGraph AggregateWindow(const Workload& w, size_t begin,
                                      size_t end) {
  graph::BipartiteGraph qi(w.num_queries, w.num_entities);
  DayCounts total;
  for (size_t d = begin; d < end; ++d) {
    for (const auto& [pair, count] : w.days[d]) total[pair] += count;
  }
  for (const auto& [pair, count] : total) {
    EXPECT_TRUE(qi.AddInteraction(pair.first, pair.second, count).ok());
  }
  return qi;
}

void ExpectSameGraph(const graph::WeightedGraph& expected,
                     const graph::WeightedGraph& actual,
                     const std::string& context) {
  ASSERT_EQ(expected.num_vertices(), actual.num_vertices()) << context;
  ASSERT_EQ(expected.num_edges(), actual.num_edges()) << context;
  auto expected_edges = expected.AllEdges();
  auto actual_edges = actual.AllEdges();
  ASSERT_EQ(expected_edges.size(), actual_edges.size()) << context;
  for (size_t i = 0; i < expected_edges.size(); ++i) {
    EXPECT_EQ(expected_edges[i].u, actual_edges[i].u) << context << " edge "
                                                      << i;
    EXPECT_EQ(expected_edges[i].v, actual_edges[i].v) << context << " edge "
                                                      << i;
    // Bitwise: the incremental path must run the same arithmetic.
    EXPECT_EQ(expected_edges[i].weight, actual_edges[i].weight)
        << context << " edge " << i;
  }
}

IncrementalGraphOptions TestOptions() {
  IncrementalGraphOptions options;
  options.entity_graph.similarity_threshold = 0.2;
  options.entity_graph.max_degree = 7;
  return options;
}

TEST(IncrementalGraphTest, MatchesFromScratchAcrossSlidingWindow) {
  auto w = MakeWorkload(/*num_queries=*/41, /*num_entities=*/67,
                        /*vocab=*/19, /*num_days=*/6, /*seed=*/2019);
  const size_t window = 3;
  IncrementalGraphOptions options = TestOptions();
  auto created = IncrementalEntityGraph::Create(w.num_queries, w.titles,
                                                w.vectors, options);
  ASSERT_TRUE(created.ok());
  IncrementalEntityGraph graph = std::move(created).value();

  for (size_t d = 0; d < w.days.size(); ++d) {
    const DayCounts* retiring = d >= window ? &w.days[d - window] : nullptr;
    DeltaStats stats;
    auto applied = graph.ApplyDelta(MakeDelta(&w.days[d], retiring), &stats);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    EXPECT_GT(stats.delta_entries, 0u);

    const size_t begin = d + 1 >= window ? d + 1 - window : 0;
    auto reference = core::BuildEntityGraph(AggregateWindow(w, begin, d + 1),
                                            w.titles, w.vectors,
                                            options.entity_graph);
    ASSERT_TRUE(reference.ok());
    auto materialized = graph.Materialize();
    ASSERT_TRUE(materialized.ok());
    ExpectSameGraph(*reference, *materialized,
                    "window [" + std::to_string(begin) + ", " +
                        std::to_string(d + 1) + ")");
  }
  // A non-trivial final graph, or the whole sweep proved nothing.
  auto final_graph = graph.Materialize();
  ASSERT_TRUE(final_graph.ok());
  EXPECT_GT(final_graph->num_edges(), 0u);
}

TEST(IncrementalGraphTest, IdenticalAtEveryThreadCount) {
  auto w = MakeWorkload(/*num_queries=*/31, /*num_entities=*/53,
                        /*vocab=*/13, /*num_days=*/5, /*seed=*/7);
  const size_t window = 2;
  std::vector<std::vector<core::ScoredEdge>> stores;
  std::vector<graph::WeightedGraph> graphs;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    IncrementalGraphOptions options = TestOptions();
    options.entity_graph.num_threads = threads;
    auto created = IncrementalEntityGraph::Create(w.num_queries, w.titles,
                                                  w.vectors, options);
    ASSERT_TRUE(created.ok());
    IncrementalEntityGraph graph = std::move(created).value();
    for (size_t d = 0; d < w.days.size(); ++d) {
      const DayCounts* retiring = d >= window ? &w.days[d - window] : nullptr;
      ASSERT_TRUE(
          graph.ApplyDelta(MakeDelta(&w.days[d], retiring), nullptr).ok());
    }
    auto materialized = graph.Materialize();
    ASSERT_TRUE(materialized.ok());
    stores.push_back(graph.StoreEdges());
    graphs.push_back(std::move(materialized).value());
  }
  for (size_t i = 1; i < graphs.size(); ++i) {
    ExpectSameGraph(graphs[0], graphs[i], "thread variant " +
                                              std::to_string(i));
    ASSERT_EQ(stores[0].size(), stores[i].size());
    for (size_t j = 0; j < stores[0].size(); ++j) {
      EXPECT_EQ(stores[0][j].u, stores[i][j].u);
      EXPECT_EQ(stores[0][j].v, stores[i][j].v);
      EXPECT_EQ(stores[0][j].s, stores[i][j].s);
    }
  }
}

TEST(IncrementalGraphTest, LshDiscoveryIsIdentityPreserving) {
  auto w = MakeWorkload(/*num_queries=*/29, /*num_entities=*/48,
                        /*vocab=*/11, /*num_days=*/5, /*seed=*/23);
  const size_t window = 3;
  std::vector<graph::WeightedGraph> variants;
  size_t probes_when_on = 0;
  for (bool lsh : {true, false}) {
    IncrementalGraphOptions options = TestOptions();
    options.lsh_discovery = lsh;
    auto created = IncrementalEntityGraph::Create(w.num_queries, w.titles,
                                                  w.vectors, options);
    ASSERT_TRUE(created.ok());
    IncrementalEntityGraph graph = std::move(created).value();
    for (size_t d = 0; d < w.days.size(); ++d) {
      const DayCounts* retiring = d >= window ? &w.days[d - window] : nullptr;
      DeltaStats stats;
      ASSERT_TRUE(
          graph.ApplyDelta(MakeDelta(&w.days[d], retiring), &stats).ok());
      if (lsh) probes_when_on += stats.lsh_probe_pairs;
      if (!lsh) {
        EXPECT_EQ(stats.lsh_probe_pairs, 0u);
        EXPECT_EQ(stats.lsh_confirmed_pairs, 0u);
      }
    }
    auto materialized = graph.Materialize();
    ASSERT_TRUE(materialized.ok());
    variants.push_back(std::move(materialized).value());
  }
  // Discovery may only surface pairs the exact sweep finds anyway.
  ExpectSameGraph(variants[0], variants[1], "lsh on vs off");
  // The workload plants newborn entities, so discovery must have fired.
  EXPECT_GT(probes_when_on, 0u);
}

TEST(IncrementalGraphTest, WindowGraphMatchesAggregate) {
  auto w = MakeWorkload(/*num_queries=*/17, /*num_entities=*/23,
                        /*vocab=*/7, /*num_days=*/4, /*seed=*/5);
  const size_t window = 2;
  auto created = IncrementalEntityGraph::Create(w.num_queries, w.titles,
                                                w.vectors, TestOptions());
  ASSERT_TRUE(created.ok());
  IncrementalEntityGraph graph = std::move(created).value();
  for (size_t d = 0; d < w.days.size(); ++d) {
    const DayCounts* retiring = d >= window ? &w.days[d - window] : nullptr;
    ASSERT_TRUE(
        graph.ApplyDelta(MakeDelta(&w.days[d], retiring), nullptr).ok());
  }
  graph::BipartiteGraph expected =
      AggregateWindow(w, w.days.size() - window, w.days.size());
  graph::BipartiteGraph actual = graph.WindowGraph();
  ASSERT_EQ(expected.num_left(), actual.num_left());
  ASSERT_EQ(expected.num_right(), actual.num_right());
  ASSERT_EQ(expected.num_edges(), actual.num_edges());
  ASSERT_EQ(expected.total_interactions(), actual.total_interactions());
  for (uint32_t q = 0; q < expected.num_left(); ++q) {
    const auto& e_links = expected.LeftNeighbors(q);
    const auto& a_links = actual.LeftNeighbors(q);
    ASSERT_EQ(e_links.size(), a_links.size()) << "query " << q;
    for (size_t i = 0; i < e_links.size(); ++i) {
      EXPECT_EQ(e_links[i].id, a_links[i].id) << "query " << q;
      EXPECT_EQ(e_links[i].count, a_links[i].count) << "query " << q;
    }
  }
}

TEST(IncrementalGraphTest, EmptyDeltaIsANoOp) {
  auto w = MakeWorkload(/*num_queries=*/11, /*num_entities=*/13,
                        /*vocab=*/5, /*num_days=*/1, /*seed=*/3);
  auto created = IncrementalEntityGraph::Create(w.num_queries, w.titles,
                                                w.vectors, TestOptions());
  ASSERT_TRUE(created.ok());
  IncrementalEntityGraph graph = std::move(created).value();
  ASSERT_TRUE(graph.ApplyDelta(MakeDelta(&w.days[0], nullptr), nullptr).ok());
  const auto before = graph.StoreEdges();

  DeltaStats stats;
  ASSERT_TRUE(graph.ApplyDelta(ClickDelta{}, &stats).ok());
  EXPECT_EQ(stats.delta_entries, 0u);
  EXPECT_EQ(stats.dirty_queries, 0u);
  EXPECT_EQ(stats.dirty_entities, 0u);
  EXPECT_EQ(stats.pairs_rescored, 0u);
  const auto after = graph.StoreEdges();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].u, after[i].u);
    EXPECT_EQ(before[i].v, after[i].v);
    EXPECT_EQ(before[i].s, after[i].s);
  }
}

TEST(IncrementalGraphTest, RetirementBelowZeroFails) {
  auto w = MakeWorkload(/*num_queries=*/7, /*num_entities=*/9,
                        /*vocab=*/5, /*num_days=*/1, /*seed=*/1);
  auto created = IncrementalEntityGraph::Create(w.num_queries, w.titles,
                                                w.vectors, TestOptions());
  ASSERT_TRUE(created.ok());
  IncrementalEntityGraph graph = std::move(created).value();
  ClickDelta bogus;
  bogus.entries.push_back({0, 0, -5});  // retiring what was never ingested
  EXPECT_FALSE(graph.ApplyDelta(bogus, nullptr).ok());
}

}  // namespace
}  // namespace shoal::daemon
