#include "graph/bipartite_graph.h"

#include <gtest/gtest.h>

namespace shoal::graph {
namespace {

TEST(BipartiteGraphTest, Dimensions) {
  BipartiteGraph g(3, 5);
  EXPECT_EQ(g.num_left(), 3u);
  EXPECT_EQ(g.num_right(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(BipartiteGraphTest, AddInteractionCreatesEdge) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddInteraction(0, 1).ok());
  EXPECT_EQ(g.num_edges(), 1u);
  ASSERT_EQ(g.LeftNeighbors(0).size(), 1u);
  EXPECT_EQ(g.LeftNeighbors(0)[0].id, 1u);
  EXPECT_EQ(g.LeftNeighbors(0)[0].count, 1u);
  ASSERT_EQ(g.RightNeighbors(1).size(), 1u);
  EXPECT_EQ(g.RightNeighbors(1)[0].id, 0u);
}

TEST(BipartiteGraphTest, RepeatInteractionsAccumulate) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddInteraction(0, 1).ok());
  ASSERT_TRUE(g.AddInteraction(0, 1, 4).ok());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.LeftNeighbors(0)[0].count, 5u);
  EXPECT_EQ(g.RightNeighbors(1)[0].count, 5u);
  EXPECT_EQ(g.total_interactions(), 5u);
}

TEST(BipartiteGraphTest, OutOfRangeRejected) {
  BipartiteGraph g(2, 2);
  EXPECT_FALSE(g.AddInteraction(5, 0).ok());
  EXPECT_FALSE(g.AddInteraction(0, 5).ok());
}

TEST(BipartiteGraphTest, ZeroCountRejected) {
  BipartiteGraph g(2, 2);
  EXPECT_FALSE(g.AddInteraction(0, 0, 0).ok());
}

TEST(BipartiteGraphTest, QueriesOfItemSorted) {
  BipartiteGraph g(5, 2);
  ASSERT_TRUE(g.AddInteraction(3, 0).ok());
  ASSERT_TRUE(g.AddInteraction(1, 0).ok());
  ASSERT_TRUE(g.AddInteraction(4, 0).ok());
  auto queries = g.QueriesOfItem(0);
  ASSERT_EQ(queries.size(), 3u);
  EXPECT_EQ(queries[0], 1u);
  EXPECT_EQ(queries[1], 3u);
  EXPECT_EQ(queries[2], 4u);
}

TEST(BipartiteGraphTest, QueriesOfItemDeduplicated) {
  BipartiteGraph g(3, 1);
  ASSERT_TRUE(g.AddInteraction(2, 0).ok());
  ASSERT_TRUE(g.AddInteraction(2, 0).ok());
  EXPECT_EQ(g.QueriesOfItem(0).size(), 1u);
}

TEST(BipartiteGraphTest, MultipleItemsPerQuery) {
  BipartiteGraph g(1, 3);
  ASSERT_TRUE(g.AddInteraction(0, 0).ok());
  ASSERT_TRUE(g.AddInteraction(0, 1).ok());
  ASSERT_TRUE(g.AddInteraction(0, 2).ok());
  EXPECT_EQ(g.LeftNeighbors(0).size(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

}  // namespace
}  // namespace shoal::graph
