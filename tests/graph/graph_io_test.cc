#include "graph/graph_io.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/tsv.h"

namespace shoal::graph {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: parallel ctest processes must not share a
    // directory that TearDown deletes.
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_graph_io_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, RoundTripPreservesGraph) {
  auto generated = GenerateErdosRenyi(40, 0.2, 5);
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(SaveGraphTsv(*generated, Path("g.tsv")).ok());
  auto loaded = LoadGraphTsv(Path("g.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), generated->num_vertices());
  EXPECT_EQ(loaded->num_edges(), generated->num_edges());
  for (const auto& e : generated->AllEdges()) {
    EXPECT_NEAR(loaded->EdgeWeight(e.u, e.v), e.weight, 1e-9);
  }
}

TEST_F(GraphIoTest, EmptyGraphRoundTrip) {
  WeightedGraph g(7);
  ASSERT_TRUE(SaveGraphTsv(g, Path("empty.tsv")).ok());
  auto loaded = LoadGraphTsv(Path("empty.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), 7u);
  EXPECT_EQ(loaded->num_edges(), 0u);
}

TEST_F(GraphIoTest, MissingFileFails) {
  EXPECT_EQ(LoadGraphTsv(Path("nope.tsv")).status().code(),
            util::StatusCode::kIoError);
}

TEST_F(GraphIoTest, MissingHeaderRejected) {
  ASSERT_TRUE(util::WriteTextFile(Path("raw.tsv"), "0\t1\t0.5\n").ok());
  EXPECT_EQ(LoadGraphTsv(Path("raw.tsv")).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, MalformedRowRejected) {
  ASSERT_TRUE(util::WriteTextFile(Path("bad.tsv"),
                                  "# shoal-graph v1 vertices=3\n0\t1\n")
                  .ok());
  EXPECT_FALSE(LoadGraphTsv(Path("bad.tsv")).ok());
}

TEST_F(GraphIoTest, OutOfRangeEdgeRejected) {
  ASSERT_TRUE(util::WriteTextFile(Path("oob.tsv"),
                                  "# shoal-graph v1 vertices=2\n0\t5\t0.5\n")
                  .ok());
  EXPECT_FALSE(LoadGraphTsv(Path("oob.tsv")).ok());
}

}  // namespace
}  // namespace shoal::graph
