#include "graph/weighted_graph.h"

#include <gtest/gtest.h>

namespace shoal::graph {
namespace {

TEST(WeightedGraphTest, EmptyGraph) {
  WeightedGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.TotalEdgeWeight(), 0.0);
}

TEST(WeightedGraphTest, AddEdgeBasics) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 0.5);
}

TEST(WeightedGraphTest, MissingEdgeWeightIsZero) {
  // Matches the paper's Eq. 4 convention: S = 0 when unavailable.
  WeightedGraph g(3);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 99), 0.0);
}

TEST(WeightedGraphTest, SelfLoopRejected) {
  WeightedGraph g(2);
  auto status = g.AddEdge(1, 1, 0.5);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(WeightedGraphTest, OutOfRangeRejected) {
  WeightedGraph g(2);
  EXPECT_EQ(g.AddEdge(0, 5, 0.5).code(), util::StatusCode::kOutOfRange);
}

TEST(WeightedGraphTest, DuplicateEdgeRejected) {
  WeightedGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_EQ(g.AddEdge(1, 0, 0.7).code(), util::StatusCode::kAlreadyExists);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.5);
}

TEST(WeightedGraphTest, AddOrUpdateOverwrites) {
  WeightedGraph g(2);
  ASSERT_TRUE(g.AddOrUpdateEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddOrUpdateEdge(1, 0, 0.8).ok());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 0.8);
  EXPECT_DOUBLE_EQ(g.TotalEdgeWeight(), 0.8);
  // Adjacency list weight must be updated too.
  EXPECT_DOUBLE_EQ(g.Neighbors(0)[0].weight, 0.8);
}

TEST(WeightedGraphTest, DegreesTrackEdges) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.25).ok());
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 0.75);
  EXPECT_DOUBLE_EQ(g.TotalEdgeWeight(), 0.75);
}

TEST(WeightedGraphTest, NeighborsSymmetric) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  ASSERT_EQ(g.Neighbors(0).size(), 1u);
  ASSERT_EQ(g.Neighbors(2).size(), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].to, 2u);
  EXPECT_EQ(g.Neighbors(2)[0].to, 0u);
}

TEST(WeightedGraphTest, ResizeGrowsOnly) {
  WeightedGraph g(2);
  g.Resize(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  g.Resize(1);
  EXPECT_EQ(g.num_vertices(), 5u);
}

TEST(WeightedGraphTest, SparsifyRemovesWeakEdges) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.4).ok());
  size_t removed = g.SparsifyBelow(0.35);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_DOUBLE_EQ(g.TotalEdgeWeight(), 1.3);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 0.9);
  EXPECT_EQ(g.Neighbors(1).size(), 1u);
}

TEST(WeightedGraphTest, AllEdgesReportsEachOnce) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.1).ok());
  ASSERT_TRUE(g.AddEdge(2, 1, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(3, 0, 0.3).ok());
  auto edges = g.AllEdges();
  EXPECT_EQ(edges.size(), 3u);
  for (const auto& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(WeightedGraphTest, LargeIdsViaKeyPacking) {
  WeightedGraph g(100000);
  ASSERT_TRUE(g.AddEdge(99998, 99999, 0.5).ok());
  EXPECT_TRUE(g.HasEdge(99999, 99998));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(99998, 99999), 0.5);
}

}  // namespace
}  // namespace shoal::graph
