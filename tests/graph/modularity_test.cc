#include "graph/modularity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace shoal::graph {
namespace {

TEST(ModularityTest, SizeMismatchRejected) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  auto result = Modularity(g, {0, 1});
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ModularityTest, EdgelessGraphRejected) {
  WeightedGraph g(3);
  auto result = Modularity(g, {0, 1, 2});
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(ModularityTest, SingleCommunityIsZero) {
  // With everything in one community, Q = 1 - 1 = 0 by definition.
  WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  auto q = Modularity(g, {0, 0, 0, 0});
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value(), 0.0, 1e-12);
}

TEST(ModularityTest, TwoCliquesWithBridge) {
  // Classic example: two triangles joined by one edge. Putting each
  // triangle in its own community gives Q = 10/49 ~ 0.357 - 1/7... use
  // exact computation: m=7, within each community in_c = 6 edges-halves
  // -> Q = (6/14 + 6/14) - ((7/14)^2 + (7/14)^2) = 6/7 - 1/2 = 0.357...
  WeightedGraph g(6);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(4, 5, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 5, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  auto q = Modularity(g, {0, 0, 0, 1, 1, 1});
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value(), 6.0 / 7.0 - 0.5, 1e-12);
}

TEST(ModularityTest, SingletonCommunitiesNegative) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  auto q = Modularity(g, {0, 1, 2, 3});
  ASSERT_TRUE(q.ok());
  EXPECT_LT(q.value(), 0.0);
}

TEST(ModularityTest, GroundTruthOnPlantedPartitionExceedsPointThree) {
  // The paper's acceptance bar: clusters with modularity > 0.3.
  PlantedPartitionOptions options;
  options.num_vertices = 300;
  options.num_clusters = 6;
  options.p_in = 0.3;
  options.p_out = 0.01;
  auto planted = GeneratePlantedPartition(options);
  ASSERT_TRUE(planted.ok());
  auto q = Modularity(planted->graph, planted->ground_truth);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q.value(), 0.3);
}

TEST(ModularityTest, GroundTruthBeatsRandomLabels) {
  PlantedPartitionOptions options;
  options.num_vertices = 200;
  options.num_clusters = 5;
  auto planted = GeneratePlantedPartition(options);
  ASSERT_TRUE(planted.ok());
  auto q_truth = Modularity(planted->graph, planted->ground_truth);
  ASSERT_TRUE(q_truth.ok());
  std::vector<uint32_t> random_labels(options.num_vertices);
  util::Rng rng(1);
  for (auto& l : random_labels) {
    l = static_cast<uint32_t>(rng.Uniform(options.num_clusters));
  }
  auto q_random = Modularity(planted->graph, random_labels);
  ASSERT_TRUE(q_random.ok());
  EXPECT_GT(q_truth.value(), q_random.value() + 0.2);
}

TEST(ModularityTest, WeightedEdgesRespected) {
  // Two pairs; the heavy edge dominates the partition quality.
  WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.1).ok());
  auto q_good = Modularity(g, {0, 0, 1, 1});
  auto q_bad = Modularity(g, {0, 1, 0, 1});
  ASSERT_TRUE(q_good.ok());
  ASSERT_TRUE(q_bad.ok());
  EXPECT_GT(q_good.value(), q_bad.value());
  EXPECT_GT(q_good.value(), 0.4);
}

TEST(ModularityTest, BoundedAboveByOne) {
  PlantedPartitionOptions options;
  options.num_vertices = 100;
  options.num_clusters = 4;
  auto planted = GeneratePlantedPartition(options);
  ASSERT_TRUE(planted.ok());
  auto q = Modularity(planted->graph, planted->ground_truth);
  ASSERT_TRUE(q.ok());
  EXPECT_LE(q.value(), 1.0);
  EXPECT_GE(q.value(), -0.5);
}

}  // namespace
}  // namespace shoal::graph
