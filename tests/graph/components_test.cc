#include "graph/components.h"

#include <gtest/gtest.h>

namespace shoal::graph {
namespace {

TEST(ConnectedComponentsTest, IsolatedVertices) {
  WeightedGraph g(3);
  size_t count = 0;
  auto labels = ConnectedComponents(g, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 2u);
}

TEST(ConnectedComponentsTest, SingleComponent) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  size_t count = 0;
  auto labels = ConnectedComponents(g, &count);
  EXPECT_EQ(count, 1u);
  for (uint32_t l : labels) EXPECT_EQ(l, 0u);
}

TEST(ConnectedComponentsTest, TwoComponents) {
  WeightedGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 1.0).ok());
  size_t count = 0;
  auto labels = ConnectedComponents(g, &count);
  EXPECT_EQ(count, 3u);  // {0,1}, {2}, {3,4}
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[2], labels[3]);
}

TEST(ConnectedComponentsTest, NullCountPointerOk) {
  WeightedGraph g(2);
  auto labels = ConnectedComponents(g);
  EXPECT_EQ(labels.size(), 2u);
}

TEST(UnionFindTest, InitiallyDisjoint) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_components(), 4u);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_TRUE(uf.Connected(2, 2));
}

TEST(UnionFindTest, UnionConnects) {
  UnionFind uf(4);
  uf.Union(0, 1);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_EQ(uf.num_components(), 3u);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_components(), 2u);
}

TEST(UnionFindTest, RedundantUnionIsNoop) {
  UnionFind uf(3);
  uint32_t r1 = uf.Union(0, 1);
  uint32_t r2 = uf.Union(1, 0);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(uf.num_components(), 2u);
}

TEST(UnionFindTest, ComponentSizeTracked) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(1, 2);
  EXPECT_EQ(uf.ComponentSize(0), 3u);
  EXPECT_EQ(uf.ComponentSize(2), 3u);
  EXPECT_EQ(uf.ComponentSize(4), 1u);
}

TEST(UnionFindTest, ChainCollapses) {
  UnionFind uf(100);
  for (uint32_t i = 0; i + 1 < 100; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_components(), 1u);
  EXPECT_TRUE(uf.Connected(0, 99));
  EXPECT_EQ(uf.ComponentSize(50), 100u);
}

}  // namespace
}  // namespace shoal::graph
