#include "graph/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/components.h"

namespace shoal::graph {
namespace {

TEST(PlantedPartitionTest, ValidatesArguments) {
  PlantedPartitionOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(GeneratePlantedPartition(options).ok());
  options.num_clusters = 10;
  options.num_vertices = 5;
  EXPECT_FALSE(GeneratePlantedPartition(options).ok());
  options = PlantedPartitionOptions{};
  options.p_in = 1.5;
  EXPECT_FALSE(GeneratePlantedPartition(options).ok());
}

TEST(PlantedPartitionTest, GroundTruthCoversAllClusters) {
  PlantedPartitionOptions options;
  options.num_vertices = 50;
  options.num_clusters = 5;
  auto result = GeneratePlantedPartition(options);
  ASSERT_TRUE(result.ok());
  std::vector<int> seen(5, 0);
  for (uint32_t label : result->ground_truth) {
    ASSERT_LT(label, 5u);
    ++seen[label];
  }
  for (int count : seen) EXPECT_EQ(count, 10);
}

TEST(PlantedPartitionTest, IntraHeavierThanInter) {
  PlantedPartitionOptions options;
  options.num_vertices = 200;
  options.num_clusters = 4;
  auto result = GeneratePlantedPartition(options);
  ASSERT_TRUE(result.ok());
  double intra_sum = 0.0;
  size_t intra_n = 0;
  double inter_sum = 0.0;
  size_t inter_n = 0;
  for (const auto& e : result->graph.AllEdges()) {
    if (result->ground_truth[e.u] == result->ground_truth[e.v]) {
      intra_sum += e.weight;
      ++intra_n;
    } else {
      inter_sum += e.weight;
      ++inter_n;
    }
  }
  ASSERT_GT(intra_n, 0u);
  ASSERT_GT(inter_n, 0u);
  EXPECT_GT(intra_sum / intra_n, inter_sum / inter_n + 0.3);
  // Density check: intra probability is 30x the inter probability.
  EXPECT_GT(intra_n, inter_n);
}

TEST(PlantedPartitionTest, DeterministicForSeed) {
  PlantedPartitionOptions options;
  options.num_vertices = 60;
  options.seed = 77;
  auto a = GeneratePlantedPartition(options);
  auto b = GeneratePlantedPartition(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.num_edges(), b->graph.num_edges());
  auto edges_a = a->graph.AllEdges();
  auto edges_b = b->graph.AllEdges();
  for (size_t i = 0; i < edges_a.size(); ++i) {
    EXPECT_EQ(edges_a[i].u, edges_b[i].u);
    EXPECT_EQ(edges_a[i].v, edges_b[i].v);
    EXPECT_EQ(edges_a[i].weight, edges_b[i].weight);
  }
}

TEST(PlantedPartitionTest, WeightsWithinUnitInterval) {
  PlantedPartitionOptions options;
  options.num_vertices = 100;
  auto result = GeneratePlantedPartition(options);
  ASSERT_TRUE(result.ok());
  for (const auto& e : result->graph.AllEdges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.0);
  }
}

TEST(ErdosRenyiTest, ValidatesProbability) {
  EXPECT_FALSE(GenerateErdosRenyi(10, -0.1, 1).ok());
  EXPECT_FALSE(GenerateErdosRenyi(10, 1.1, 1).ok());
}

TEST(ErdosRenyiTest, ZeroProbabilityEmpty) {
  auto g = GenerateErdosRenyi(10, 0.0, 1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  const size_t n = 200;
  const double p = 0.1;
  auto g = GenerateErdosRenyi(n, p, 3);
  ASSERT_TRUE(g.ok());
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g->num_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  auto a = GenerateErdosRenyi(50, 0.2, 9);
  auto b = GenerateErdosRenyi(50, 0.2, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_edges(), b->num_edges());
}

TEST(PathGraphTest, StructureAndWeights) {
  WeightedGraph g = GeneratePath(5, 0.7);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(3, 4));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 0.7);
  size_t count = 0;
  ConnectedComponents(g, &count);
  EXPECT_EQ(count, 1u);
}

TEST(PathGraphTest, DegenerateSizes) {
  EXPECT_EQ(GeneratePath(0).num_edges(), 0u);
  EXPECT_EQ(GeneratePath(1).num_edges(), 0u);
}

}  // namespace
}  // namespace shoal::graph
