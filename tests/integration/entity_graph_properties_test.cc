// Property sweep over the entity-graph builder (Sec 2.1): for a grid of
// alpha / sparsification-threshold / click-density settings, the
// invariants of the similarity graph must hold, and the graph must
// separate planted intents (intra-intent edges heavier than
// cross-intent ones).

#include <gtest/gtest.h>

#include "core/entity_graph.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "text/word2vec.h"
#include "util/stats.h"

namespace shoal::core {
namespace {

struct GraphCase {
  double alpha;
  double threshold;
  size_t clicks_per_entity;
};

std::string CaseName(const ::testing::TestParamInfo<GraphCase>& info) {
  return "a" + std::to_string(static_cast<int>(info.param.alpha * 100)) +
         "_t" + std::to_string(static_cast<int>(info.param.threshold * 100)) +
         "_c" + std::to_string(info.param.clicks_per_entity);
}

class EntityGraphPropertyTest : public ::testing::TestWithParam<GraphCase> {
 protected:
  static constexpr size_t kEntities = 400;

  // One dataset + word2vec shared across the suite (they do not depend
  // on the swept parameters except click volume, keyed by density).
  struct Shared {
    data::Dataset dataset;
    data::ShoalInputBundle bundle;
    text::EmbeddingTable vectors;
  };

  static const Shared& SharedFor(size_t clicks_per_entity) {
    static std::map<size_t, Shared>* cache = new std::map<size_t, Shared>();
    auto it = cache->find(clicks_per_entity);
    if (it != cache->end()) return it->second;
    Shared shared;
    data::DatasetOptions options;
    options.num_entities = kEntities;
    options.num_queries = 300;
    options.num_clicks = kEntities * clicks_per_entity;
    options.seed = 7;
    auto dataset = data::GenerateDataset(options);
    EXPECT_TRUE(dataset.ok());
    shared.dataset = std::move(dataset).value();
    shared.bundle = data::MakeShoalInput(shared.dataset);
    auto corpus = data::BuildTrainingCorpus(shared.dataset);
    auto w2v = text::Word2Vec::Train(shared.dataset.lexicon.vocab(), corpus,
                                     text::Word2VecOptions{});
    EXPECT_TRUE(w2v.ok());
    shared.vectors = w2v->vectors();
    return cache->emplace(clicks_per_entity, std::move(shared))
        .first->second;
  }
};

TEST_P(EntityGraphPropertyTest, Invariants) {
  const GraphCase& c = GetParam();
  const Shared& shared = SharedFor(c.clicks_per_entity);

  EntityGraphOptions options;
  options.alpha = c.alpha;
  options.similarity_threshold = c.threshold;
  EntityGraphStats stats;
  auto graph =
      BuildEntityGraph(shared.bundle.query_item_graph,
                       shared.bundle.entity_title_words, shared.vectors,
                       options, &stats);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  // Invariant 1: every kept edge respects the sparsification threshold
  // and lies in [0, 1] (Eq. 3 of convex-combined similarities).
  for (const auto& e : graph->AllEdges()) {
    EXPECT_GE(e.weight, c.threshold);
    EXPECT_LE(e.weight, 1.0 + 1e-9);
  }

  // Invariant 2: stats account for the pipeline stages consistently.
  EXPECT_GE(stats.candidate_pairs, stats.kept_edges);
  EXPECT_EQ(stats.scored_pairs, stats.candidate_pairs);
  EXPECT_EQ(stats.kept_edges, graph->num_edges());

  // Invariant 3: edges only connect co-clicked entities.
  for (const auto& e : graph->AllEdges()) {
    auto qu = shared.bundle.query_item_graph.QueriesOfItem(e.u);
    auto qv = shared.bundle.query_item_graph.QueriesOfItem(e.v);
    std::vector<uint32_t> intersection;
    std::set_intersection(qu.begin(), qu.end(), qv.begin(), qv.end(),
                          std::back_inserter(intersection));
    EXPECT_FALSE(intersection.empty())
        << "edge (" << e.u << "," << e.v << ") without shared query";
  }
}

TEST_P(EntityGraphPropertyTest, IntraIntentEdgesHeavier) {
  const GraphCase& c = GetParam();
  const Shared& shared = SharedFor(c.clicks_per_entity);
  EntityGraphOptions options;
  options.alpha = c.alpha;
  options.similarity_threshold = 0.0;  // unsparsified view
  auto graph =
      BuildEntityGraph(shared.bundle.query_item_graph,
                       shared.bundle.entity_title_words, shared.vectors,
                       options);
  ASSERT_TRUE(graph.ok());
  util::RunningStats intra;
  util::RunningStats cross;
  for (const auto& e : graph->AllEdges()) {
    if (shared.dataset.entities[e.u].intent ==
        shared.dataset.entities[e.v].intent) {
      intra.Add(e.weight);
    } else {
      cross.Add(e.weight);
    }
  }
  ASSERT_GT(intra.count(), 0u);
  if (cross.count() > 10) {
    EXPECT_GT(intra.mean(), cross.mean())
        << "alpha=" << c.alpha << " fails to separate intents";
  }
}

TEST_P(EntityGraphPropertyTest, HigherThresholdNeverAddsEdges) {
  const GraphCase& c = GetParam();
  const Shared& shared = SharedFor(c.clicks_per_entity);
  EntityGraphOptions low;
  low.alpha = c.alpha;
  low.similarity_threshold = c.threshold;
  EntityGraphOptions high = low;
  high.similarity_threshold = c.threshold + 0.1;
  auto g_low = BuildEntityGraph(shared.bundle.query_item_graph,
                                shared.bundle.entity_title_words,
                                shared.vectors, low);
  auto g_high = BuildEntityGraph(shared.bundle.query_item_graph,
                                 shared.bundle.entity_title_words,
                                 shared.vectors, high);
  ASSERT_TRUE(g_low.ok());
  ASSERT_TRUE(g_high.ok());
  EXPECT_LE(g_high->num_edges(), g_low->num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EntityGraphPropertyTest,
    ::testing::Values(GraphCase{0.7, 0.35, 50}, GraphCase{0.7, 0.5, 50},
                      GraphCase{0.0, 0.35, 50}, GraphCase{1.0, 0.2, 50},
                      GraphCase{0.5, 0.35, 50}, GraphCase{0.7, 0.35, 20},
                      GraphCase{0.3, 0.25, 20}),
    CaseName);

}  // namespace
}  // namespace shoal::core
