// End-to-end integration tests: synthetic workload -> full SHOAL
// pipeline -> taxonomy, descriptions, correlations, search, and the
// evaluation harnesses on top.

#include <unordered_set>

#include <gtest/gtest.h>

#include "baselines/ontology_recommender.h"
#include "baselines/topic_recommender.h"
#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "eval/cluster_metrics.h"
#include "eval/ctr_sim.h"
#include "eval/precision_eval.h"
#include "graph/modularity.h"

namespace shoal {
namespace {

// One shared fixture build (the pipeline takes ~1s): gtest Environment
// semantics via a function-local static.
struct PipelineArtifacts {
  data::Dataset dataset;
  data::ShoalInputBundle bundle;
  core::ShoalModel model;
};

const PipelineArtifacts& Artifacts() {
  static PipelineArtifacts* artifacts = [] {
    auto* a = new PipelineArtifacts();
    data::DatasetOptions data_options;
    data_options.num_entities = 800;
    data_options.num_queries = 700;
    data_options.num_clicks = 40000;
    data_options.num_root_intents = 6;
    data_options.children_per_root = 2;
    data_options.seed = 4242;
    auto dataset = data::GenerateDataset(data_options);
    EXPECT_TRUE(dataset.ok());
    a->dataset = std::move(dataset).value();
    a->bundle = data::MakeShoalInput(a->dataset);
    core::ShoalOptions options;
    options.correlation.min_strength = 1;
    auto model = core::BuildShoal(a->bundle.View(), options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    a->model = std::move(model).value();
    return a;
  }();
  return *artifacts;
}

TEST(PipelineTest, RejectsNullInput) {
  core::ShoalInput input;  // all null
  EXPECT_FALSE(core::BuildShoal(input, core::ShoalOptions{}).ok());
}

TEST(PipelineTest, RejectsMismatchedMetadata) {
  const auto& a = Artifacts();
  core::ShoalInput input = a.bundle.View();
  std::vector<uint32_t> wrong_categories(3, 0);
  input.entity_categories = &wrong_categories;
  EXPECT_FALSE(core::BuildShoal(input, core::ShoalOptions{}).ok());
}

TEST(PipelineTest, ProducesNonTrivialTaxonomy) {
  const auto& a = Artifacts();
  const auto& taxonomy = a.model.taxonomy();
  EXPECT_GT(taxonomy.num_topics(), 10u);
  EXPECT_GT(taxonomy.roots().size(), 3u);
  // A healthy share of entities are placed in topics.
  size_t placed = 0;
  for (uint32_t e = 0; e < taxonomy.num_entities(); ++e) {
    if (taxonomy.TopicOfEntity(e) != core::kNoTopic) ++placed;
  }
  EXPECT_GT(placed, a.dataset.entities.size() / 2);
}

TEST(PipelineTest, TopicMembersAreMutuallyConsistent) {
  const auto& a = Artifacts();
  const auto& taxonomy = a.model.taxonomy();
  for (uint32_t t = 0; t < taxonomy.num_topics(); ++t) {
    const auto& topic = taxonomy.topic(t);
    // Children partition-refine the parent's members.
    for (uint32_t child : topic.children) {
      const auto& sub = taxonomy.topic(child);
      EXPECT_EQ(sub.parent, t);
      EXPECT_LT(sub.entities.size(), topic.entities.size() + 1);
    }
    // Category counts sum to the member count.
    size_t category_total = 0;
    for (const auto& [cat, count] : topic.categories) {
      (void)cat;
      category_total += count;
    }
    EXPECT_EQ(category_total, topic.entities.size());
  }
}

TEST(PipelineTest, ClustersScoreWellAgainstPlantedIntents) {
  const auto& a = Artifacts();
  auto predicted = a.model.taxonomy().RootLabels();
  auto truth = a.dataset.EntityIntentLabels();
  auto nmi = eval::NormalizedMutualInformation(predicted, truth);
  ASSERT_TRUE(nmi.ok());
  EXPECT_GT(nmi.value(), 0.5) << "taxonomy diverges from planted intents";
  auto purity = eval::Purity(predicted, truth);
  ASSERT_TRUE(purity.ok());
  EXPECT_GT(purity.value(), 0.7);
}

TEST(PipelineTest, EntityGraphClustersHavePaperModularity) {
  const auto& a = Artifacts();
  auto labels = a.model.taxonomy().RootLabels();
  auto q = graph::Modularity(a.model.entity_graph(), labels);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q.value(), 0.3);  // Sec 2.2's in-text claim
}

TEST(PipelineTest, ExpertPrecisionIsHigh) {
  const auto& a = Artifacts();
  eval::PrecisionEvalOptions options;
  options.topics_to_sample = 1000;
  options.items_per_topic = 100;
  auto result = eval::EvaluatePlacementPrecision(
      a.model.taxonomy(), a.dataset.EntityIntentLabels(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->precision, 0.85)
      << "paper reports 98% placement precision";
}

TEST(PipelineTest, DescriptionsExistForDescribedTopics) {
  const auto& a = Artifacts();
  const auto& taxonomy = a.model.taxonomy();
  size_t described = 0;
  for (uint32_t t = 0; t < taxonomy.num_topics(); ++t) {
    if (!taxonomy.topic(t).description.empty()) ++described;
  }
  EXPECT_GT(described, taxonomy.num_topics() / 2);
}

TEST(PipelineTest, DescriptionsComeFromTopicQueries) {
  // Every description string must be the text of a query that actually
  // interacted with the topic's items.
  const auto& a = Artifacts();
  const auto& taxonomy = a.model.taxonomy();
  const auto& qi = a.bundle.query_item_graph;
  for (uint32_t r : taxonomy.roots()) {
    const auto& topic = taxonomy.topic(r);
    std::unordered_set<std::string> topic_query_texts;
    for (uint32_t e : topic.entities) {
      for (const auto& link : qi.RightNeighbors(e)) {
        topic_query_texts.insert(a.bundle.query_texts[link.id]);
      }
    }
    for (const auto& description : topic.description) {
      EXPECT_TRUE(topic_query_texts.contains(description))
          << "description '" << description << "' alien to topic " << r;
    }
  }
}

TEST(PipelineTest, SearchFindsTopicsForPlantedIntentNames) {
  // Scenario A: searching a planted root-intent name should hit topics
  // whose members predominantly carry that scenario.
  const auto& a = Artifacts();
  size_t scored = 0;
  size_t aligned = 0;
  for (uint32_t root_intent : a.dataset.intents.roots()) {
    const std::string& name = a.dataset.intents.intent(root_intent).name;
    auto hits = a.model.SearchTopics(name, 1);
    if (hits.empty()) continue;
    ++scored;
    const auto& topic = a.model.taxonomy().topic(hits[0].topic);
    size_t matching = 0;
    for (uint32_t e : topic.entities) {
      if (a.dataset.intents.RootOf(a.dataset.entities[e].intent) ==
          root_intent) {
        ++matching;
      }
    }
    if (matching * 2 > topic.entities.size()) ++aligned;
  }
  ASSERT_GT(scored, 3u);
  EXPECT_GT(aligned * 10, scored * 7)
      << aligned << "/" << scored << " searches aligned";
}

TEST(PipelineTest, CorrelationsMostlyMatchPlantedStructure) {
  const auto& a = Artifacts();
  const auto& pairs = a.model.correlations().pairs();
  ASSERT_FALSE(pairs.empty());
  size_t true_positive = 0;
  for (const auto& pair : pairs) {
    if (a.dataset.CategoriesRelated(pair.c1, pair.c2)) ++true_positive;
  }
  EXPECT_GT(true_positive * 10, pairs.size() * 7)
      << true_positive << "/" << pairs.size() << " correlations planted";
}

TEST(PipelineTest, AbTestShowsPositiveModestLift) {
  const auto& a = Artifacts();
  baselines::OntologyRecommender control(a.dataset.ontology,
                                         a.bundle.entity_categories);
  baselines::TopicRecommender treatment(a.model.taxonomy(), &control);
  std::vector<uint32_t> intent_roots(a.dataset.intents.size());
  for (uint32_t i = 0; i < a.dataset.intents.size(); ++i) {
    intent_roots[i] = a.dataset.intents.RootOf(i);
  }
  eval::CtrSimOptions options;
  options.num_sessions = 8000;
  auto result = eval::RunCtrSimulation(
      control, treatment, a.dataset.EntityIntentLabels(),
      a.bundle.entity_categories, intent_roots, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->Lift(), 0.0) << "paper reports +5% CTR";
  EXPECT_LT(result->Lift(), 0.6) << "lift implausibly large";
}

TEST(PipelineTest, DeterministicEndToEnd) {
  // Rebuilding from the same dataset and options reproduces the same
  // root structure.
  const auto& a = Artifacts();
  core::ShoalOptions options;
  options.correlation.min_strength = 1;
  auto again = core::BuildShoal(a.bundle.View(), options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->taxonomy().num_topics(), a.model.taxonomy().num_topics());
  EXPECT_EQ(again->taxonomy().RootLabels(),
            a.model.taxonomy().RootLabels());
}

TEST(PipelineTest, StatsArePopulated) {
  const auto& a = Artifacts();
  const auto& stats = a.model.stats();
  EXPECT_GT(stats.entity_graph.kept_edges, 0u);
  EXPECT_GT(stats.hac.total_merges, 0u);
  EXPECT_GT(stats.hac.rounds, 0u);
  EXPECT_EQ(stats.num_topics, a.model.taxonomy().num_topics());
  EXPECT_EQ(stats.num_root_topics, a.model.taxonomy().roots().size());
}

}  // namespace
}  // namespace shoal
