// Crash-recovery contract (DESIGN.md §9): a run resumed from any
// checkpoint — in memory or from disk, at any thread or partition
// count — produces a dendrogram and taxonomy byte-identical to the
// uninterrupted run's.

#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/pipeline.h"
#include "ckpt/snapshot.h"
#include "core/parallel_hac.h"
#include "core/shoal.h"
#include "core/taxonomy_io.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "graph/generators.h"
#include "util/fault.h"
#include "util/tsv.h"

namespace shoal {
namespace {

using DendrogramImage =
    std::vector<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t,
                           double>>;

DendrogramImage DendrogramBytes(const core::Dendrogram& d) {
  DendrogramImage out;
  out.reserve(d.num_nodes());
  for (uint32_t i = 0; i < d.num_nodes(); ++i) {
    const auto& n = d.node(i);
    // Exact doubles: resumed runs must match bit-for-bit.
    out.emplace_back(n.id, n.parent, n.left, n.right, n.size,
                     n.merge_similarity);
  }
  return out;
}

graph::WeightedGraph TestGraph(uint64_t seed) {
  graph::PlantedPartitionOptions po;
  po.num_vertices = 200;
  po.num_clusters = 10;
  po.p_in = 0.45;
  po.p_out = 0.01;
  po.mu_in = 0.8;
  po.seed = seed;
  auto result = graph::GeneratePlantedPartition(po);
  EXPECT_TRUE(result.ok());
  return std::move(result->graph);
}

core::ParallelHacOptions BaseOptions() {
  core::ParallelHacOptions options;
  options.hac.threshold = 0.3;
  options.num_threads = 2;
  options.num_partitions = 4;
  return options;
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Global().Reset();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_ckpt_resume_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultInjector::Global().Reset();
    std::filesystem::remove_all(dir_);
  }

  std::string Dir(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

// The tentpole guarantee: resume from EVERY round's snapshot, across a
// thread/partition matrix, and require the identical dendrogram.
TEST_F(CheckpointResumeTest, ResumeFromEveryRoundIsByteIdentical) {
  auto graph = TestGraph(17);

  core::ParallelHacOptions options = BaseOptions();
  options.checkpoint_every = 1;
  std::vector<ckpt::HacSnapshotData> snapshots;
  options.checkpoint_hook = [&](const core::HacProgress& progress) {
    if (!progress.finished) {
      snapshots.push_back(ckpt::CaptureHacSnapshot(progress, options));
    }
    return util::Status::OK();
  };
  core::ParallelHacStats reference_stats;
  auto reference = core::ParallelHac(graph, options, &reference_stats);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const DendrogramImage reference_bytes = DendrogramBytes(*reference);
  ASSERT_GE(snapshots.size(), 3u) << "graph too easy: not enough rounds";

  core::ParallelHacOptions resume_options = BaseOptions();
  for (const ckpt::HacSnapshotData& snapshot : snapshots) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      for (size_t partitions : {1u, 13u}) {
        resume_options.num_threads = threads;
        resume_options.num_partitions = partitions;
        auto state = ckpt::RestoreHacState(snapshot, resume_options);
        ASSERT_TRUE(state.ok()) << state.status().ToString();
        core::ParallelHacStats stats;
        auto resumed = core::ResumeParallelHac(
            resume_options, std::move(state).value(), &stats);
        ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
        EXPECT_EQ(DendrogramBytes(*resumed), reference_bytes)
            << "round=" << snapshot.rounds_done << " threads=" << threads
            << " partitions=" << partitions;
        // The resumed run's cumulative stats match the uninterrupted
        // run's (merge trace included) — they describe the same
        // logical execution.
        EXPECT_EQ(stats.rounds, reference_stats.rounds);
        EXPECT_EQ(stats.total_merges, reference_stats.total_merges);
        EXPECT_EQ(stats.merges_per_round, reference_stats.merges_per_round);
      }
    }
  }
}

// An injected abort mid-run, snapshots committed to disk, recovery via
// LoadCheckpoint: the disk round-trip must preserve identity too.
TEST_F(CheckpointResumeTest, AbortThenDiskResumeIsByteIdentical) {
  auto graph = TestGraph(29);

  core::ParallelHacOptions options = BaseOptions();
  auto uninterrupted = core::ParallelHac(graph, options);
  ASSERT_TRUE(uninterrupted.ok());
  const DendrogramImage reference_bytes = DendrogramBytes(*uninterrupted);

  const std::string dir = Dir("hac_ckpt");
  {
    auto opened = ckpt::CheckpointWriter::Open(dir, /*resume=*/false);
    ASSERT_TRUE(opened.ok());
    auto writer = std::make_shared<ckpt::CheckpointWriter>(
        std::move(opened).value());
    core::ParallelHacOptions crashing = options;
    crashing.checkpoint_every = 2;
    crashing.checkpoint_hook = [writer, &options](
                                   const core::HacProgress& progress) {
      return writer->WriteHacSnapshot(
          ckpt::CaptureHacSnapshot(progress, options));
    };
    ASSERT_TRUE(
        util::FaultInjector::Global().Configure("abort_at_round:5").ok());
    auto crashed = core::ParallelHac(graph, crashing);
    util::FaultInjector::Global().Reset();
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), util::StatusCode::kInternal);
  }

  auto loaded = ckpt::LoadCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->hac.has_value());
  EXPECT_EQ(loaded->hac->rounds_done, 4u);
  auto state = ckpt::RestoreHacState(*loaded->hac, options);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  auto resumed =
      core::ResumeParallelHac(options, std::move(state).value());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(DendrogramBytes(*resumed), reference_bytes);
}

TEST_F(CheckpointResumeTest, ResumeRejectsMismatchedThreshold) {
  auto graph = TestGraph(31);
  core::ParallelHacOptions options = BaseOptions();
  options.checkpoint_every = 1;
  std::vector<ckpt::HacSnapshotData> snapshots;
  options.checkpoint_hook = [&](const core::HacProgress& progress) {
    snapshots.push_back(ckpt::CaptureHacSnapshot(progress, options));
    return util::Status::OK();
  };
  ASSERT_TRUE(core::ParallelHac(graph, options).ok());
  ASSERT_FALSE(snapshots.empty());

  core::ParallelHacOptions other = BaseOptions();
  other.hac.threshold = 0.5;
  EXPECT_EQ(ckpt::RestoreHacState(snapshots.front(), other).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(CheckpointResumeTest, FailingHookAbortsTheRun) {
  auto graph = TestGraph(37);
  core::ParallelHacOptions options = BaseOptions();
  options.checkpoint_every = 1;
  options.checkpoint_hook = [](const core::HacProgress&) {
    return util::Status::IoError("disk full");
  };
  auto result = core::ParallelHac(graph, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIoError);
}

// Full pipeline: interrupted checkpointed build -> ResumeShoal -> the
// persisted taxonomy artefacts are byte-identical to the uninterrupted
// build's (the same comparison the CI crash-recovery smoke job makes
// after a real SIGKILL-style _Exit).
TEST_F(CheckpointResumeTest, PipelineAbortResumeProducesIdenticalArtefacts) {
  data::DatasetOptions data_options;
  data_options.num_entities = 400;
  data_options.num_queries = 350;
  data_options.num_clicks = 20000;
  data_options.seed = 99;
  auto dataset = data::GenerateDataset(data_options);
  ASSERT_TRUE(dataset.ok());
  auto bundle = data::MakeShoalInput(*dataset);

  core::ShoalOptions options;
  options.correlation.min_strength = 1;
  options.num_threads = 2;

  auto reference = core::BuildShoal(bundle.View(), options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string ref_dir = Dir("tax_ref");
  ASSERT_TRUE(core::SaveTaxonomy(reference->taxonomy(),
                                 reference->correlations(), ref_dir)
                  .ok());

  const std::string ckpt_dir = Dir("ckpt");
  {
    core::ShoalOptions crashing = options;
    ASSERT_TRUE(ckpt::AttachCheckpointing(ckpt_dir, /*checkpoint_every=*/2,
                                          /*resume=*/false, crashing)
                    .ok());
    ASSERT_TRUE(
        util::FaultInjector::Global().Configure("abort_at_round:5").ok());
    auto crashed = core::BuildShoal(bundle.View(), crashing);
    util::FaultInjector::Global().Reset();
    ASSERT_FALSE(crashed.ok());
  }

  // Resume at a different thread count; downstream stages re-run.
  core::ShoalOptions resume_options = options;
  resume_options.num_threads = 4;
  auto resumed = ckpt::ResumeShoal(bundle.View(), resume_options, ckpt_dir,
                                   /*checkpoint_every=*/2);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(DendrogramBytes(resumed->dendrogram()),
            DendrogramBytes(reference->dendrogram()));

  const std::string resumed_dir = Dir("tax_resumed");
  ASSERT_TRUE(core::SaveTaxonomy(resumed->taxonomy(),
                                 resumed->correlations(), resumed_dir)
                  .ok());
  for (const auto& entry : std::filesystem::directory_iterator(ref_dir)) {
    const std::string name = entry.path().filename().string();
    auto ref_bytes = util::ReadTextFile((entry.path()).string());
    auto res_bytes = util::ReadTextFile(
        (std::filesystem::path(resumed_dir) / name).string());
    ASSERT_TRUE(ref_bytes.ok());
    ASSERT_TRUE(res_bytes.ok()) << name << " missing from resumed build";
    EXPECT_EQ(ref_bytes.value(), res_bytes.value()) << name;
  }
}

// A crash after HAC finished resumes without redoing HAC (the finished
// snapshot short-circuits the round loop) and still matches.
TEST_F(CheckpointResumeTest, ResumeAfterHacFinishedSkipsRecomputation) {
  data::DatasetOptions data_options;
  data_options.num_entities = 300;
  data_options.num_queries = 250;
  data_options.num_clicks = 15000;
  data_options.seed = 7;
  auto dataset = data::GenerateDataset(data_options);
  ASSERT_TRUE(dataset.ok());
  auto bundle = data::MakeShoalInput(*dataset);

  core::ShoalOptions options;
  options.correlation.min_strength = 1;
  auto reference = core::BuildShoal(bundle.View(), options);
  ASSERT_TRUE(reference.ok());

  const std::string ckpt_dir = Dir("ckpt");
  {
    core::ShoalOptions crashing = options;
    ASSERT_TRUE(ckpt::AttachCheckpointing(ckpt_dir, 50, false, crashing)
                    .ok());
    // Fail right after the taxonomy stage: HAC state is already
    // committed with finished=true.
    ASSERT_TRUE(util::FaultInjector::Global()
                    .Configure("abort_at_stage:taxonomy")
                    .ok());
    auto crashed = core::BuildShoal(bundle.View(), crashing);
    util::FaultInjector::Global().Reset();
    ASSERT_FALSE(crashed.ok());
  }

  auto loaded = ckpt::LoadCheckpoint(ckpt_dir);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->hac.has_value());
  EXPECT_TRUE(loaded->hac->finished);

  auto resumed = ckpt::ResumeShoal(bundle.View(), options, ckpt_dir, 50);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(DendrogramBytes(resumed->dendrogram()),
            DendrogramBytes(reference->dendrogram()));
  // No rounds were re-run: the resumed stats still record the full
  // original trace, not a re-execution.
  EXPECT_EQ(resumed->stats().hac.rounds, reference->stats().hac.rounds);
}

}  // namespace
}  // namespace shoal
