// Failure-injection / fuzz-lite tests: the parsing and loading surfaces
// must reject arbitrary malformed input with a Status — never crash,
// never accept garbage silently.

#include <cctype>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/taxonomy_io.h"
#include "data/log_io.h"
#include "graph/graph_io.h"
#include "text/text_io.h"
#include "text/tokenizer.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/tsv.h"

namespace shoal {
namespace {

std::string RandomBytes(util::Rng& rng, size_t max_len) {
  size_t len = rng.Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.Uniform(256)));
  }
  return out;
}

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs each case as its own process in
    // parallel, so a shared directory would let one case's TearDown
    // delete another's files mid-write.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_robustness_") + info->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(RobustnessTest, TokenizerNeverCrashesAndEmitsCleanTokens) {
  util::Rng rng(404);
  for (int round = 0; round < 500; ++round) {
    std::string input = RandomBytes(rng, 200);
    auto tokens = text::Tokenize(input);
    for (const std::string& token : tokens) {
      ASSERT_FALSE(token.empty());
      for (char c : token) {
        ASSERT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
        ASSERT_FALSE(std::isupper(static_cast<unsigned char>(c)));
      }
    }
  }
}

TEST_F(RobustnessTest, GraphLoaderSurvivesGarbage) {
  util::Rng rng(405);
  for (int round = 0; round < 50; ++round) {
    std::string garbage = RandomBytes(rng, 400);
    ASSERT_TRUE(util::WriteTextFile(Path("garbage.tsv"), garbage).ok());
    auto result = graph::LoadGraphTsv(Path("garbage.tsv"));
    // Either a valid (likely empty) graph from a coincidentally-valid
    // header, or a clean error. Never a crash.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_F(RobustnessTest, EmbeddingsLoaderSurvivesGarbage) {
  util::Rng rng(406);
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(
        util::WriteTextFile(Path("vec.tsv"), RandomBytes(rng, 400)).ok());
    auto result = text::LoadEmbeddings(Path("vec.tsv"));
    (void)result.ok();
  }
}

TEST_F(RobustnessTest, VocabularyLoaderSurvivesGarbage) {
  util::Rng rng(407);
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(
        util::WriteTextFile(Path("vocab.tsv"), RandomBytes(rng, 400)).ok());
    auto result = text::LoadVocabulary(Path("vocab.tsv"));
    (void)result.ok();
  }
}

TEST_F(RobustnessTest, TaxonomyLoaderSurvivesGarbageDirectory) {
  util::Rng rng(408);
  for (const char* file : {"topics.tsv", "members.tsv", "categories.tsv",
                           "descriptions.tsv", "correlations.tsv"}) {
    ASSERT_TRUE(util::WriteTextFile(Path(file), RandomBytes(rng, 300)).ok());
  }
  auto result = core::LoadTaxonomy(dir_.string());
  // Random bytes virtually never form a valid bundle; a clean error is
  // required either way.
  if (!result.ok()) {
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST_F(RobustnessTest, SearchLogImportSurvivesGarbageDirectory) {
  util::Rng rng(409);
  for (const char* file : {"items.tsv", "queries.tsv", "clicks.tsv"}) {
    ASSERT_TRUE(util::WriteTextFile(Path(file), RandomBytes(rng, 300)).ok());
  }
  auto result = data::ImportSearchLog(dir_.string());
  (void)result.ok();
}

TEST_F(RobustnessTest, FlagParserSurvivesRandomArgv) {
  util::Rng rng(410);
  for (int round = 0; round < 200; ++round) {
    util::FlagParser flags;
    flags.AddInt64("n", 1, "count");
    flags.AddDouble("x", 0.5, "value");
    flags.AddBool("b", false, "flag");
    flags.AddString("s", "", "text");
    std::vector<std::string> storage;
    storage.push_back("prog");
    size_t argc = 1 + rng.Uniform(6);
    for (size_t i = 1; i < argc; ++i) {
      // Printable-ish random arguments with a bias toward flag shapes.
      std::string arg = rng.Bernoulli(0.5) ? "--" : "";
      size_t len = rng.Uniform(12);
      for (size_t c = 0; c < len; ++c) {
        arg.push_back(static_cast<char>(33 + rng.Uniform(94)));
      }
      storage.push_back(std::move(arg));
    }
    std::vector<char*> argv;
    for (auto& s : storage) argv.push_back(s.data());
    auto status = flags.Parse(static_cast<int>(argv.size()), argv.data());
    (void)status.ok();  // must simply not crash
  }
}

TEST_F(RobustnessTest, TruncatedTaxonomyBundleFailsCleanly) {
  // A valid save with one file deleted must produce an IoError, not UB.
  core::Dendrogram d(4);
  uint32_t m01 = d.Merge(0, 1, 0.9).value();
  (void)d.Merge(m01, 2, 0.8).value();
  core::TaxonomyOptions options;
  options.min_topic_size = 2;
  options.min_root_size = 2;
  auto taxonomy = core::Taxonomy::Build(d, {1, 1, 2, 2}, options);
  auto correlations = core::CorrelationFromPairs({}).value();
  ASSERT_TRUE(core::SaveTaxonomy(taxonomy, correlations, dir_.string()).ok());
  std::filesystem::remove(Path("members.tsv"));
  auto result = core::LoadTaxonomy(dir_.string());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIoError);
}

}  // namespace
}  // namespace shoal
