// Property-based sweeps over both HAC implementations: for a grid of
// graph shapes, thresholds, linkage rules and diffusion settings, the
// invariants of hierarchical agglomerative clustering must hold.

#include <gtest/gtest.h>

#include "core/parallel_hac.h"
#include "core/sequential_hac.h"
#include "eval/cluster_metrics.h"
#include "graph/generators.h"
#include "graph/modularity.h"

namespace shoal::core {
namespace {

struct HacCase {
  size_t num_vertices;
  size_t num_clusters;
  double threshold;
  LinkageRule linkage;
  size_t diffusion_iterations;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<HacCase>& info) {
  const HacCase& c = info.param;
  return "n" + std::to_string(c.num_vertices) + "_k" +
         std::to_string(c.num_clusters) + "_t" +
         std::to_string(static_cast<int>(c.threshold * 100)) + "_" +
         LinkageRuleName(c.linkage) + "_d" +
         std::to_string(c.diffusion_iterations) + "_s" +
         std::to_string(c.seed);
}

class HacPropertyTest : public ::testing::TestWithParam<HacCase> {
 protected:
  graph::PlantedPartitionResult MakeGraph() const {
    const HacCase& c = GetParam();
    graph::PlantedPartitionOptions options;
    options.num_vertices = c.num_vertices;
    options.num_clusters = c.num_clusters;
    options.p_in = 0.35;
    options.p_out = 0.02;
    options.mu_in = 0.85;
    options.mu_out = 0.2;
    options.seed = c.seed;
    auto result = graph::GeneratePlantedPartition(options);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }
};

TEST_P(HacPropertyTest, ParallelHacInvariants) {
  const HacCase& c = GetParam();
  auto planted = MakeGraph();
  ParallelHacOptions options;
  options.hac.threshold = c.threshold;
  options.hac.linkage = c.linkage;
  options.diffusion_iterations = c.diffusion_iterations;
  options.num_partitions = 4;
  options.num_threads = 2;
  ParallelHacStats stats;
  auto d = ParallelHac(planted.graph, options, &stats);
  ASSERT_TRUE(d.ok());

  // Invariant 1: node count bookkeeping.
  EXPECT_EQ(d->num_nodes(), d->num_leaves() + stats.total_merges);

  // Invariant 2: every merge happened at or above the threshold.
  for (uint32_t n = static_cast<uint32_t>(d->num_leaves());
       n < d->num_nodes(); ++n) {
    EXPECT_GE(d->node(n).merge_similarity, c.threshold);
  }

  // Invariant 3: sizes are consistent (children sum to parent).
  for (uint32_t n = static_cast<uint32_t>(d->num_leaves());
       n < d->num_nodes(); ++n) {
    EXPECT_EQ(d->node(n).size,
              d->node(d->node(n).left).size +
                  d->node(d->node(n).right).size);
  }

  // Invariant 4: root sizes sum to the number of leaves (no vertex is
  // lost or duplicated).
  size_t total = 0;
  for (uint32_t root : d->Roots()) total += d->node(root).size;
  EXPECT_EQ(total, d->num_leaves());

  // Invariant 5: cluster labels form a valid partition.
  auto labels = d->FlatClusters();
  EXPECT_EQ(labels.size(), d->num_leaves());
}

TEST_P(HacPropertyTest, SequentialHacInvariants) {
  const HacCase& c = GetParam();
  auto planted = MakeGraph();
  HacOptions options;
  options.threshold = c.threshold;
  options.linkage = c.linkage;
  auto d = SequentialHac(planted.graph, options);
  ASSERT_TRUE(d.ok());
  for (uint32_t n = static_cast<uint32_t>(d->num_leaves());
       n < d->num_nodes(); ++n) {
    EXPECT_GE(d->node(n).merge_similarity, c.threshold);
    EXPECT_EQ(d->node(n).size,
              d->node(d->node(n).left).size +
                  d->node(d->node(n).right).size);
  }
}

TEST_P(HacPropertyTest, ParallelQualityTracksSequential) {
  // The paper's implicit claim: distributed merging matches exact greedy
  // HAC quality. Require parallel NMI within 0.15 of sequential NMI
  // against the planted partition, and modularity above the paper's 0.3
  // bar whenever the sequential baseline reaches it.
  const HacCase& c = GetParam();
  auto planted = MakeGraph();

  HacOptions seq_options;
  seq_options.threshold = c.threshold;
  seq_options.linkage = c.linkage;
  auto seq = SequentialHac(planted.graph, seq_options);
  ASSERT_TRUE(seq.ok());

  ParallelHacOptions par_options;
  par_options.hac = seq_options;
  par_options.diffusion_iterations = c.diffusion_iterations;
  auto par = ParallelHac(planted.graph, par_options);
  ASSERT_TRUE(par.ok());

  auto seq_nmi = eval::NormalizedMutualInformation(seq->FlatClusters(),
                                                   planted.ground_truth);
  auto par_nmi = eval::NormalizedMutualInformation(par->FlatClusters(),
                                                   planted.ground_truth);
  ASSERT_TRUE(seq_nmi.ok());
  ASSERT_TRUE(par_nmi.ok());
  EXPECT_GT(par_nmi.value(), seq_nmi.value() - 0.15)
      << "parallel " << par_nmi.value() << " vs sequential "
      << seq_nmi.value();

  auto seq_q =
      graph::Modularity(planted.graph, seq->FlatClusters());
  auto par_q =
      graph::Modularity(planted.graph, par->FlatClusters());
  ASSERT_TRUE(seq_q.ok());
  ASSERT_TRUE(par_q.ok());
  if (seq_q.value() > 0.3) {
    EXPECT_GT(par_q.value(), 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HacPropertyTest,
    ::testing::Values(
        HacCase{80, 4, 0.4, LinkageRule::kSqrtNormalized, 2, 1},
        HacCase{80, 4, 0.4, LinkageRule::kSqrtNormalized, 1, 1},
        HacCase{80, 4, 0.4, LinkageRule::kSqrtNormalized, 3, 1},
        HacCase{80, 4, 0.55, LinkageRule::kSqrtNormalized, 2, 2},
        HacCase{80, 4, 0.3, LinkageRule::kSqrtNormalized, 2, 3},
        HacCase{120, 6, 0.4, LinkageRule::kArithmeticMean, 2, 4},
        HacCase{120, 6, 0.4, LinkageRule::kMax, 2, 5},
        HacCase{120, 6, 0.4, LinkageRule::kMin, 2, 6},
        HacCase{150, 3, 0.45, LinkageRule::kSqrtNormalized, 2, 7},
        HacCase{60, 10, 0.4, LinkageRule::kSqrtNormalized, 2, 8}),
    CaseName);

}  // namespace
}  // namespace shoal::core
