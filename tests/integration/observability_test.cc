// Observability integration tests: run the full pipeline with tracing
// and metrics enabled and check (1) the taxonomy is byte-identical to an
// uninstrumented build at any thread count, (2) the trace carries at
// least one span per pipeline stage and per HAC round with sane
// nesting, and (3) the metrics registry agrees with the build stats.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace shoal {
namespace {

data::Dataset MakeDataset() {
  data::DatasetOptions options;
  options.num_entities = 600;
  options.num_queries = 500;
  options.num_clicks = 30000;
  options.num_root_intents = 5;
  options.children_per_root = 2;
  options.seed = 7;
  auto dataset = data::GenerateDataset(options);
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  return std::move(dataset).value();
}

core::ShoalModel Build(const data::ShoalInputBundle& bundle,
                       size_t num_threads) {
  core::ShoalOptions options;
  options.correlation.min_strength = 1;
  options.num_threads = num_threads;
  auto model = core::BuildShoal(bundle.View(), options);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

// The observable structure of a build, byte-comparable across runs.
struct Fingerprint {
  std::vector<uint32_t> root_labels;
  std::vector<graph::WeightedGraph::FullEdge> edges;
  size_t num_topics = 0;

  bool operator==(const Fingerprint& other) const {
    if (root_labels != other.root_labels) return false;
    if (num_topics != other.num_topics) return false;
    if (edges.size() != other.edges.size()) return false;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].u != other.edges[i].u || edges[i].v != other.edges[i].v ||
          edges[i].weight != other.edges[i].weight) {
        return false;
      }
    }
    return true;
  }
};

Fingerprint FingerprintOf(const core::ShoalModel& model) {
  Fingerprint fp;
  fp.root_labels = model.taxonomy().RootLabels();
  fp.edges = model.entity_graph().AllEdges();
  fp.num_topics = model.taxonomy().num_topics();
  return fp;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetObs(); }
  void TearDown() override { ResetObs(); }
  static void ResetObs() {
    obs::Tracer::Global().Disable();
    obs::Tracer::Global().Clear();
    obs::MetricsRegistry::Global().Disable();
    obs::MetricsRegistry::Global().Reset();
  }
};

TEST_F(ObservabilityTest, TaxonomyByteIdenticalWithTracingOnOrOff) {
  auto dataset = MakeDataset();
  auto bundle = data::MakeShoalInput(dataset);

  Fingerprint baseline = FingerprintOf(Build(bundle, /*num_threads=*/1));

  obs::Tracer::Global().Enable();
  obs::MetricsRegistry::Global().Enable();
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    Fingerprint traced = FingerprintOf(Build(bundle, threads));
    EXPECT_TRUE(traced == baseline)
        << "instrumented build diverged at " << threads << " threads";
  }
}

TEST_F(ObservabilityTest, TraceCoversEveryPipelineStageAndHacRound) {
  auto dataset = MakeDataset();
  auto bundle = data::MakeShoalInput(dataset);

  obs::Tracer::Global().Enable();
  auto model = Build(bundle, /*num_threads=*/2);
  auto events = obs::Tracer::Global().CollectEvents();

  std::map<std::string, size_t> by_name;
  for (const auto& e : events) ++by_name[e.name];
  for (const char* stage :
       {"shoal.build", "shoal.word2vec", "shoal.entity_graph", "shoal.hac",
        "shoal.taxonomy", "shoal.describe", "shoal.correlation",
        "shoal.search_index", "entity_graph.candidates",
        "entity_graph.scoring", "hac.diffusion", "hac.merge",
        "bsp.superstep"}) {
    EXPECT_GE(by_name[stage], 1u) << "no span named " << stage;
  }
  // One hac.round span per round (the final breaking round may add one).
  EXPECT_GE(by_name["hac.round"], model.stats().hac.rounds);
  EXPECT_LE(by_name["hac.round"], model.stats().hac.rounds + 1);

  // Nesting: the stage spans sit under shoal.build; hac.round sits under
  // shoal.hac. (All on the calling thread, so depths are comparable.)
  std::map<std::string, uint32_t> depth_of;
  for (const auto& e : events) {
    if (!depth_of.contains(e.name)) depth_of[e.name] = e.depth;
  }
  EXPECT_EQ(depth_of["shoal.build"], 0u);
  EXPECT_GT(depth_of["shoal.hac"], depth_of["shoal.build"]);
  EXPECT_GT(depth_of["hac.round"], depth_of["shoal.hac"]);
  EXPECT_GT(depth_of["hac.diffusion"], depth_of["hac.round"]);
}

TEST_F(ObservabilityTest, MetricsAgreeWithBuildStats) {
  auto dataset = MakeDataset();
  auto bundle = data::MakeShoalInput(dataset);

  obs::MetricsRegistry::Global().Enable();
  auto model = Build(bundle, /*num_threads=*/2);
  auto& registry = obs::MetricsRegistry::Global();

  EXPECT_EQ(registry.GetCounter("hac.rounds").value(),
            model.stats().hac.rounds);
  EXPECT_EQ(registry.GetCounter("hac.merges").value(),
            model.stats().hac.total_merges);
  EXPECT_EQ(registry.GetCounter("shoal.builds").value(), 1u);
  EXPECT_GT(registry.GetGauge("bsp.pool.peak_queue_depth").max(), 0.0);
  EXPECT_EQ(
      registry.GetHistogram("hac.round.merges").Snapshot().count,
      static_cast<size_t>(model.stats().hac.rounds));

  // The snapshot is parseable JSON carrying those names.
  auto parsed = util::JsonValue::Parse(registry.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_NE(parsed->Find("counters"), nullptr);
  EXPECT_NE(parsed->Find("counters")->Find("hac.rounds"), nullptr);
  ASSERT_NE(parsed->Find("gauges"), nullptr);
  EXPECT_NE(parsed->Find("gauges")->Find("bsp.pool.peak_queue_depth"),
            nullptr);
}

TEST_F(ObservabilityTest, BuildStatsJsonRoundTrips) {
  auto dataset = MakeDataset();
  auto bundle = data::MakeShoalInput(dataset);
  auto model = Build(bundle, /*num_threads=*/1);

  auto parsed = util::JsonValue::Parse(model.stats().ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue* hac = parsed->Find("hac");
  ASSERT_NE(hac, nullptr);
  EXPECT_DOUBLE_EQ(hac->Find("rounds")->number(),
                   static_cast<double>(model.stats().hac.rounds));
  const util::JsonValue* merges = hac->Find("merges_per_round");
  ASSERT_NE(merges, nullptr);
  ASSERT_TRUE(merges->is_array());
  EXPECT_EQ(merges->items().size(), model.stats().hac.merges_per_round.size());
  EXPECT_NE(parsed->Find("stage_seconds"), nullptr);
  EXPECT_NE(parsed->Find("entity_graph"), nullptr);
}

TEST_F(ObservabilityTest, DisabledObservabilityRecordsNothing) {
  auto dataset = MakeDataset();
  auto bundle = data::MakeShoalInput(dataset);
  (void)Build(bundle, /*num_threads=*/2);
  EXPECT_TRUE(obs::Tracer::Global().CollectEvents().empty());
  auto snapshot =
      util::JsonValue::Parse(obs::MetricsRegistry::Global().ToJsonString());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->Find("counters")->members().empty());
}

}  // namespace
}  // namespace shoal
