// Robustness matrix: the end-to-end pipeline must hit its quality bars
// across random seeds, not just the one the other tests use. Each case
// generates an independent workload and checks the paper's headline
// metrics at reduced scale.

#include <gtest/gtest.h>

#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "eval/cluster_metrics.h"
#include "eval/precision_eval.h"
#include "graph/modularity.h"

namespace shoal {
namespace {

class PipelineSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineSeedTest, QualityBarsHoldAcrossSeeds) {
  data::DatasetOptions data_options;
  data_options.num_entities = 600;
  data_options.num_queries = 450;
  data_options.num_clicks = 30000;
  data_options.num_root_intents = 5;
  data_options.children_per_root = 2;
  data_options.seed = GetParam();
  auto dataset = data::GenerateDataset(data_options);
  ASSERT_TRUE(dataset.ok());
  auto bundle = data::MakeShoalInput(*dataset);
  auto model = core::BuildShoal(bundle.View(), core::ShoalOptions{});
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  auto labels = model->taxonomy().RootLabels();
  auto truth = dataset->EntityIntentLabels();

  // Paper bar 1: modularity > 0.3 on the entity graph.
  auto modularity = graph::Modularity(model->entity_graph(), labels);
  ASSERT_TRUE(modularity.ok());
  EXPECT_GT(modularity.value(), 0.3) << "seed " << GetParam();

  // Paper bar 2: high placement precision under the expert protocol.
  eval::PrecisionEvalOptions precision_options;
  precision_options.topics_to_sample = 200;
  precision_options.items_per_topic = 50;
  auto precision = eval::EvaluatePlacementPrecision(model->taxonomy(),
                                                    truth,
                                                    precision_options);
  ASSERT_TRUE(precision.ok());
  EXPECT_GT(precision->precision, 0.9) << "seed " << GetParam();

  // Recovery of the planted structure.
  auto nmi = eval::NormalizedMutualInformation(labels, truth);
  ASSERT_TRUE(nmi.ok());
  EXPECT_GT(nmi.value(), 0.6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace shoal
