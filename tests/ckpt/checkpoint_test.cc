#include "ckpt/checkpoint.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "ckpt/snapshot.h"
#include "graph/weighted_graph.h"
#include "util/tsv.h"

namespace shoal::ckpt {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_checkpoint_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Dir() { return dir_.string(); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

graph::WeightedGraph SampleGraph() {
  graph::WeightedGraph graph(4);
  EXPECT_TRUE(graph.AddEdge(0, 1, 0.8).ok());
  EXPECT_TRUE(graph.AddEdge(2, 3, 0.6).ok());
  return graph;
}

// Small synthetic HAC snapshot; rounds_done distinguishes instances.
// (Cluster state is deliberately trivial — manifest logic only needs
// encode/decode to succeed, not a live clustering.)
HacSnapshotData FakeHacSnapshot(uint64_t rounds_done, bool finished = false) {
  HacSnapshotData data;
  data.rounds_done = rounds_done;
  data.finished = finished;
  data.stats.rounds = rounds_done;
  data.threshold = 0.35;
  data.num_leaves = 2;
  data.clusters.rows.resize(2);
  data.clusters.sizes = {1, 1};
  data.clusters.active = {1, 1};
  data.clusters.mergeable_count = {0, 0};
  data.clusters.track_threshold = 0.35;
  return data;
}

TEST_F(CheckpointTest, OpenCreatesDirectoryAndEmptyManifest) {
  auto writer = CheckpointWriter::Open(Dir(), /*resume=*/false);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_TRUE(std::filesystem::exists(Path("MANIFEST.json")));
  auto loaded = LoadCheckpoint(Dir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_entity_graph);
  EXPECT_FALSE(loaded->hac.has_value());
}

TEST_F(CheckpointTest, MissingManifestIsNotFound) {
  EXPECT_EQ(LoadCheckpoint(Dir()).status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(CheckpointTest, RoundTripThroughManifest) {
  {
    auto writer = CheckpointWriter::Open(Dir(), false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteEntityGraph(SampleGraph()).ok());
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(2)).ok());
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(4)).ok());
  }
  auto loaded = LoadCheckpoint(Dir());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->has_entity_graph);
  EXPECT_EQ(loaded->entity_graph.num_edges(), 2u);
  ASSERT_TRUE(loaded->hac.has_value());
  EXPECT_EQ(loaded->hac->rounds_done, 4u);
  EXPECT_TRUE(loaded->corrupt_files.empty());
}

TEST_F(CheckpointTest, PrunesOldHacSnapshotsKeepingNewest) {
  CheckpointOptions options;
  options.keep_last = 2;
  auto writer = CheckpointWriter::Open(Dir(), false, options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t round = 1; round <= 5; ++round) {
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(round)).ok());
  }
  EXPECT_FALSE(std::filesystem::exists(Path("hac-000001.snap")));
  EXPECT_FALSE(std::filesystem::exists(Path("hac-000003.snap")));
  EXPECT_TRUE(std::filesystem::exists(Path("hac-000004.snap")));
  EXPECT_TRUE(std::filesystem::exists(Path("hac-000005.snap")));
  size_t hac_entries = 0;
  for (const auto& entry : writer->entries()) {
    if (entry.kind == SnapshotKind::kHacState) ++hac_entries;
  }
  EXPECT_EQ(hac_entries, 2u);
}

TEST_F(CheckpointTest, EntityGraphSurvivesPruning) {
  CheckpointOptions options;
  options.keep_last = 1;
  auto writer = CheckpointWriter::Open(Dir(), false, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->WriteEntityGraph(SampleGraph()).ok());
  for (uint64_t round = 1; round <= 4; ++round) {
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(round)).ok());
  }
  EXPECT_TRUE(std::filesystem::exists(Path("entity_graph.snap")));
  auto loaded = LoadCheckpoint(Dir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->has_entity_graph);
  ASSERT_TRUE(loaded->hac.has_value());
  EXPECT_EQ(loaded->hac->rounds_done, 4u);
}

TEST_F(CheckpointTest, CorruptNewestFallsBackToOlderSnapshot) {
  {
    auto writer = CheckpointWriter::Open(Dir(), false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(2)).ok());
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(4)).ok());
  }
  // Corrupt the newest snapshot on disk (flip a payload byte).
  auto bytes = util::ReadTextFile(Path("hac-000004.snap"));
  ASSERT_TRUE(bytes.ok());
  std::string tampered = bytes.value();
  tampered[tampered.size() - 1] ^= 0x01;
  ASSERT_TRUE(util::WriteTextFile(Path("hac-000004.snap"), tampered).ok());

  auto loaded = LoadCheckpoint(Dir());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->hac.has_value());
  EXPECT_EQ(loaded->hac->rounds_done, 2u);
  ASSERT_EQ(loaded->corrupt_files.size(), 1u);
  EXPECT_EQ(loaded->corrupt_files[0], "hac-000004.snap");
}

TEST_F(CheckpointTest, AllSnapshotsCorruptDegradesToEmpty) {
  {
    auto writer = CheckpointWriter::Open(Dir(), false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(1)).ok());
  }
  ASSERT_TRUE(util::WriteTextFile(Path("hac-000001.snap"), "garbage").ok());
  auto loaded = LoadCheckpoint(Dir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->hac.has_value());
  EXPECT_EQ(loaded->corrupt_files.size(), 1u);
}

TEST_F(CheckpointTest, ResumeOpenKeepsEntries) {
  {
    auto writer = CheckpointWriter::Open(Dir(), false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteEntityGraph(SampleGraph()).ok());
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(3)).ok());
  }
  auto writer = CheckpointWriter::Open(Dir(), /*resume=*/true);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->entries().size(), 2u);
  ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(6)).ok());
  auto loaded = LoadCheckpoint(Dir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->has_entity_graph);
  EXPECT_EQ(loaded->hac->rounds_done, 6u);
}

TEST_F(CheckpointTest, FreshOpenSupersedesOldManifest) {
  {
    auto writer = CheckpointWriter::Open(Dir(), false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(9)).ok());
  }
  auto writer = CheckpointWriter::Open(Dir(), /*resume=*/false);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer->entries().empty());
  auto loaded = LoadCheckpoint(Dir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->hac.has_value());
}

TEST_F(CheckpointTest, FinishedSnapshotPreferredOverHigherRoundCount) {
  // Defensive: the finished snapshot is the authoritative end state
  // even if a stale periodic entry claims more rounds.
  {
    auto writer = CheckpointWriter::Open(Dir(), false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteHacSnapshot(FakeHacSnapshot(7)).ok());
    ASSERT_TRUE(
        writer->WriteHacSnapshot(FakeHacSnapshot(5, /*finished=*/true)).ok());
  }
  auto loaded = LoadCheckpoint(Dir());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->hac.has_value());
  EXPECT_TRUE(loaded->hac->finished);
  EXPECT_EQ(loaded->hac->rounds_done, 5u);
}

TEST_F(CheckpointTest, ParseManifestRejectsBadDocuments) {
  EXPECT_FALSE(ParseManifest("not json").ok());
  EXPECT_FALSE(ParseManifest("[]").ok());
  EXPECT_FALSE(ParseManifest("{\"version\": 2, \"entries\": []}").ok());
  EXPECT_FALSE(ParseManifest("{\"version\": 1}").ok());
  EXPECT_FALSE(
      ParseManifest(
          "{\"version\": 1, \"entries\": [{\"file\": \"../evil\", \"kind\": "
          "\"hac_state\", \"rounds_done\": 1, \"finished\": false, "
          "\"bytes\": 0, \"crc32\": 0}]}")
          .ok());
  auto ok = ParseManifest(
      "{\"version\": 1, \"entries\": [{\"file\": \"x.snap\", \"kind\": "
      "\"hac_state\", \"rounds_done\": 3, \"finished\": true, \"bytes\": "
      "12, \"crc32\": 99}]}");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok->size(), 1u);
  EXPECT_EQ((*ok)[0].rounds_done, 3u);
  EXPECT_TRUE((*ok)[0].finished);
}

TEST_F(CheckpointTest, RejectsBadOptions) {
  EXPECT_FALSE(CheckpointWriter::Open("", false).ok());
  CheckpointOptions zero;
  zero.keep_last = 0;
  EXPECT_FALSE(CheckpointWriter::Open(Dir(), false, zero).ok());
}

}  // namespace
}  // namespace shoal::ckpt
