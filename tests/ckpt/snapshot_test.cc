#include "ckpt/snapshot.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "ckpt/binary_io.h"
#include "core/parallel_hac.h"
#include "graph/weighted_graph.h"
#include "util/tsv.h"

namespace shoal::ckpt {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("shoal_snapshot_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

graph::WeightedGraph SampleGraph() {
  graph::WeightedGraph graph(5);
  EXPECT_TRUE(graph.AddEdge(0, 1, 0.9).ok());
  EXPECT_TRUE(graph.AddEdge(1, 2, 0.50000001).ok());
  EXPECT_TRUE(graph.AddEdge(2, 3, 0.1).ok());
  EXPECT_TRUE(graph.AddEdge(0, 4, 1.0 / 3.0).ok());
  return graph;
}

// Captures a real mid-HAC snapshot by running ParallelHac with a
// checkpoint hook that grabs the first invocation.
HacSnapshotData SampleHacSnapshot() {
  graph::WeightedGraph graph(8);
  for (uint32_t u = 0; u < 8; ++u) {
    for (uint32_t v = u + 1; v < 8; ++v) {
      EXPECT_TRUE(graph.AddEdge(u, v, 1.0 / (1.0 + u + v)).ok());
    }
  }
  core::ParallelHacOptions options;
  options.hac.threshold = 0.05;
  options.checkpoint_every = 1;
  HacSnapshotData captured;
  bool have = false;
  options.checkpoint_hook = [&](const core::HacProgress& progress) {
    if (!have) {
      captured = CaptureHacSnapshot(progress, options);
      have = true;
    }
    return util::Status::OK();
  };
  auto result = core::ParallelHac(graph, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(have);
  return captured;
}

TEST_F(SnapshotTest, BinaryIoRoundTrip) {
  BinaryWriter writer;
  writer.WriteU8(7);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefull);
  writer.WriteF64(-0.1);
  writer.WriteString("snapshot");
  BinaryReader reader(writer.data());
  EXPECT_EQ(reader.ReadU8().value(), 7);
  EXPECT_EQ(reader.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.ReadF64().value(), -0.1);
  EXPECT_EQ(reader.ReadString().value(), "snapshot");
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(reader.ReadU8().status().code(), util::StatusCode::kOutOfRange);
}

TEST_F(SnapshotTest, EntityGraphRoundTrip) {
  graph::WeightedGraph graph = SampleGraph();
  const std::string payload = EncodeEntityGraph(graph);
  auto restored = DecodeEntityGraph(payload);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_vertices(), graph.num_vertices());
  EXPECT_EQ(restored->num_edges(), graph.num_edges());
  for (const auto& e : graph.AllEdges()) {
    EXPECT_EQ(restored->EdgeWeight(e.u, e.v), e.weight);
  }
  // Bit-exact re-encode: restoring and re-serializing is a fixpoint.
  EXPECT_EQ(EncodeEntityGraph(*restored), payload);
}

TEST_F(SnapshotTest, HacSnapshotRoundTrip) {
  const HacSnapshotData data = SampleHacSnapshot();
  const std::string payload = EncodeHacSnapshot(data);
  auto restored = DecodeHacSnapshot(payload);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->rounds_done, data.rounds_done);
  EXPECT_EQ(restored->finished, data.finished);
  EXPECT_EQ(restored->num_leaves, data.num_leaves);
  EXPECT_EQ(restored->merges.size(), data.merges.size());
  EXPECT_EQ(restored->stats.merges_per_round, data.stats.merges_per_round);
  EXPECT_EQ(restored->clusters.rows, data.clusters.rows);
  EXPECT_EQ(restored->clusters.frontier, data.clusters.frontier);
  EXPECT_EQ(EncodeHacSnapshot(*restored), payload);
}

TEST_F(SnapshotTest, RestoreHacStateRejectsOptionSkew) {
  const HacSnapshotData data = SampleHacSnapshot();
  core::ParallelHacOptions options;
  options.hac.threshold = 0.05;
  ASSERT_TRUE(RestoreHacState(data, options).ok());
  core::ParallelHacOptions wrong = options;
  wrong.hac.threshold = 0.06;
  EXPECT_EQ(RestoreHacState(data, wrong).status().code(),
            util::StatusCode::kInvalidArgument);
  wrong = options;
  wrong.diffusion_iterations = 3;
  EXPECT_EQ(RestoreHacState(data, wrong).status().code(),
            util::StatusCode::kInvalidArgument);
  wrong = options;
  wrong.hac.linkage = core::LinkageRule::kMax;
  EXPECT_EQ(RestoreHacState(data, wrong).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, FileRoundTrip) {
  const std::string payload = EncodeEntityGraph(SampleGraph());
  const std::string path = Path("eg.snap");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kEntityGraph, payload).ok());
  auto file = ReadSnapshotFile(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->kind, SnapshotKind::kEntityGraph);
  EXPECT_EQ(file->payload, payload);
}

TEST_F(SnapshotTest, MissingFileIsCleanError) {
  auto file = ReadSnapshotFile(Path("nope.snap"));
  EXPECT_FALSE(file.ok());
}

TEST_F(SnapshotTest, RejectsWrongMagic) {
  const std::string path = Path("bad.snap");
  ASSERT_TRUE(util::WriteTextFile(path, "NOTASNAPxxxxxxxxxxxx").ok());
  auto file = ReadSnapshotFile(path);
  EXPECT_EQ(file.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RejectsVersionSkew) {
  const std::string payload = EncodeEntityGraph(SampleGraph());
  const std::string path = Path("v.snap");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kEntityGraph, payload).ok());
  auto bytes = util::ReadTextFile(path);
  ASSERT_TRUE(bytes.ok());
  std::string tampered = bytes.value();
  tampered[8] = static_cast<char>(kSnapshotVersion + 1);  // version field
  ASSERT_TRUE(util::WriteTextFile(path, tampered).ok());
  auto file = ReadSnapshotFile(path);
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, EveryTruncationFailsCleanly) {
  const std::string payload = EncodeEntityGraph(SampleGraph());
  const std::string path = Path("t.snap");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kEntityGraph, payload).ok());
  auto bytes = util::ReadTextFile(path);
  ASSERT_TRUE(bytes.ok());
  const std::string& full = bytes.value();
  for (size_t len = 0; len < full.size(); ++len) {
    const std::string trunc_path = Path("trunc.snap");
    ASSERT_TRUE(util::WriteTextFile(trunc_path, full.substr(0, len)).ok());
    auto file = ReadSnapshotFile(trunc_path);
    ASSERT_FALSE(file.ok()) << "truncated to " << len << " bytes";
  }
}

TEST_F(SnapshotTest, EveryBitFlipInHacSnapshotIsDetectedOrRejected) {
  HacSnapshotData data = SampleHacSnapshot();
  const std::string payload = EncodeHacSnapshot(data);
  const std::string path = Path("flip.snap");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kHacState, payload).ok());
  auto bytes = util::ReadTextFile(path);
  ASSERT_TRUE(bytes.ok());
  const std::string& full = bytes.value();
  // Flip one bit per byte position (stride to keep the test fast on
  // larger snapshots); the CRC must catch every payload flip and the
  // header checks every header flip.
  const size_t stride = full.size() > 512 ? full.size() / 512 : 1;
  core::ParallelHacOptions options;
  options.hac.threshold = 0.05;
  for (size_t i = 0; i < full.size(); i += stride) {
    std::string tampered = full;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x10);
    ASSERT_TRUE(util::WriteTextFile(path, tampered).ok());
    auto file = ReadSnapshotFile(path);
    if (!file.ok()) continue;  // caught by header/CRC validation
    // A flip that survives framing (e.g. in the stored CRC itself is
    // impossible — it would mismatch; but keep this branch defensive):
    // decoding plus invariant validation must still reject or produce a
    // state that fails the restore checks without crashing.
    auto decoded = DecodeHacSnapshot(file->payload);
    if (!decoded.ok()) continue;
    (void)RestoreHacState(*decoded, options);
  }
}

TEST_F(SnapshotTest, RejectsKindMismatch) {
  const std::string payload = EncodeEntityGraph(SampleGraph());
  const std::string path = Path("k.snap");
  // Written under the wrong kind tag: the frame reads fine but decoding
  // as the claimed kind must fail.
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kHacState, payload).ok());
  auto file = ReadSnapshotFile(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->kind, SnapshotKind::kHacState);
  EXPECT_FALSE(DecodeHacSnapshot(file->payload).ok());
}

DaemonWindowData SampleDaemonWindow() {
  DaemonWindowData data;
  data.alpha = 0.7;
  data.similarity_threshold = 0.35;
  data.max_items_per_query = 256;
  data.max_degree = 64;
  data.hac_threshold = 0.3;
  data.hac_linkage = 1;
  data.diffusion_iterations = 2;
  data.num_queries = 4;
  data.num_entities = 6;
  data.cycles_done = 3;
  data.published_version = 5;
  data.window.resize(2);
  data.window[0].name = "day-0001.clicks.tsv";
  data.window[0].pairs = {{0, 1, 4}, {0, 2, 1}, {3, 5, 2}};
  data.window[1].name = "day-0002.clicks.tsv";
  data.window[1].pairs = {{1, 0, 7}, {2, 4, 1}};
  data.num_leaves = 6;
  data.merges = {{0, 1, 0.9}, {6, 2, 0.5000000001}};
  data.rankings.resize(2);
  data.rankings[0].dendro_node = 5;
  data.rankings[0].ranking = {{2, 0.8, 0.9, 0.71}, {0, 0.4, 0.6, 0.3}};
  data.rankings[1].dendro_node = 7;
  data.rankings[1].ranking = {{3, 0.5, 0.5, 0.5}};
  return data;
}

TEST_F(SnapshotTest, DaemonWindowRoundTrip) {
  const DaemonWindowData data = SampleDaemonWindow();
  const std::string payload = EncodeDaemonWindow(data);
  auto restored = DecodeDaemonWindow(payload);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->cycles_done, data.cycles_done);
  EXPECT_EQ(restored->published_version, data.published_version);
  ASSERT_EQ(restored->window.size(), data.window.size());
  EXPECT_EQ(restored->window[0].name, data.window[0].name);
  ASSERT_EQ(restored->window[0].pairs.size(), data.window[0].pairs.size());
  EXPECT_EQ(restored->window[0].pairs[2].count, 2u);
  EXPECT_EQ(restored->num_leaves, data.num_leaves);
  ASSERT_EQ(restored->merges.size(), data.merges.size());
  EXPECT_EQ(restored->merges[1].similarity, data.merges[1].similarity);
  ASSERT_EQ(restored->rankings.size(), data.rankings.size());
  EXPECT_EQ(restored->rankings[0].ranking[0].query, 2u);
  EXPECT_EQ(restored->rankings[0].ranking[0].concentration, 0.71);
  // Bit-exact re-encode: restoring and re-serializing is a fixpoint.
  EXPECT_EQ(EncodeDaemonWindow(*restored), payload);
}

TEST_F(SnapshotTest, DaemonWindowFileRoundTripUnderKind3) {
  const std::string payload = EncodeDaemonWindow(SampleDaemonWindow());
  const std::string path = Path("dw.snap");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kDaemonWindow, payload).ok());
  auto file = ReadSnapshotFile(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->kind, SnapshotKind::kDaemonWindow);
  EXPECT_EQ(file->payload, payload);
}

TEST_F(SnapshotTest, DaemonWindowRejectsStructuralCorruption) {
  // Unsorted day pairs.
  DaemonWindowData bad = SampleDaemonWindow();
  std::swap(bad.window[0].pairs[0], bad.window[0].pairs[1]);
  EXPECT_EQ(DecodeDaemonWindow(EncodeDaemonWindow(bad)).status().code(),
            util::StatusCode::kInvalidArgument);
  // Zero-count pair (the producer must drop these).
  bad = SampleDaemonWindow();
  bad.window[1].pairs[0].count = 0;
  EXPECT_EQ(DecodeDaemonWindow(EncodeDaemonWindow(bad)).status().code(),
            util::StatusCode::kInvalidArgument);
  // Pair outside the catalog.
  bad = SampleDaemonWindow();
  bad.window[1].pairs[1].entity = 6;
  EXPECT_EQ(DecodeDaemonWindow(EncodeDaemonWindow(bad)).status().code(),
            util::StatusCode::kInvalidArgument);
  // Rankings out of dendro-node order.
  bad = SampleDaemonWindow();
  std::swap(bad.rankings[0], bad.rankings[1]);
  EXPECT_EQ(DecodeDaemonWindow(EncodeDaemonWindow(bad)).status().code(),
            util::StatusCode::kInvalidArgument);
  // Ranking naming an unknown query.
  bad = SampleDaemonWindow();
  bad.rankings[1].ranking[0].query = 9;
  EXPECT_EQ(DecodeDaemonWindow(EncodeDaemonWindow(bad)).status().code(),
            util::StatusCode::kInvalidArgument);
  // Trailing bytes.
  std::string padded = EncodeDaemonWindow(SampleDaemonWindow());
  padded.push_back('\0');
  EXPECT_EQ(DecodeDaemonWindow(padded).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, DaemonWindowEveryTruncationFailsCleanly) {
  const std::string payload = EncodeDaemonWindow(SampleDaemonWindow());
  const std::string path = Path("dwt.snap");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kDaemonWindow, payload).ok());
  auto bytes = util::ReadTextFile(path);
  ASSERT_TRUE(bytes.ok());
  const std::string& full = bytes.value();
  for (size_t len = 0; len < full.size(); ++len) {
    const std::string trunc_path = Path("dw_trunc.snap");
    ASSERT_TRUE(util::WriteTextFile(trunc_path, full.substr(0, len)).ok());
    auto file = ReadSnapshotFile(trunc_path);
    ASSERT_FALSE(file.ok()) << "truncated to " << len << " bytes";
  }
}

TEST_F(SnapshotTest, DaemonWindowEveryBitFlipIsDetectedOrRejected) {
  const std::string payload = EncodeDaemonWindow(SampleDaemonWindow());
  const std::string path = Path("dwf.snap");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kDaemonWindow, payload).ok());
  auto bytes = util::ReadTextFile(path);
  ASSERT_TRUE(bytes.ok());
  const std::string& full = bytes.value();
  const size_t stride = full.size() > 512 ? full.size() / 512 : 1;
  for (size_t i = 0; i < full.size(); i += stride) {
    std::string tampered = full;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x10);
    ASSERT_TRUE(util::WriteTextFile(path, tampered).ok());
    auto file = ReadSnapshotFile(path);
    if (!file.ok()) continue;  // caught by header/CRC validation
    (void)DecodeDaemonWindow(file->payload);
  }
}

TEST_F(SnapshotTest, DecodeRejectsOversizedCounts) {
  // A length field larger than the remaining bytes must error before
  // allocating.
  BinaryWriter writer;
  writer.WriteU64(5);                      // num_vertices
  writer.WriteU64(0xffffffffffffull);      // absurd edge count
  EXPECT_EQ(DecodeEntityGraph(writer.data()).status().code(),
            util::StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace shoal::ckpt
