file(REMOVE_RECURSE
  "CMakeFiles/bench_alpha_ablation.dir/bench_alpha_ablation.cpp.o"
  "CMakeFiles/bench_alpha_ablation.dir/bench_alpha_ablation.cpp.o.d"
  "bench_alpha_ablation"
  "bench_alpha_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alpha_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
