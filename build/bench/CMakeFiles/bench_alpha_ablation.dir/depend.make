# Empty dependencies file for bench_alpha_ablation.
# This may be replaced when dependencies are built.
