file(REMOVE_RECURSE
  "CMakeFiles/bench_correlation.dir/bench_correlation.cpp.o"
  "CMakeFiles/bench_correlation.dir/bench_correlation.cpp.o.d"
  "bench_correlation"
  "bench_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
