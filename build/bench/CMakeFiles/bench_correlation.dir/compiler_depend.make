# Empty compiler generated dependencies file for bench_correlation.
# This may be replaced when dependencies are built.
