file(REMOVE_RECURSE
  "CMakeFiles/bench_precision.dir/bench_precision.cpp.o"
  "CMakeFiles/bench_precision.dir/bench_precision.cpp.o.d"
  "bench_precision"
  "bench_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
