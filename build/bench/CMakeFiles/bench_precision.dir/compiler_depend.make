# Empty compiler generated dependencies file for bench_precision.
# This may be replaced when dependencies are built.
