file(REMOVE_RECURSE
  "CMakeFiles/bench_taxogen_baseline.dir/bench_taxogen_baseline.cpp.o"
  "CMakeFiles/bench_taxogen_baseline.dir/bench_taxogen_baseline.cpp.o.d"
  "bench_taxogen_baseline"
  "bench_taxogen_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taxogen_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
