# Empty dependencies file for bench_taxogen_baseline.
# This may be replaced when dependencies are built.
