file(REMOVE_RECURSE
  "CMakeFiles/bench_linkage_ablation.dir/bench_linkage_ablation.cpp.o"
  "CMakeFiles/bench_linkage_ablation.dir/bench_linkage_ablation.cpp.o.d"
  "bench_linkage_ablation"
  "bench_linkage_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linkage_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
