file(REMOVE_RECURSE
  "CMakeFiles/bench_noise.dir/bench_noise.cpp.o"
  "CMakeFiles/bench_noise.dir/bench_noise.cpp.o.d"
  "bench_noise"
  "bench_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
