# Empty compiler generated dependencies file for bench_noise.
# This may be replaced when dependencies are built.
