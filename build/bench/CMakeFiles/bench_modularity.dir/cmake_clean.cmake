file(REMOVE_RECURSE
  "CMakeFiles/bench_modularity.dir/bench_modularity.cpp.o"
  "CMakeFiles/bench_modularity.dir/bench_modularity.cpp.o.d"
  "bench_modularity"
  "bench_modularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
