# Empty compiler generated dependencies file for bench_modularity.
# This may be replaced when dependencies are built.
