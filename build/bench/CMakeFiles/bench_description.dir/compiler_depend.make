# Empty compiler generated dependencies file for bench_description.
# This may be replaced when dependencies are built.
