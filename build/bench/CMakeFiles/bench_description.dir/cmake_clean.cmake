file(REMOVE_RECURSE
  "CMakeFiles/bench_description.dir/bench_description.cpp.o"
  "CMakeFiles/bench_description.dir/bench_description.cpp.o.d"
  "bench_description"
  "bench_description.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_description.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
