# Empty dependencies file for bench_ctr.
# This may be replaced when dependencies are built.
