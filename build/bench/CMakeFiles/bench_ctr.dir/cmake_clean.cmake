file(REMOVE_RECURSE
  "CMakeFiles/bench_ctr.dir/bench_ctr.cpp.o"
  "CMakeFiles/bench_ctr.dir/bench_ctr.cpp.o.d"
  "bench_ctr"
  "bench_ctr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ctr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
