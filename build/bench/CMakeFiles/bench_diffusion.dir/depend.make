# Empty dependencies file for bench_diffusion.
# This may be replaced when dependencies are built.
