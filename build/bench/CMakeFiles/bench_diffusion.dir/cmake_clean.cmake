file(REMOVE_RECURSE
  "CMakeFiles/bench_diffusion.dir/bench_diffusion.cpp.o"
  "CMakeFiles/bench_diffusion.dir/bench_diffusion.cpp.o.d"
  "bench_diffusion"
  "bench_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
