
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/louvain_test.cc" "tests/CMakeFiles/shoal_tests.dir/baselines/louvain_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/baselines/louvain_test.cc.o.d"
  "/root/repo/tests/baselines/recommenders_test.cc" "tests/CMakeFiles/shoal_tests.dir/baselines/recommenders_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/baselines/recommenders_test.cc.o.d"
  "/root/repo/tests/baselines/taxogen_lite_test.cc" "tests/CMakeFiles/shoal_tests.dir/baselines/taxogen_lite_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/baselines/taxogen_lite_test.cc.o.d"
  "/root/repo/tests/core/category_correlation_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/category_correlation_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/category_correlation_test.cc.o.d"
  "/root/repo/tests/core/dendrogram_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/dendrogram_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/dendrogram_test.cc.o.d"
  "/root/repo/tests/core/entity_graph_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/entity_graph_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/entity_graph_test.cc.o.d"
  "/root/repo/tests/core/hac_common_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/hac_common_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/hac_common_test.cc.o.d"
  "/root/repo/tests/core/parallel_hac_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/parallel_hac_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/parallel_hac_test.cc.o.d"
  "/root/repo/tests/core/query_search_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/query_search_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/query_search_test.cc.o.d"
  "/root/repo/tests/core/sequential_hac_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/sequential_hac_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/sequential_hac_test.cc.o.d"
  "/root/repo/tests/core/similarity_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/similarity_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/similarity_test.cc.o.d"
  "/root/repo/tests/core/taxonomy_io_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/taxonomy_io_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/taxonomy_io_test.cc.o.d"
  "/root/repo/tests/core/taxonomy_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/taxonomy_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/taxonomy_test.cc.o.d"
  "/root/repo/tests/core/topic_describer_test.cc" "tests/CMakeFiles/shoal_tests.dir/core/topic_describer_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/core/topic_describer_test.cc.o.d"
  "/root/repo/tests/data/click_stream_test.cc" "tests/CMakeFiles/shoal_tests.dir/data/click_stream_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/data/click_stream_test.cc.o.d"
  "/root/repo/tests/data/dataset_test.cc" "tests/CMakeFiles/shoal_tests.dir/data/dataset_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/data/dataset_test.cc.o.d"
  "/root/repo/tests/data/intent_model_test.cc" "tests/CMakeFiles/shoal_tests.dir/data/intent_model_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/data/intent_model_test.cc.o.d"
  "/root/repo/tests/data/lexicon_test.cc" "tests/CMakeFiles/shoal_tests.dir/data/lexicon_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/data/lexicon_test.cc.o.d"
  "/root/repo/tests/data/log_io_test.cc" "tests/CMakeFiles/shoal_tests.dir/data/log_io_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/data/log_io_test.cc.o.d"
  "/root/repo/tests/data/ontology_test.cc" "tests/CMakeFiles/shoal_tests.dir/data/ontology_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/data/ontology_test.cc.o.d"
  "/root/repo/tests/engine/algorithms_test.cc" "tests/CMakeFiles/shoal_tests.dir/engine/algorithms_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/engine/algorithms_test.cc.o.d"
  "/root/repo/tests/engine/bsp_engine_test.cc" "tests/CMakeFiles/shoal_tests.dir/engine/bsp_engine_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/engine/bsp_engine_test.cc.o.d"
  "/root/repo/tests/engine/partitioner_test.cc" "tests/CMakeFiles/shoal_tests.dir/engine/partitioner_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/engine/partitioner_test.cc.o.d"
  "/root/repo/tests/eval/cluster_metrics_test.cc" "tests/CMakeFiles/shoal_tests.dir/eval/cluster_metrics_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/eval/cluster_metrics_test.cc.o.d"
  "/root/repo/tests/eval/ctr_sim_test.cc" "tests/CMakeFiles/shoal_tests.dir/eval/ctr_sim_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/eval/ctr_sim_test.cc.o.d"
  "/root/repo/tests/eval/precision_eval_test.cc" "tests/CMakeFiles/shoal_tests.dir/eval/precision_eval_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/eval/precision_eval_test.cc.o.d"
  "/root/repo/tests/graph/bipartite_graph_test.cc" "tests/CMakeFiles/shoal_tests.dir/graph/bipartite_graph_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/graph/bipartite_graph_test.cc.o.d"
  "/root/repo/tests/graph/components_test.cc" "tests/CMakeFiles/shoal_tests.dir/graph/components_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/graph/components_test.cc.o.d"
  "/root/repo/tests/graph/generators_test.cc" "tests/CMakeFiles/shoal_tests.dir/graph/generators_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/graph/generators_test.cc.o.d"
  "/root/repo/tests/graph/graph_io_test.cc" "tests/CMakeFiles/shoal_tests.dir/graph/graph_io_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/graph/graph_io_test.cc.o.d"
  "/root/repo/tests/graph/modularity_test.cc" "tests/CMakeFiles/shoal_tests.dir/graph/modularity_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/graph/modularity_test.cc.o.d"
  "/root/repo/tests/graph/weighted_graph_test.cc" "tests/CMakeFiles/shoal_tests.dir/graph/weighted_graph_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/graph/weighted_graph_test.cc.o.d"
  "/root/repo/tests/integration/entity_graph_properties_test.cc" "tests/CMakeFiles/shoal_tests.dir/integration/entity_graph_properties_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/integration/entity_graph_properties_test.cc.o.d"
  "/root/repo/tests/integration/hac_properties_test.cc" "tests/CMakeFiles/shoal_tests.dir/integration/hac_properties_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/integration/hac_properties_test.cc.o.d"
  "/root/repo/tests/integration/pipeline_seeds_test.cc" "tests/CMakeFiles/shoal_tests.dir/integration/pipeline_seeds_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/integration/pipeline_seeds_test.cc.o.d"
  "/root/repo/tests/integration/pipeline_test.cc" "tests/CMakeFiles/shoal_tests.dir/integration/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/integration/pipeline_test.cc.o.d"
  "/root/repo/tests/integration/robustness_test.cc" "tests/CMakeFiles/shoal_tests.dir/integration/robustness_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/integration/robustness_test.cc.o.d"
  "/root/repo/tests/text/bm25_test.cc" "tests/CMakeFiles/shoal_tests.dir/text/bm25_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/text/bm25_test.cc.o.d"
  "/root/repo/tests/text/embedding_test.cc" "tests/CMakeFiles/shoal_tests.dir/text/embedding_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/text/embedding_test.cc.o.d"
  "/root/repo/tests/text/text_io_test.cc" "tests/CMakeFiles/shoal_tests.dir/text/text_io_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/text/text_io_test.cc.o.d"
  "/root/repo/tests/text/tokenizer_test.cc" "tests/CMakeFiles/shoal_tests.dir/text/tokenizer_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/text/tokenizer_test.cc.o.d"
  "/root/repo/tests/text/vocabulary_test.cc" "tests/CMakeFiles/shoal_tests.dir/text/vocabulary_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/text/vocabulary_test.cc.o.d"
  "/root/repo/tests/text/word2vec_test.cc" "tests/CMakeFiles/shoal_tests.dir/text/word2vec_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/text/word2vec_test.cc.o.d"
  "/root/repo/tests/util/flags_test.cc" "tests/CMakeFiles/shoal_tests.dir/util/flags_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/util/flags_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/shoal_tests.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/shoal_tests.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/result_test.cc" "tests/CMakeFiles/shoal_tests.dir/util/result_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/util/result_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/shoal_tests.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/shoal_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/string_util_test.cc" "tests/CMakeFiles/shoal_tests.dir/util/string_util_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/util/string_util_test.cc.o.d"
  "/root/repo/tests/util/thread_pool_test.cc" "tests/CMakeFiles/shoal_tests.dir/util/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/util/thread_pool_test.cc.o.d"
  "/root/repo/tests/util/tsv_test.cc" "tests/CMakeFiles/shoal_tests.dir/util/tsv_test.cc.o" "gcc" "tests/CMakeFiles/shoal_tests.dir/util/tsv_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/shoal_adapter.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/shoal_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/shoal_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/shoal_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/shoal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/shoal_text.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/shoal_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/shoal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/shoal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
