# Empty dependencies file for shoal_tests.
# This may be replaced when dependencies are built.
