# Empty compiler generated dependencies file for shoal_core.
# This may be replaced when dependencies are built.
