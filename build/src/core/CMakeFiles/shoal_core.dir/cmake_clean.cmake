file(REMOVE_RECURSE
  "CMakeFiles/shoal_core.dir/category_correlation.cc.o"
  "CMakeFiles/shoal_core.dir/category_correlation.cc.o.d"
  "CMakeFiles/shoal_core.dir/dendrogram.cc.o"
  "CMakeFiles/shoal_core.dir/dendrogram.cc.o.d"
  "CMakeFiles/shoal_core.dir/entity_graph.cc.o"
  "CMakeFiles/shoal_core.dir/entity_graph.cc.o.d"
  "CMakeFiles/shoal_core.dir/hac_common.cc.o"
  "CMakeFiles/shoal_core.dir/hac_common.cc.o.d"
  "CMakeFiles/shoal_core.dir/parallel_hac.cc.o"
  "CMakeFiles/shoal_core.dir/parallel_hac.cc.o.d"
  "CMakeFiles/shoal_core.dir/query_search.cc.o"
  "CMakeFiles/shoal_core.dir/query_search.cc.o.d"
  "CMakeFiles/shoal_core.dir/sequential_hac.cc.o"
  "CMakeFiles/shoal_core.dir/sequential_hac.cc.o.d"
  "CMakeFiles/shoal_core.dir/shoal.cc.o"
  "CMakeFiles/shoal_core.dir/shoal.cc.o.d"
  "CMakeFiles/shoal_core.dir/similarity.cc.o"
  "CMakeFiles/shoal_core.dir/similarity.cc.o.d"
  "CMakeFiles/shoal_core.dir/taxonomy.cc.o"
  "CMakeFiles/shoal_core.dir/taxonomy.cc.o.d"
  "CMakeFiles/shoal_core.dir/taxonomy_io.cc.o"
  "CMakeFiles/shoal_core.dir/taxonomy_io.cc.o.d"
  "CMakeFiles/shoal_core.dir/topic_describer.cc.o"
  "CMakeFiles/shoal_core.dir/topic_describer.cc.o.d"
  "libshoal_core.a"
  "libshoal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
