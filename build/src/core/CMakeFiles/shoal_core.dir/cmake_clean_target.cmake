file(REMOVE_RECURSE
  "libshoal_core.a"
)
