
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/category_correlation.cc" "src/core/CMakeFiles/shoal_core.dir/category_correlation.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/category_correlation.cc.o.d"
  "/root/repo/src/core/dendrogram.cc" "src/core/CMakeFiles/shoal_core.dir/dendrogram.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/dendrogram.cc.o.d"
  "/root/repo/src/core/entity_graph.cc" "src/core/CMakeFiles/shoal_core.dir/entity_graph.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/entity_graph.cc.o.d"
  "/root/repo/src/core/hac_common.cc" "src/core/CMakeFiles/shoal_core.dir/hac_common.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/hac_common.cc.o.d"
  "/root/repo/src/core/parallel_hac.cc" "src/core/CMakeFiles/shoal_core.dir/parallel_hac.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/parallel_hac.cc.o.d"
  "/root/repo/src/core/query_search.cc" "src/core/CMakeFiles/shoal_core.dir/query_search.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/query_search.cc.o.d"
  "/root/repo/src/core/sequential_hac.cc" "src/core/CMakeFiles/shoal_core.dir/sequential_hac.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/sequential_hac.cc.o.d"
  "/root/repo/src/core/shoal.cc" "src/core/CMakeFiles/shoal_core.dir/shoal.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/shoal.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/shoal_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/taxonomy.cc" "src/core/CMakeFiles/shoal_core.dir/taxonomy.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/taxonomy.cc.o.d"
  "/root/repo/src/core/taxonomy_io.cc" "src/core/CMakeFiles/shoal_core.dir/taxonomy_io.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/taxonomy_io.cc.o.d"
  "/root/repo/src/core/topic_describer.cc" "src/core/CMakeFiles/shoal_core.dir/topic_describer.cc.o" "gcc" "src/core/CMakeFiles/shoal_core.dir/topic_describer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shoal_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/shoal_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/shoal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/shoal_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
