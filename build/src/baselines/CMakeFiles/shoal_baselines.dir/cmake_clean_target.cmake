file(REMOVE_RECURSE
  "libshoal_baselines.a"
)
