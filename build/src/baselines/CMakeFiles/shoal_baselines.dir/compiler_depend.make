# Empty compiler generated dependencies file for shoal_baselines.
# This may be replaced when dependencies are built.
