file(REMOVE_RECURSE
  "CMakeFiles/shoal_baselines.dir/louvain.cc.o"
  "CMakeFiles/shoal_baselines.dir/louvain.cc.o.d"
  "CMakeFiles/shoal_baselines.dir/ontology_recommender.cc.o"
  "CMakeFiles/shoal_baselines.dir/ontology_recommender.cc.o.d"
  "CMakeFiles/shoal_baselines.dir/taxogen_lite.cc.o"
  "CMakeFiles/shoal_baselines.dir/taxogen_lite.cc.o.d"
  "CMakeFiles/shoal_baselines.dir/topic_recommender.cc.o"
  "CMakeFiles/shoal_baselines.dir/topic_recommender.cc.o.d"
  "libshoal_baselines.a"
  "libshoal_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
