
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bipartite_graph.cc" "src/graph/CMakeFiles/shoal_graph.dir/bipartite_graph.cc.o" "gcc" "src/graph/CMakeFiles/shoal_graph.dir/bipartite_graph.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/graph/CMakeFiles/shoal_graph.dir/components.cc.o" "gcc" "src/graph/CMakeFiles/shoal_graph.dir/components.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/shoal_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/shoal_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/shoal_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/shoal_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/modularity.cc" "src/graph/CMakeFiles/shoal_graph.dir/modularity.cc.o" "gcc" "src/graph/CMakeFiles/shoal_graph.dir/modularity.cc.o.d"
  "/root/repo/src/graph/weighted_graph.cc" "src/graph/CMakeFiles/shoal_graph.dir/weighted_graph.cc.o" "gcc" "src/graph/CMakeFiles/shoal_graph.dir/weighted_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shoal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
