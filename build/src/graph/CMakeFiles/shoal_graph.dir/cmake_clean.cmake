file(REMOVE_RECURSE
  "CMakeFiles/shoal_graph.dir/bipartite_graph.cc.o"
  "CMakeFiles/shoal_graph.dir/bipartite_graph.cc.o.d"
  "CMakeFiles/shoal_graph.dir/components.cc.o"
  "CMakeFiles/shoal_graph.dir/components.cc.o.d"
  "CMakeFiles/shoal_graph.dir/generators.cc.o"
  "CMakeFiles/shoal_graph.dir/generators.cc.o.d"
  "CMakeFiles/shoal_graph.dir/graph_io.cc.o"
  "CMakeFiles/shoal_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/shoal_graph.dir/modularity.cc.o"
  "CMakeFiles/shoal_graph.dir/modularity.cc.o.d"
  "CMakeFiles/shoal_graph.dir/weighted_graph.cc.o"
  "CMakeFiles/shoal_graph.dir/weighted_graph.cc.o.d"
  "libshoal_graph.a"
  "libshoal_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
