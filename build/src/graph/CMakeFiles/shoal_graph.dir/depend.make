# Empty dependencies file for shoal_graph.
# This may be replaced when dependencies are built.
