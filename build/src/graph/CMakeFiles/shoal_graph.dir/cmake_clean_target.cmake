file(REMOVE_RECURSE
  "libshoal_graph.a"
)
