file(REMOVE_RECURSE
  "CMakeFiles/shoal_eval.dir/cluster_metrics.cc.o"
  "CMakeFiles/shoal_eval.dir/cluster_metrics.cc.o.d"
  "CMakeFiles/shoal_eval.dir/ctr_sim.cc.o"
  "CMakeFiles/shoal_eval.dir/ctr_sim.cc.o.d"
  "CMakeFiles/shoal_eval.dir/precision_eval.cc.o"
  "CMakeFiles/shoal_eval.dir/precision_eval.cc.o.d"
  "libshoal_eval.a"
  "libshoal_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
