
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/cluster_metrics.cc" "src/eval/CMakeFiles/shoal_eval.dir/cluster_metrics.cc.o" "gcc" "src/eval/CMakeFiles/shoal_eval.dir/cluster_metrics.cc.o.d"
  "/root/repo/src/eval/ctr_sim.cc" "src/eval/CMakeFiles/shoal_eval.dir/ctr_sim.cc.o" "gcc" "src/eval/CMakeFiles/shoal_eval.dir/ctr_sim.cc.o.d"
  "/root/repo/src/eval/precision_eval.cc" "src/eval/CMakeFiles/shoal_eval.dir/precision_eval.cc.o" "gcc" "src/eval/CMakeFiles/shoal_eval.dir/precision_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shoal_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/shoal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/shoal_text.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/shoal_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/shoal_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
