file(REMOVE_RECURSE
  "libshoal_eval.a"
)
