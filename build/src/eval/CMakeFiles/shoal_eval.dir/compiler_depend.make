# Empty compiler generated dependencies file for shoal_eval.
# This may be replaced when dependencies are built.
