# Empty dependencies file for shoal_data.
# This may be replaced when dependencies are built.
