
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/click_stream.cc" "src/data/CMakeFiles/shoal_data.dir/click_stream.cc.o" "gcc" "src/data/CMakeFiles/shoal_data.dir/click_stream.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/shoal_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/shoal_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/intent_model.cc" "src/data/CMakeFiles/shoal_data.dir/intent_model.cc.o" "gcc" "src/data/CMakeFiles/shoal_data.dir/intent_model.cc.o.d"
  "/root/repo/src/data/lexicon.cc" "src/data/CMakeFiles/shoal_data.dir/lexicon.cc.o" "gcc" "src/data/CMakeFiles/shoal_data.dir/lexicon.cc.o.d"
  "/root/repo/src/data/ontology.cc" "src/data/CMakeFiles/shoal_data.dir/ontology.cc.o" "gcc" "src/data/CMakeFiles/shoal_data.dir/ontology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shoal_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/shoal_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/shoal_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
