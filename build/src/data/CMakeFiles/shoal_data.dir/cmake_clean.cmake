file(REMOVE_RECURSE
  "CMakeFiles/shoal_data.dir/click_stream.cc.o"
  "CMakeFiles/shoal_data.dir/click_stream.cc.o.d"
  "CMakeFiles/shoal_data.dir/dataset.cc.o"
  "CMakeFiles/shoal_data.dir/dataset.cc.o.d"
  "CMakeFiles/shoal_data.dir/intent_model.cc.o"
  "CMakeFiles/shoal_data.dir/intent_model.cc.o.d"
  "CMakeFiles/shoal_data.dir/lexicon.cc.o"
  "CMakeFiles/shoal_data.dir/lexicon.cc.o.d"
  "CMakeFiles/shoal_data.dir/ontology.cc.o"
  "CMakeFiles/shoal_data.dir/ontology.cc.o.d"
  "libshoal_data.a"
  "libshoal_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
