file(REMOVE_RECURSE
  "libshoal_data.a"
)
