# Empty dependencies file for shoal_adapter.
# This may be replaced when dependencies are built.
