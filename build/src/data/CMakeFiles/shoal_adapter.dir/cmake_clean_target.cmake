file(REMOVE_RECURSE
  "libshoal_adapter.a"
)
