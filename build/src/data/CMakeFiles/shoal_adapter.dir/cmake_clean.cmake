file(REMOVE_RECURSE
  "CMakeFiles/shoal_adapter.dir/log_io.cc.o"
  "CMakeFiles/shoal_adapter.dir/log_io.cc.o.d"
  "CMakeFiles/shoal_adapter.dir/shoal_adapter.cc.o"
  "CMakeFiles/shoal_adapter.dir/shoal_adapter.cc.o.d"
  "libshoal_adapter.a"
  "libshoal_adapter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
