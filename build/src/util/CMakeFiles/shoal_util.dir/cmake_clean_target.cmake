file(REMOVE_RECURSE
  "libshoal_util.a"
)
