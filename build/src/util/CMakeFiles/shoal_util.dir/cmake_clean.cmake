file(REMOVE_RECURSE
  "CMakeFiles/shoal_util.dir/flags.cc.o"
  "CMakeFiles/shoal_util.dir/flags.cc.o.d"
  "CMakeFiles/shoal_util.dir/logging.cc.o"
  "CMakeFiles/shoal_util.dir/logging.cc.o.d"
  "CMakeFiles/shoal_util.dir/random.cc.o"
  "CMakeFiles/shoal_util.dir/random.cc.o.d"
  "CMakeFiles/shoal_util.dir/stats.cc.o"
  "CMakeFiles/shoal_util.dir/stats.cc.o.d"
  "CMakeFiles/shoal_util.dir/status.cc.o"
  "CMakeFiles/shoal_util.dir/status.cc.o.d"
  "CMakeFiles/shoal_util.dir/string_util.cc.o"
  "CMakeFiles/shoal_util.dir/string_util.cc.o.d"
  "CMakeFiles/shoal_util.dir/thread_pool.cc.o"
  "CMakeFiles/shoal_util.dir/thread_pool.cc.o.d"
  "CMakeFiles/shoal_util.dir/tsv.cc.o"
  "CMakeFiles/shoal_util.dir/tsv.cc.o.d"
  "libshoal_util.a"
  "libshoal_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
