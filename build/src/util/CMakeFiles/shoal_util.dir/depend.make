# Empty dependencies file for shoal_util.
# This may be replaced when dependencies are built.
