
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/bm25.cc" "src/text/CMakeFiles/shoal_text.dir/bm25.cc.o" "gcc" "src/text/CMakeFiles/shoal_text.dir/bm25.cc.o.d"
  "/root/repo/src/text/embedding.cc" "src/text/CMakeFiles/shoal_text.dir/embedding.cc.o" "gcc" "src/text/CMakeFiles/shoal_text.dir/embedding.cc.o.d"
  "/root/repo/src/text/text_io.cc" "src/text/CMakeFiles/shoal_text.dir/text_io.cc.o" "gcc" "src/text/CMakeFiles/shoal_text.dir/text_io.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/shoal_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/shoal_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/text/CMakeFiles/shoal_text.dir/vocabulary.cc.o" "gcc" "src/text/CMakeFiles/shoal_text.dir/vocabulary.cc.o.d"
  "/root/repo/src/text/word2vec.cc" "src/text/CMakeFiles/shoal_text.dir/word2vec.cc.o" "gcc" "src/text/CMakeFiles/shoal_text.dir/word2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shoal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
