# Empty dependencies file for shoal_text.
# This may be replaced when dependencies are built.
