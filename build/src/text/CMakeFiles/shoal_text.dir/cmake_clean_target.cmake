file(REMOVE_RECURSE
  "libshoal_text.a"
)
