file(REMOVE_RECURSE
  "CMakeFiles/shoal_text.dir/bm25.cc.o"
  "CMakeFiles/shoal_text.dir/bm25.cc.o.d"
  "CMakeFiles/shoal_text.dir/embedding.cc.o"
  "CMakeFiles/shoal_text.dir/embedding.cc.o.d"
  "CMakeFiles/shoal_text.dir/text_io.cc.o"
  "CMakeFiles/shoal_text.dir/text_io.cc.o.d"
  "CMakeFiles/shoal_text.dir/tokenizer.cc.o"
  "CMakeFiles/shoal_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/shoal_text.dir/vocabulary.cc.o"
  "CMakeFiles/shoal_text.dir/vocabulary.cc.o.d"
  "CMakeFiles/shoal_text.dir/word2vec.cc.o"
  "CMakeFiles/shoal_text.dir/word2vec.cc.o.d"
  "libshoal_text.a"
  "libshoal_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
