file(REMOVE_RECURSE
  "libshoal_engine.a"
)
