
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/algorithms.cc" "src/engine/CMakeFiles/shoal_engine.dir/algorithms.cc.o" "gcc" "src/engine/CMakeFiles/shoal_engine.dir/algorithms.cc.o.d"
  "/root/repo/src/engine/partitioner.cc" "src/engine/CMakeFiles/shoal_engine.dir/partitioner.cc.o" "gcc" "src/engine/CMakeFiles/shoal_engine.dir/partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shoal_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/shoal_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
