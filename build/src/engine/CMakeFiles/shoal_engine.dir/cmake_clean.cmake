file(REMOVE_RECURSE
  "CMakeFiles/shoal_engine.dir/algorithms.cc.o"
  "CMakeFiles/shoal_engine.dir/algorithms.cc.o.d"
  "CMakeFiles/shoal_engine.dir/partitioner.cc.o"
  "CMakeFiles/shoal_engine.dir/partitioner.cc.o.d"
  "libshoal_engine.a"
  "libshoal_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
