# Empty dependencies file for shoal_engine.
# This may be replaced when dependencies are built.
