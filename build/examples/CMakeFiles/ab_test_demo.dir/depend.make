# Empty dependencies file for ab_test_demo.
# This may be replaced when dependencies are built.
