file(REMOVE_RECURSE
  "CMakeFiles/ab_test_demo.dir/ab_test_demo.cpp.o"
  "CMakeFiles/ab_test_demo.dir/ab_test_demo.cpp.o.d"
  "ab_test_demo"
  "ab_test_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_test_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
