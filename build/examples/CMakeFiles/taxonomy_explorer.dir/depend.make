# Empty dependencies file for taxonomy_explorer.
# This may be replaced when dependencies are built.
