
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/shoal_adapter.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/shoal_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/shoal_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/shoal_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/shoal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/shoal_text.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/shoal_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/shoal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/shoal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
