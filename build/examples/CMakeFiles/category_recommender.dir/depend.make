# Empty dependencies file for category_recommender.
# This may be replaced when dependencies are built.
