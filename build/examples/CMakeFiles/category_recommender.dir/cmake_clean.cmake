file(REMOVE_RECURSE
  "CMakeFiles/category_recommender.dir/category_recommender.cpp.o"
  "CMakeFiles/category_recommender.dir/category_recommender.cpp.o.d"
  "category_recommender"
  "category_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/category_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
