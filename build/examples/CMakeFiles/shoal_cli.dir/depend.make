# Empty dependencies file for shoal_cli.
# This may be replaced when dependencies are built.
