file(REMOVE_RECURSE
  "CMakeFiles/shoal_cli.dir/shoal_cli.cpp.o"
  "CMakeFiles/shoal_cli.dir/shoal_cli.cpp.o.d"
  "shoal_cli"
  "shoal_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoal_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
