// Taxonomy explorer: a CLI rendition of the SHOAL demo GUI (Figure 5),
// implementing all four demonstration scenarios of Sec 3.1:
//
//   (A) Query -> Topic          : query <text>
//   (B) Topic -> Sub-topic      : topic <id>
//   (C) Topic -> Category -> Item: categories <id> / items <id> <category>
//   (D) Category -> Category    : related <category name>
//
// Runs an interactive prompt, or executes commands given with --cmd
// (semicolon-separated) and exits — which is how the integration test
// drives it.
//
// Scenarios A and B (and `item`) read a compiled serve::ServingIndex —
// the same artefact and lookup code path shoal_serve answers HTTP
// requests from. Two ways to get one:
//   --index taxonomy.idx   explore a file written by
//                          `shoal_cli build --serving-index-out` (the
//                          dataset-backed scenarios C/D are unavailable);
//   (default)              generate a synthetic dataset, build the
//                          taxonomy, and compile the index in-process.

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "serve/serving_index.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using shoal::core::kNoTopic;
using shoal::serve::ServingIndex;

// Formats "  — first repr query" or "" for a topic summary line.
std::string DescriptionSuffix(const ServingIndex& index, uint32_t t) {
  if (index.num_descriptions(t) == 0) return "";
  return "  — " + std::string(index.description(t, 0));
}

class Explorer {
 public:
  // `dataset` and `model` may be null (pure --index mode); scenarios C
  // and D need them, everything else reads `index`.
  Explorer(const ServingIndex& index, const shoal::data::Dataset* dataset,
           const shoal::core::ShoalModel* model)
      : index_(index), dataset_(dataset), model_(model) {}

  void Execute(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) return;
    std::string rest;
    std::getline(in, rest);
    std::string arg(shoal::util::Trim(rest));

    if (command == "query") {
      ScenarioA(arg);
    } else if (command == "topic") {
      ScenarioB(arg);
    } else if (command == "item") {
      Item(arg);
    } else if (command == "categories") {
      ScenarioCCategories(arg);
    } else if (command == "items") {
      ScenarioCItems(arg);
    } else if (command == "related") {
      ScenarioD(arg);
    } else if (command == "help") {
      PrintHelp();
    } else {
      std::printf("unknown command '%s' (try: help)\n", command.c_str());
    }
  }

  static void PrintHelp() {
    std::printf(
        "commands:\n"
        "  query <text>            (A) find topics matching a query\n"
        "  topic <id>              (B) show a topic and its sub-topics\n"
        "  item <id>               item -> topic / category mapping\n"
        "  categories <id>         (C) categories under a topic\n"
        "  items <id> <category>   (C) items of a category in a topic\n"
        "  related <category>      (D) correlated categories\n"
        "  help                    this message\n");
  }

 private:
  // (A) Query -> Topic through the serving dictionary: exact raw-text
  // match, then the normalized form — identical to GET /v1/query.
  void ScenarioA(const std::string& text) {
    const ServingIndex::Lookup lookup = index_.Find(text);
    if (lookup.query != shoal::serve::kNoQuery) {
      std::printf("topics for \"%s\" (%s match):\n", text.c_str(),
                  lookup.match == ServingIndex::Lookup::Match::kExact
                      ? "exact"
                      : "normalized");
      const auto postings = index_.postings(lookup.query);
      for (size_t i = 0; i < postings.size() && i < 6; ++i) {
        const auto posting = postings[i];
        std::printf("  #%-5u score %-7s %u items%s\n", posting.topic,
                    shoal::util::FormatDouble(posting.score, 2).c_str(),
                    index_.topic_size(posting.topic),
                    DescriptionSuffix(index_, posting.topic).c_str());
      }
      return;
    }
    // Out-of-dictionary text: fall back to the BM25 search index when a
    // live model is around (synthetic mode only).
    if (model_ != nullptr) {
      auto hits = model_->SearchTopics(text, 6);
      if (!hits.empty()) {
        std::printf("topics for \"%s\" (BM25 fallback):\n", text.c_str());
        for (const auto& hit : hits) {
          std::printf("  #%-5u score %-7s %u items%s\n", hit.topic,
                      shoal::util::FormatDouble(hit.score, 2).c_str(),
                      index_.topic_size(hit.topic),
                      DescriptionSuffix(index_, hit.topic).c_str());
        }
        return;
      }
    }
    std::printf("no topics match \"%s\"\n", text.c_str());
  }

  // (B) Topic -> Sub-topic: hierarchy walks through the index CSR.
  void ScenarioB(const std::string& arg) {
    uint32_t id;
    if (!ParseTopicId(arg, &id)) return;
    std::printf("topic #%u: %u items, level %u", id, index_.topic_size(id),
                index_.level(id));
    std::printf("  (path:");
    for (uint32_t node : index_.PathToRoot(id)) std::printf(" #%u", node);
    std::printf(")\n");
    for (size_t i = 0; i < index_.num_descriptions(id); ++i) {
      std::printf("  repr query %zu: \"%s\"\n", i + 1,
                  std::string(index_.description(id, i)).c_str());
    }
    auto [first, last] = index_.children(id);
    if (first == last) std::printf("  (no sub-topics)\n");
    for (const uint32_t* child = first; child != last; ++child) {
      std::printf("  sub-topic #%-5u %u items%s\n", *child,
                  index_.topic_size(*child),
                  DescriptionSuffix(index_, *child).c_str());
    }
  }

  // Item -> entity -> topic, mirroring GET /v1/item/<id>.
  void Item(const std::string& arg) {
    char* end = nullptr;
    unsigned long value = std::strtoul(arg.c_str(), &end, 10);
    if (end == arg.c_str() || value >= index_.num_entities()) {
      std::printf("expected an item id in [0, %zu)\n",
                  index_.num_entities());
      return;
    }
    const uint32_t e = static_cast<uint32_t>(value);
    const uint32_t topic = index_.entity_topic(e);
    if (topic == kNoTopic) {
      std::printf("item %u is not clustered into any topic\n", e);
      return;
    }
    std::printf("item %u: topic #%u, path", e, topic);
    for (uint32_t node : index_.PathToRoot(topic)) std::printf(" #%u", node);
    if (index_.entity_category(e) != shoal::serve::kNoCategoryId) {
      std::printf(", category %u", index_.entity_category(e));
    }
    std::printf("%s\n", DescriptionSuffix(index_, topic).c_str());
  }

  // (C) Topic -> Category: categories associated with a topic.
  void ScenarioCCategories(const std::string& arg) {
    if (!RequireDataset("categories")) return;
    uint32_t id;
    if (!ParseTopicId(arg, &id)) return;
    const auto& topic = model_->taxonomy().topic(id);
    std::printf("categories of topic #%u:\n", id);
    for (const auto& [category, count] : topic.categories) {
      std::printf("  %-20s %zu items\n",
                  dataset_->ontology.node(category).name.c_str(), count);
    }
  }

  // (C) Category -> Item: items of one category inside a topic.
  void ScenarioCItems(const std::string& arg) {
    if (!RequireDataset("items")) return;
    std::istringstream in(arg);
    std::string id_text, category_name;
    in >> id_text >> category_name;
    uint32_t id;
    if (!ParseTopicId(id_text, &id)) return;
    uint32_t category = FindCategory(category_name);
    if (category == shoal::data::kNoCategory) return;
    const auto& topic = model_->taxonomy().topic(id);
    std::printf("items of category '%s' in topic #%u:\n",
                category_name.c_str(), id);
    size_t shown = 0;
    for (uint32_t e : topic.entities) {
      if (dataset_->entities[e].category != category) continue;
      std::printf("  [%u] %s (price %.2f)\n", e,
                  dataset_->entities[e].title.c_str(),
                  dataset_->entities[e].price);
      if (++shown >= 10) break;
    }
    if (shown == 0) std::printf("  (none)\n");
  }

  // (D) Category -> Category: correlated categories (Sec 2.4).
  void ScenarioD(const std::string& category_name) {
    if (!RequireDataset("related")) return;
    uint32_t category = FindCategory(category_name);
    if (category == shoal::data::kNoCategory) return;
    auto related = model_->correlations().Related(category);
    if (related.empty()) {
      std::printf("no categories correlated with '%s'\n",
                  category_name.c_str());
      return;
    }
    std::printf("categories correlated with '%s':\n", category_name.c_str());
    for (const auto& [other, strength] : related) {
      std::printf("  %-20s strength %u\n",
                  dataset_->ontology.node(other).name.c_str(), strength);
    }
  }

  bool RequireDataset(const char* command) {
    if (dataset_ != nullptr && model_ != nullptr) return true;
    std::printf("'%s' needs the synthetic dataset; rerun without --index\n",
                command);
    return false;
  }

  bool ParseTopicId(const std::string& text, uint32_t* id) {
    char* end = nullptr;
    unsigned long value = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || value >= index_.num_topics()) {
      std::printf("expected a topic id in [0, %zu)\n", index_.num_topics());
      return false;
    }
    *id = static_cast<uint32_t>(value);
    return true;
  }

  uint32_t FindCategory(const std::string& name) {
    for (uint32_t c = 0; c < dataset_->ontology.size(); ++c) {
      if (dataset_->ontology.node(c).name == name) return c;
    }
    std::printf("unknown category '%s'\n", name.c_str());
    return shoal::data::kNoCategory;
  }

  const ServingIndex& index_;
  const shoal::data::Dataset* dataset_;
  const shoal::core::ShoalModel* model_;
};

int Run(int argc, char** argv) {
  shoal::util::FlagParser flags;
  flags.AddString("index", "",
                  "explore a compiled serving index file instead of "
                  "building a synthetic taxonomy");
  flags.AddInt64("entities", 1200, "number of item entities");
  flags.AddInt64("seed", 2019, "random seed");
  flags.AddString("cmd", "", "semicolon-separated commands to run and exit");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  std::unique_ptr<ServingIndex> index;
  std::unique_ptr<shoal::data::Dataset> dataset;
  std::unique_ptr<shoal::core::ShoalModel> model;
  if (!flags.GetString("index").empty()) {
    auto loaded =
        shoal::serve::ReadServingIndexFile(flags.GetString("index"));
    SHOAL_CHECK(loaded.ok()) << loaded.status().ToString();
    index = std::make_unique<ServingIndex>(std::move(loaded).value());
  } else {
    shoal::data::DatasetOptions data_options;
    data_options.num_entities =
        static_cast<size_t>(flags.GetInt64("entities"));
    data_options.num_queries = data_options.num_entities;
    data_options.num_clicks = data_options.num_entities * 50;
    data_options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
    auto generated = shoal::data::GenerateDataset(data_options);
    SHOAL_CHECK(generated.ok()) << generated.status().ToString();
    dataset =
        std::make_unique<shoal::data::Dataset>(std::move(generated).value());

    auto bundle = shoal::data::MakeShoalInput(*dataset);
    shoal::core::ShoalOptions options;
    options.correlation.min_strength = 1;
    auto built = shoal::core::BuildShoal(bundle.View(), options);
    SHOAL_CHECK(built.ok()) << built.status().ToString();
    model = std::make_unique<shoal::core::ShoalModel>(
        std::move(built).value());

    // Compile the same artefact shoal_serve loads from disk, so every
    // topic/query walk below exercises the online lookup path.
    const shoal::core::ShoalInput input = bundle.View();
    shoal::core::DescriberInput describe_input;
    describe_input.taxonomy = &model->taxonomy();
    describe_input.query_item_graph = input.query_item_graph;
    describe_input.query_words = input.query_words;
    describe_input.query_texts = input.query_texts;
    describe_input.entity_title_words = input.entity_title_words;
    auto compiled = shoal::serve::CompileServingIndex(
        model->taxonomy(), describe_input, shoal::core::DescriberOptions(),
        input.entity_categories, shoal::serve::CompileOptions());
    SHOAL_CHECK(compiled.ok()) << compiled.status().ToString();
    auto frozen = compiled->Build();
    SHOAL_CHECK(frozen.ok()) << frozen.status().ToString();
    index = std::make_unique<ServingIndex>(std::move(frozen).value());
  }
  std::printf("SHOAL explorer: %zu topics, %zu roots, %zu queries. ",
              index->num_topics(), index->roots().size(),
              index->num_queries());
  Explorer::PrintHelp();

  Explorer explorer(*index, dataset.get(), model.get());
  const std::string& script = flags.GetString("cmd");
  if (!script.empty()) {
    for (const std::string& command : shoal::util::Split(script, ';')) {
      std::printf("> %s\n", std::string(shoal::util::Trim(command)).c_str());
      explorer.Execute(std::string(shoal::util::Trim(command)));
    }
    return 0;
  }
  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    explorer.Execute(line);
    std::printf("> ");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
