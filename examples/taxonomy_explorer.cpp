// Taxonomy explorer: a CLI rendition of the SHOAL demo GUI (Figure 5),
// implementing all four demonstration scenarios of Sec 3.1:
//
//   (A) Query -> Topic          : query <text>
//   (B) Topic -> Sub-topic      : topic <id>
//   (C) Topic -> Category -> Item: categories <id> / items <id> <category>
//   (D) Category -> Category    : related <category name>
//
// Runs an interactive prompt, or executes commands given with --cmd
// (semicolon-separated) and exits — which is how the integration test
// drives it.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using shoal::core::kNoTopic;

class Explorer {
 public:
  Explorer(const shoal::data::Dataset& dataset,
           const shoal::core::ShoalModel& model)
      : dataset_(dataset), model_(model) {}

  void Execute(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) return;
    std::string rest;
    std::getline(in, rest);
    std::string arg(shoal::util::Trim(rest));

    if (command == "query") {
      ScenarioA(arg);
    } else if (command == "topic") {
      ScenarioB(arg);
    } else if (command == "categories") {
      ScenarioCCategories(arg);
    } else if (command == "items") {
      ScenarioCItems(arg);
    } else if (command == "related") {
      ScenarioD(arg);
    } else if (command == "help") {
      PrintHelp();
    } else {
      std::printf("unknown command '%s' (try: help)\n", command.c_str());
    }
  }

  static void PrintHelp() {
    std::printf(
        "commands:\n"
        "  query <text>            (A) find topics matching a query\n"
        "  topic <id>              (B) show a topic and its sub-topics\n"
        "  categories <id>         (C) categories under a topic\n"
        "  items <id> <category>   (C) items of a category in a topic\n"
        "  related <category>      (D) correlated categories\n"
        "  help                    this message\n");
  }

 private:
  // (A) Query -> Topic: star graph of related topics for a keyword query.
  void ScenarioA(const std::string& text) {
    auto hits = model_.SearchTopics(text, 6);
    if (hits.empty()) {
      std::printf("no topics match \"%s\"\n", text.c_str());
      return;
    }
    std::printf("topics for \"%s\":\n", text.c_str());
    for (const auto& hit : hits) {
      const auto& topic = model_.taxonomy().topic(hit.topic);
      std::printf("  #%-5u score %-7s %zu items%s%s\n", hit.topic,
                  shoal::util::FormatDouble(hit.score, 2).c_str(),
                  topic.entities.size(),
                  topic.description.empty() ? "" : "  — ",
                  topic.description.empty()
                      ? ""
                      : topic.description.front().c_str());
    }
  }

  // (B) Topic -> Sub-topic: explore the hierarchy below one topic.
  void ScenarioB(const std::string& arg) {
    uint32_t id;
    if (!ParseTopicId(arg, &id)) return;
    const auto& topic = model_.taxonomy().topic(id);
    std::printf("topic #%u: %zu items, level %u\n", id,
                topic.entities.size(), topic.level);
    for (size_t i = 0; i < topic.description.size(); ++i) {
      std::printf("  repr query %zu: \"%s\"\n", i + 1,
                  topic.description[i].c_str());
    }
    if (topic.children.empty()) {
      std::printf("  (no sub-topics)\n");
    }
    for (uint32_t child : topic.children) {
      const auto& sub = model_.taxonomy().topic(child);
      std::printf("  sub-topic #%-5u %zu items%s%s\n", child,
                  sub.entities.size(),
                  sub.description.empty() ? "" : "  — ",
                  sub.description.empty() ? ""
                                          : sub.description.front().c_str());
    }
  }

  // (C) Topic -> Category: categories associated with a topic.
  void ScenarioCCategories(const std::string& arg) {
    uint32_t id;
    if (!ParseTopicId(arg, &id)) return;
    const auto& topic = model_.taxonomy().topic(id);
    std::printf("categories of topic #%u:\n", id);
    for (const auto& [category, count] : topic.categories) {
      std::printf("  %-20s %zu items\n",
                  dataset_.ontology.node(category).name.c_str(), count);
    }
  }

  // (C) Category -> Item: items of one category inside a topic.
  void ScenarioCItems(const std::string& arg) {
    std::istringstream in(arg);
    std::string id_text, category_name;
    in >> id_text >> category_name;
    uint32_t id;
    if (!ParseTopicId(id_text, &id)) return;
    uint32_t category = FindCategory(category_name);
    if (category == shoal::data::kNoCategory) return;
    const auto& topic = model_.taxonomy().topic(id);
    std::printf("items of category '%s' in topic #%u:\n",
                category_name.c_str(), id);
    size_t shown = 0;
    for (uint32_t e : topic.entities) {
      if (dataset_.entities[e].category != category) continue;
      std::printf("  [%u] %s (price %.2f)\n", e,
                  dataset_.entities[e].title.c_str(),
                  dataset_.entities[e].price);
      if (++shown >= 10) break;
    }
    if (shown == 0) std::printf("  (none)\n");
  }

  // (D) Category -> Category: correlated categories (Sec 2.4).
  void ScenarioD(const std::string& category_name) {
    uint32_t category = FindCategory(category_name);
    if (category == shoal::data::kNoCategory) return;
    auto related = model_.correlations().Related(category);
    if (related.empty()) {
      std::printf("no categories correlated with '%s'\n",
                  category_name.c_str());
      return;
    }
    std::printf("categories correlated with '%s':\n", category_name.c_str());
    for (const auto& [other, strength] : related) {
      std::printf("  %-20s strength %u\n",
                  dataset_.ontology.node(other).name.c_str(), strength);
    }
  }

  bool ParseTopicId(const std::string& text, uint32_t* id) {
    char* end = nullptr;
    unsigned long value = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() ||
        value >= model_.taxonomy().num_topics()) {
      std::printf("expected a topic id in [0, %zu)\n",
                  model_.taxonomy().num_topics());
      return false;
    }
    *id = static_cast<uint32_t>(value);
    return true;
  }

  uint32_t FindCategory(const std::string& name) {
    for (uint32_t c = 0; c < dataset_.ontology.size(); ++c) {
      if (dataset_.ontology.node(c).name == name) return c;
    }
    std::printf("unknown category '%s'\n", name.c_str());
    return shoal::data::kNoCategory;
  }

  const shoal::data::Dataset& dataset_;
  const shoal::core::ShoalModel& model_;
};

int Run(int argc, char** argv) {
  shoal::util::FlagParser flags;
  flags.AddInt64("entities", 1200, "number of item entities");
  flags.AddInt64("seed", 2019, "random seed");
  flags.AddString("cmd", "", "semicolon-separated commands to run and exit");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  shoal::data::DatasetOptions data_options;
  data_options.num_entities = static_cast<size_t>(flags.GetInt64("entities"));
  data_options.num_queries = data_options.num_entities;
  data_options.num_clicks = data_options.num_entities * 50;
  data_options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto dataset = shoal::data::GenerateDataset(data_options);
  SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();

  auto bundle = shoal::data::MakeShoalInput(*dataset);
  shoal::core::ShoalOptions options;
  options.correlation.min_strength = 1;
  auto model = shoal::core::BuildShoal(bundle.View(), options);
  SHOAL_CHECK(model.ok()) << model.status().ToString();
  std::printf("SHOAL explorer: %zu topics under %zu roots. ",
              model->taxonomy().num_topics(),
              model->taxonomy().roots().size());
  Explorer::PrintHelp();

  Explorer explorer(*dataset, *model);
  const std::string& script = flags.GetString("cmd");
  if (!script.empty()) {
    for (const std::string& command : shoal::util::Split(script, ';')) {
      std::printf("> %s\n", std::string(shoal::util::Trim(command)).c_str());
      explorer.Execute(std::string(shoal::util::Trim(command)));
    }
    return 0;
  }
  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    explorer.Execute(line);
    std::printf("> ");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
