// shoal_serve: the online tier. Loads a serving index compiled by
// `shoal_cli build --serving-index-out` and exposes it over HTTP:
//
//   shoal_serve --index taxonomy.idx [--port 8080 --threads 4]
//       serve /v1/query, /v1/topic/<id>, /v1/item/<id>, /healthz,
//       /metrics and /admin/reload until SIGINT/SIGTERM
//   shoal_serve --index taxonomy.idx --selftest-out DIR
//       bind an ephemeral port, exercise every endpoint through a real
//       socket client, write each response body into DIR (for json_lint
//       validation), perform a hot reload, and exit non-zero on any
//       failure — the backbone of the ctest serving smoke
//
// Hot reload: POST /admin/reload re-reads --index, validates it, and
// swaps it in without dropping in-flight requests; --poll-sec N does the
// same automatically whenever the file's mtime changes. A corrupt or
// truncated file is rejected with a clean error and the old index keeps
// serving.

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <system_error>
#include <thread>

#include "obs/metrics.h"
#include "serve/http_server.h"
#include "serve/service.h"
#include "serve/serving_index.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace {

using namespace shoal;

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

// Percent-encodes a query value for use in a request target.
std::string UrlEncode(const std::string& text) {
  std::string out;
  for (unsigned char c : text) {
    const bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out += util::StringPrintf("%%%02X", c);
    }
  }
  return out;
}

// mtime of `path` in nanoseconds, or 0 when it cannot be stat'ed.
// Nanosecond resolution matters: a maintenance daemon republishing
// within the same second as the previous version must still trip the
// poller, and whole-second st_mtime would compare equal.
int64_t FileMtime(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
         static_cast<int64_t>(st.st_mtim.tv_nsec);
}

// Fetches `target` and writes the body to out_dir/name; fails loudly on
// transport errors or a status other than `want_status`.
bool SelftestFetch(const serve::HttpServer& server, const std::string& target,
                   const std::string& out_dir, const std::string& name,
                   int want_status) {
  auto fetched = serve::HttpFetch(server.host(), server.port(), target);
  if (!fetched.ok()) {
    std::fprintf(stderr, "selftest: GET %s failed: %s\n", target.c_str(),
                 fetched.status().ToString().c_str());
    return false;
  }
  if (fetched->status != want_status) {
    std::fprintf(stderr, "selftest: GET %s returned %d, want %d\n%s\n",
                 target.c_str(), fetched->status, want_status,
                 fetched->body.c_str());
    return false;
  }
  const std::string path = out_dir + "/" + name;
  auto written = util::WriteTextFile(path, fetched->body);
  if (!written.ok()) {
    std::fprintf(stderr, "selftest: cannot write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return false;
  }
  std::printf("selftest: GET %-40s -> %d (%zu bytes) %s\n", target.c_str(),
              fetched->status, fetched->body.size(), name.c_str());
  return true;
}

// Drives every endpoint through real sockets, captures the bodies for
// json_lint, and exercises the reload path. Returns a process exit code.
int RunSelftest(serve::ServingService& service, serve::HttpServer& server,
                const serve::ServingIndex& index,
                const std::string& out_dir) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "selftest: cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::string query_target = "/v1/query?q=no+such+query&k=3";
  if (index.num_queries() > 0) {
    query_target =
        "/v1/query?q=" + UrlEncode(std::string(index.query_text(0))) + "&k=3";
  }
  bool ok = true;
  ok = SelftestFetch(server, query_target, out_dir, "query.json", 200) && ok;
  // Second fetch of the same target must hit the response cache and stay
  // byte-identical.
  ok = SelftestFetch(server, query_target, out_dir, "query_cached.json",
                     200) && ok;
  ok = SelftestFetch(server, "/v1/topic/0", out_dir, "topic.json",
                     index.num_topics() > 0 ? 200 : 404) && ok;
  ok = SelftestFetch(server, "/v1/item/0", out_dir, "item.json",
                     index.num_entities() > 0 ? 200 : 404) && ok;
  ok = SelftestFetch(server, "/healthz", out_dir, "healthz.json", 200) && ok;
  ok = SelftestFetch(server, "/readyz", out_dir, "readyz.json", 200) && ok;
  ok = SelftestFetch(server, "/admin/reload", out_dir, "reload.json", 200) &&
       ok;
  ok = SelftestFetch(server, "/v1/query?q=", out_dir, "query_empty.json",
                     200) && ok;
  ok = SelftestFetch(server, "/v1/topic/not-a-number", out_dir,
                     "topic_bad.json", 400) && ok;
  ok = SelftestFetch(server, "/v1/item/999999999", out_dir, "item_miss.json",
                     404) && ok;
  ok = SelftestFetch(server, "/no/such/endpoint", out_dir, "not_found.json",
                     404) && ok;
  // /metrics last so the counters above are visible in the snapshots
  // (both the JSON and the Prometheus rendering).
  ok = SelftestFetch(server, "/metrics", out_dir, "metrics.json", 200) && ok;
  ok = SelftestFetch(server, "/metrics?format=prometheus", out_dir,
                     "metrics.prom", 200) && ok;

  // Every response must carry an X-Request-Id, and a caller-supplied id
  // must be echoed back verbatim.
  auto echoed = serve::HttpFetch(server.host(), server.port(), "/healthz",
                                 {{"X-Request-Id", "selftest-echo-42"}});
  if (!echoed.ok() || echoed->Header("x-request-id") == nullptr ||
      *echoed->Header("x-request-id") != "selftest-echo-42") {
    std::fprintf(stderr, "selftest: X-Request-Id was not echoed back\n");
    ok = false;
  }
  auto generated = serve::HttpFetch(server.host(), server.port(), "/healthz");
  if (!generated.ok() || generated->Header("x-request-id") == nullptr ||
      generated->Header("x-request-id")->empty()) {
    std::fprintf(stderr, "selftest: no generated X-Request-Id header\n");
    ok = false;
  }

  if (service.cache() != nullptr && service.cache()->hits() == 0) {
    std::fprintf(stderr, "selftest: repeated query did not hit the cache\n");
    ok = false;
  }
  std::printf("selftest: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("index", "", "serving index file (required)");
  flags.AddString("host", "127.0.0.1", "bind address");
  flags.AddInt64("port", 8080, "bind port (0 = ephemeral)");
  flags.AddInt64("threads", 4,
                 "epoll reactor threads (0 = hardware concurrency)");
  flags.AddBool("mmap", true,
                "serve the index zero-copy from a read-only mmap "
                "(--mmap=false copies it into anonymous memory)");
  flags.AddBool("verify-crc", true,
                "checksum the index image before serving it");
  flags.AddInt64("cache-entries", 4096,
                 "response cache budget in entries (0 = off)");
  flags.AddInt64("default-k", 5, "/v1/query result count without k=");
  flags.AddInt64("max-k", 100, "largest accepted k");
  flags.AddInt64("poll-sec", 0,
                 "reload automatically when --index changes on disk, "
                 "checking every N seconds (0 = manual /admin/reload only)");
  flags.AddString("access-log", "",
                  "append one JSONL record per request to this file "
                  "('-' = stderr; empty = off)");
  flags.AddString("slow-log", "",
                  "append requests slower than --slow-request-us to this "
                  "file (JSONL; empty = off)");
  flags.AddInt64("slow-request-us", 0,
                 "slow-request threshold in microseconds for --slow-log "
                 "and the serve.requests.slow counter (0 = off)");
  flags.AddString("selftest-out", "",
                  "run the endpoint selftest, write response bodies into "
                  "this directory, and exit (uses an ephemeral port)");
  flags.AddString("log-level", "info",
                  "log verbosity: debug, info, warning, error");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;
  util::LogLevel level = util::LogLevel::kInfo;
  if (!util::ParseLogLevel(flags.GetString("log-level"), &level)) {
    std::fprintf(stderr, "unknown --log-level '%s'\n",
                 flags.GetString("log-level").c_str());
    return 1;
  }
  util::SetLogLevel(level);
  obs::MetricsRegistry::Global().Enable();

  const std::string& index_path = flags.GetString("index");
  if (index_path.empty()) {
    std::fprintf(stderr, "--index is required\n");
    return 1;
  }
  const bool selftest = !flags.GetString("selftest-out").empty();

  serve::LoadOptions load_options;
  load_options.use_mmap = flags.GetBool("mmap");
  load_options.verify_crc = flags.GetBool("verify-crc");
  auto loaded = serve::ReadServingIndexFile(index_path, load_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", index_path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto index =
      std::make_shared<const serve::ServingIndex>(std::move(loaded).value());
  std::printf(
      "loaded index v%llu: %zu topics, %zu entities, %zu queries "
      "(%zu bytes, %s)\n",
      static_cast<unsigned long long>(index->version()), index->num_topics(),
      index->num_entities(), index->num_queries(), index->resident_bytes(),
      index->mmap_backed() ? "mmap" : "copied");

  serve::ServiceOptions service_options;
  service_options.index_path = index_path;
  service_options.load_options = load_options;
  service_options.cache_entries =
      static_cast<size_t>(flags.GetInt64("cache-entries"));
  service_options.default_k =
      static_cast<size_t>(flags.GetInt64("default-k"));
  service_options.max_k = static_cast<size_t>(flags.GetInt64("max-k"));

  // Request logs. The selftest writes an access log next to the response
  // bodies by default so the smoke test can validate the JSONL schema.
  std::string access_log_path = flags.GetString("access-log");
  if (selftest && access_log_path.empty()) {
    access_log_path = flags.GetString("selftest-out") + "/access.log";
    std::error_code ec;
    std::filesystem::create_directories(flags.GetString("selftest-out"), ec);
  }
  std::unique_ptr<serve::AccessLog> access_log;
  if (!access_log_path.empty()) {
    auto opened = serve::AccessLog::Open(access_log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    access_log = std::move(opened).value();
    service_options.access_log = access_log.get();
  }
  std::unique_ptr<serve::AccessLog> slow_log;
  if (!flags.GetString("slow-log").empty()) {
    auto opened = serve::AccessLog::Open(flags.GetString("slow-log"));
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    slow_log = std::move(opened).value();
    service_options.slow_log = slow_log.get();
  }
  service_options.slow_request_us =
      static_cast<double>(flags.GetInt64("slow-request-us"));
  serve::ServingService service(index, service_options);

  serve::HttpServerOptions server_options;
  server_options.host = flags.GetString("host");
  server_options.port =
      selftest ? 0 : static_cast<uint16_t>(flags.GetInt64("port"));
  server_options.threads = static_cast<size_t>(flags.GetInt64("threads"));
  serve::HttpServer server(&service, server_options);
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  if (selftest) {
    const int rc =
        RunSelftest(service, server, *index, flags.GetString("selftest-out"));
    server.Stop();
    return rc;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const int64_t poll_sec = flags.GetInt64("poll-sec");
  int64_t last_mtime = FileMtime(index_path);
  auto last_poll = std::chrono::steady_clock::now();
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (poll_sec <= 0) continue;
    const auto now = std::chrono::steady_clock::now();
    if (now - last_poll < std::chrono::seconds(poll_sec)) continue;
    last_poll = now;
    const int64_t mtime = FileMtime(index_path);
    if (mtime == last_mtime || mtime == 0) continue;
    last_mtime = mtime;
    SHOAL_LOG(kInfo) << index_path << " changed on disk; reloading";
    auto reloaded = service.Reload();
    if (!reloaded.ok()) {
      SHOAL_LOG(kWarning) << "poll reload failed, keeping current index: "
                          << reloaded.ToString();
    }
  }
  std::printf("shutting down\n");
  server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
