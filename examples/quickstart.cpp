// Quickstart: generate a synthetic e-commerce workload, build the full
// SHOAL taxonomy, and print the recovered topic hierarchy with
// descriptions — the end-to-end path of Sec 2.
//
//   ./quickstart --entities=1500 --queries=1200 --clicks=75000

#include <cstdio>

#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using shoal::util::FormatDouble;

int Run(int argc, char** argv) {
  shoal::util::FlagParser flags;
  flags.AddInt64("entities", 1500, "number of item entities");
  flags.AddInt64("queries", 1200, "number of distinct queries");
  flags.AddInt64("clicks", 75000, "click-log events");
  flags.AddInt64("seed", 2019, "random seed");
  flags.AddDouble("alpha", 0.7, "query/content similarity mix (Eq. 3)");
  flags.AddString("candidate-strategy", "exact",
                  "entity-graph candidate generation: 'exact' or 'lsh'");
  flags.AddInt64("lsh-bands",
                 static_cast<int64_t>(shoal::core::MinHashConfig().bands),
                 "LSH bands (candidate-strategy=lsh)");
  flags.AddInt64("lsh-rows",
                 static_cast<int64_t>(shoal::core::MinHashConfig().rows),
                 "MinHash rows per band (candidate-strategy=lsh)");
  flags.AddDouble("threshold", 0.35, "HAC merge threshold");
  flags.AddInt64("threads", 0,
                 "pipeline worker threads (0 = per-stage defaults)");
  flags.AddString("trace-out", "",
                  "write a Chrome trace-event JSON file (Perfetto loadable)");
  flags.AddString("metrics-out", "",
                  "write a metrics + build-stats JSON snapshot");
  flags.AddString("log-level", "info",
                  "log verbosity: debug, info, warning, error");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  shoal::util::LogLevel level = shoal::util::LogLevel::kInfo;
  if (!shoal::util::ParseLogLevel(flags.GetString("log-level"), &level)) {
    std::fprintf(stderr, "unknown --log-level '%s'\n",
                 flags.GetString("log-level").c_str());
    return 1;
  }
  shoal::util::SetLogLevel(level);
  if (!flags.GetString("trace-out").empty()) {
    shoal::obs::Tracer::Global().Enable();
  }
  if (!flags.GetString("metrics-out").empty()) {
    shoal::obs::MetricsRegistry::Global().Enable();
  }

  // 1. Synthetic workload with planted intents (stand-in for the
  //    proprietary Taobao query log).
  shoal::data::DatasetOptions data_options;
  data_options.num_entities = static_cast<size_t>(flags.GetInt64("entities"));
  data_options.num_queries = static_cast<size_t>(flags.GetInt64("queries"));
  data_options.num_clicks = static_cast<size_t>(flags.GetInt64("clicks"));
  data_options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto dataset = shoal::data::GenerateDataset(data_options);
  SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();
  std::printf("dataset: %zu entities, %zu queries, %zu clicks\n",
              dataset->entities.size(), dataset->queries.size(),
              dataset->clicks.size());

  // 2. Seven-day sliding window -> query-item bipartite graph.
  auto bundle = shoal::data::MakeShoalInput(*dataset, /*window_days=*/7.0);
  std::printf("bipartite graph: %zu query-item edges in the 7-day window\n",
              bundle.query_item_graph.num_edges());

  // 3. Full SHOAL pipeline.
  shoal::core::ShoalOptions options;
  options.entity_graph.alpha = flags.GetDouble("alpha");
  const std::string& strategy = flags.GetString("candidate-strategy");
  SHOAL_CHECK(strategy == "exact" || strategy == "lsh")
      << "--candidate-strategy must be 'exact' or 'lsh'";
  if (strategy == "lsh") {
    options.entity_graph.candidate_strategy =
        shoal::core::CandidateStrategy::kMinHashLsh;
  }
  SHOAL_CHECK(flags.GetInt64("lsh-bands") >= 1 &&
              flags.GetInt64("lsh-rows") >= 1)
      << "--lsh-bands and --lsh-rows must be >= 1";
  options.entity_graph.lsh.minhash.bands =
      static_cast<size_t>(flags.GetInt64("lsh-bands"));
  options.entity_graph.lsh.minhash.rows =
      static_cast<size_t>(flags.GetInt64("lsh-rows"));
  options.hac.hac.threshold = flags.GetDouble("threshold");
  options.correlation.min_strength = 1;  // small demo; paper uses 10
  SHOAL_CHECK(flags.GetInt64("threads") >= 0) << "--threads must be >= 0";
  options.num_threads = static_cast<size_t>(flags.GetInt64("threads"));
  auto model = shoal::core::BuildShoal(bundle.View(), options);
  SHOAL_CHECK(model.ok()) << model.status().ToString();

  const auto& stats = model->stats();
  std::printf(
      "pipeline: word2vec %ss | entity graph %ss (%zu edges) | "
      "parallel HAC %ss (%zu merges in %zu rounds)\n",
      FormatDouble(stats.word2vec_seconds, 2).c_str(),
      FormatDouble(stats.entity_graph_seconds, 2).c_str(),
      stats.entity_graph.kept_edges,
      FormatDouble(stats.hac_seconds, 2).c_str(), stats.hac.total_merges,
      stats.hac.rounds);

  // 4. Print the topic hierarchy (largest roots first).
  const auto& taxonomy = model->taxonomy();
  std::printf("\ntaxonomy: %zu topics under %zu root topics\n\n",
              taxonomy.num_topics(), taxonomy.roots().size());
  std::vector<uint32_t> roots = taxonomy.roots();
  std::sort(roots.begin(), roots.end(), [&](uint32_t a, uint32_t b) {
    return taxonomy.topic(a).entities.size() >
           taxonomy.topic(b).entities.size();
  });
  size_t shown = 0;
  for (uint32_t root : roots) {
    if (shown++ >= 8) break;
    const auto& topic = taxonomy.topic(root);
    std::printf("topic #%u  (%zu items, %zu categories)\n", topic.id,
                topic.entities.size(), topic.categories.size());
    if (!topic.description.empty()) {
      std::printf("  described by: ");
      for (size_t i = 0; i < topic.description.size() && i < 3; ++i) {
        std::printf("%s\"%s\"", i > 0 ? ", " : "",
                    topic.description[i].c_str());
      }
      std::printf("\n");
    }
    for (size_t c = 0; c < topic.categories.size() && c < 4; ++c) {
      std::printf(
          "  category: %-18s (%zu items)\n",
          dataset->ontology.node(topic.categories[c].first).name.c_str(),
          topic.categories[c].second);
    }
    size_t sub_shown = 0;
    for (uint32_t child : topic.children) {
      if (sub_shown++ >= 3) break;
      const auto& sub = taxonomy.topic(child);
      std::printf("    sub-topic #%u (%zu items)%s%s\n", sub.id,
                  sub.entities.size(),
                  sub.description.empty() ? "" : " — ",
                  sub.description.empty() ? ""
                                          : sub.description.front().c_str());
    }
  }

  // 5. Query -> topic search (demo scenario A).
  const char* probe = "camping";
  auto hits = model->SearchTopics(probe, 3);
  std::printf("\nquery \"%s\" -> %zu topics:", probe, hits.size());
  for (const auto& hit : hits) {
    std::printf(" #%u(score %s)", hit.topic,
                FormatDouble(hit.score, 2).c_str());
  }
  std::printf("\n");

  // 6. Observability artefacts, when requested.
  const std::string& trace_path = flags.GetString("trace-out");
  if (!trace_path.empty()) {
    auto write = shoal::obs::Tracer::Global().WriteChromeJson(trace_path);
    SHOAL_CHECK(write.ok()) << write.ToString();
    std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
  }
  const std::string& metrics_path = flags.GetString("metrics-out");
  if (!metrics_path.empty()) {
    shoal::util::JsonValue out = shoal::util::JsonValue::Object();
    out.Set("metrics", shoal::obs::MetricsRegistry::Global().ToJson());
    out.Set("build_stats", stats.ToJson());
    auto write = shoal::util::WriteJsonFile(metrics_path, out);
    SHOAL_CHECK(write.ok()) << write.ToString();
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
