// shoal_daemon: the offline maintenance loop. Watches a spool
// directory for arriving day files (see src/daemon/spool.h), runs one
// incremental update cycle per file — apply the click delta to the
// standing entity graph, splice the dirty subtrees of the standing
// dendrogram, re-describe only the touched topics — and publishes each
// result as a versioned serving index through the same atomic-rename
// file shoal_serve hot-reloads.
//
//   shoal_daemon --spool DIR --index taxonomy.idx [--snapshot daemon.snap]
//       watch the spool, one cycle per day file, until SIGINT/SIGTERM
//   shoal_daemon --spool DIR --index taxonomy.idx --once
//       drain every pending day file, then exit (cron-style operation)
//   shoal_daemon --generate-out DIR --days 3 --entities 600
//       write a reproducible multi-day drift workload (catalog + day
//       files + probe_queries.tsv) into DIR — the producer side for
//       the smoke test and for trying the daemon end to end
//
// With --snapshot, the standing window state is checkpointed after
// every cycle; a restarted daemon restores it and resumes at the first
// unconsumed day file instead of rebuilding the window from scratch.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <thread>

#include "daemon/daemon.h"
#include "data/drift_log.h"
#include "obs/metrics.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace {

using namespace shoal;

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

// Writes a drift workload spool: items.tsv + queries.tsv, one clicks
// file per day, and probe_queries.tsv (day<TAB>query_id<TAB>text, one
// query per day that first receives clicks that day) so a smoke test
// can assert that day-N queries resolve after the day-N cycle.
int RunGenerate(const util::FlagParser& flags) {
  data::DriftOptions options;
  options.catalog.num_entities =
      static_cast<size_t>(flags.GetInt64("entities"));
  options.catalog.num_queries = static_cast<size_t>(flags.GetInt64("queries"));
  options.catalog.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  options.num_days = static_cast<size_t>(flags.GetInt64("days"));
  options.background_pairs =
      static_cast<size_t>(flags.GetInt64("background-pairs"));
  options.drift_clicks_per_day =
      static_cast<size_t>(flags.GetInt64("drift-clicks"));

  const std::string& dir = flags.GetString("generate-out");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  auto generated = data::GenerateDriftLog(options);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const data::DriftLog& log = generated.value();

  auto exported = data::ExportDriftCatalog(log, dir);
  if (!exported.ok()) {
    std::fprintf(stderr, "cannot export catalog: %s\n",
                 exported.ToString().c_str());
    return 1;
  }
  std::string probe;
  for (size_t day = 0; day < log.days.size(); ++day) {
    auto status = data::ExportDriftDay(log, day, dir);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot export day %zu: %s\n", day,
                   status.ToString().c_str());
      return 1;
    }
    const data::DriftDay& d = log.days[day];
    uint32_t query = d.born_queries.empty()
                         ? (d.clicks.empty() ? 0 : d.clicks.front().query)
                         : d.born_queries.front();
    probe += util::StringPrintf(
        "%zu\t%u\t%s\n", day, query,
        std::string(log.catalog.queries[query].text).c_str());
    std::printf("day %zu: %zu clicks, %zu born entities, %zu born queries\n",
                day, d.clicks.size(), d.born_entities.size(),
                d.born_queries.size());
  }
  auto wrote = util::WriteTextFile(dir + "/probe_queries.tsv", probe);
  if (!wrote.ok()) {
    std::fprintf(stderr, "cannot write probe_queries.tsv: %s\n",
                 wrote.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu-day drift spool (%zu entities, %zu queries) to %s\n",
              log.days.size(), log.catalog.entities.size(),
              log.catalog.queries.size(), dir.c_str());
  return 0;
}

void PrintReport(const daemon::CycleReport& r) {
  std::printf(
      "cycle %s -> v%llu%s: window=%zud delta=%zu dirty=%.3f "
      "(%zu subtrees, %zu leaves) topics=%zu touched=%zu carried=%zu\n"
      "  %.2fs total: ingest %.2f graph %.2f cluster %.2f describe %.2f "
      "publish %.2f snapshot %.2f\n",
      r.day_file.c_str(), static_cast<unsigned long long>(r.published_version),
      r.full_rebuild ? " (full rebuild)" : "", r.window_days,
      r.delta.delta_entries, r.dirty_fraction, r.splice.dirty_components,
      r.splice.dirty_leaves, r.num_topics, r.touched_topics, r.carried_topics,
      r.total_seconds, r.ingest_seconds, r.graph_seconds, r.cluster_seconds,
      r.describe_seconds, r.publish_seconds, r.snapshot_seconds);
  std::fflush(stdout);
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("spool", "", "spool directory to watch (required)");
  flags.AddString("index", "", "serving index to publish (required)");
  flags.AddString("snapshot", "",
                  "standing-window checkpoint written after every cycle; a "
                  "restarted daemon resumes from it (empty = off)");
  flags.AddInt64("window-days", 7, "days kept in the sliding window");
  flags.AddInt64("threads", 1,
                 "worker threads for delta rescoring and HAC "
                 "(0 = hardware concurrency; results are identical at any "
                 "setting)");
  flags.AddBool("once", false,
                "drain every pending day file and exit instead of watching");
  flags.AddInt64("poll-sec", 2, "spool poll interval while watching");
  flags.AddInt64("max-cycles", 0,
                 "stop after this many cycles in this run (0 = unlimited)");
  flags.AddBool("lsh", true,
                "LSH-assisted candidate discovery for brand-new entities");
  flags.AddString("log-level", "info",
                  "log verbosity: debug, info, warning, error");
  // Workload generator mode (ignores the daemon flags above).
  flags.AddString("generate-out", "",
                  "write a multi-day drift workload spool into this "
                  "directory and exit");
  flags.AddInt64("days", 9, "generator: number of days");
  flags.AddInt64("entities", 2000, "generator: catalog entities");
  flags.AddInt64("queries", 1500, "generator: catalog queries");
  flags.AddInt64("seed", 2019, "generator: RNG seed (fully reproducible)");
  flags.AddInt64("background-pairs", 12000,
                 "generator: stationary (query,item) pairs emitted daily");
  flags.AddInt64("drift-clicks", 4000,
                 "generator: per-day burst clicks on the hot intents");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;
  util::LogLevel level = util::LogLevel::kInfo;
  if (!util::ParseLogLevel(flags.GetString("log-level"), &level)) {
    std::fprintf(stderr, "unknown --log-level '%s'\n",
                 flags.GetString("log-level").c_str());
    return 1;
  }
  util::SetLogLevel(level);

  if (!flags.GetString("generate-out").empty()) return RunGenerate(flags);

  if (flags.GetString("spool").empty() || flags.GetString("index").empty()) {
    std::fprintf(stderr, "--spool and --index are required\n");
    return 1;
  }
  obs::MetricsRegistry::Global().Enable();

  daemon::DaemonOptions options;
  options.spool_dir = flags.GetString("spool");
  options.index_path = flags.GetString("index");
  options.snapshot_path = flags.GetString("snapshot");
  options.window_days = static_cast<size_t>(flags.GetInt64("window-days"));
  options.num_threads = static_cast<size_t>(flags.GetInt64("threads"));
  options.lsh_discovery = flags.GetBool("lsh");

  auto created = daemon::TaxonomyDaemon::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "cannot start daemon: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto daemon = std::move(created).value();
  std::printf("daemon up: %zu entities, %zu queries%s\n",
              daemon->catalog().items.size(), daemon->catalog().queries.size(),
              daemon->restored_from_snapshot()
                  ? util::StringPrintf(
                        " (restored snapshot: %llu cycles done, v%llu "
                        "published)",
                        static_cast<unsigned long long>(daemon->cycles_done()),
                        static_cast<unsigned long long>(
                            daemon->published_version()))
                        .c_str()
                  : "");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const bool once = flags.GetBool("once");
  const int64_t poll_sec = flags.GetInt64("poll-sec");
  const int64_t max_cycles = flags.GetInt64("max-cycles");
  int64_t cycles_this_run = 0;
  while (!g_shutdown.load()) {
    auto ran = daemon->RunOnce();
    if (!ran.ok()) {
      std::fprintf(stderr, "cycle failed: %s\n",
                   ran.status().ToString().c_str());
      return 1;
    }
    if (ran->has_value()) {
      PrintReport(**ran);
      ++cycles_this_run;
      if (max_cycles > 0 && cycles_this_run >= max_cycles) break;
      continue;  // drain the backlog before sleeping
    }
    if (once) break;  // spool drained
    // Idle: poll for the next arriving day file, staying responsive to
    // shutdown signals.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(poll_sec > 0 ? poll_sec : 1);
    while (!g_shutdown.load() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  std::printf("daemon exiting: %lld cycle(s) this run, v%llu published\n",
              static_cast<long long>(cycles_this_run),
              static_cast<unsigned long long>(daemon->published_version()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
