// prom_lint: strict validator for the Prometheus text exposition format
// 0.0.4, the serving-tier sibling of json_lint. The serving smoke test
// scrapes /metrics?format=prometheus and fails the build if the output
// would not be ingestible: bad names, non-cumulative histogram buckets,
// a missing +Inf bucket, or _count disagreeing with the +Inf bucket all
// exit non-zero with the offending line.
//
//   prom_lint metrics.prom [metrics2.prom ...]
//   prom_lint --expect=serve_query_latency_us metrics.prom

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/prometheus_lint.h"
#include "util/tsv.h"

namespace {

int Run(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> expected;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--expect=", 9) == 0) {
      expected.emplace_back(argv[i] + 9);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: prom_lint [--expect=family ...] file.prom ...\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : files) {
    auto text = shoal::util::ReadTextFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   text.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::vector<std::string> families;
    auto linted = shoal::obs::LintPrometheusText(*text, &families);
    if (!linted.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   linted.ToString().c_str());
      ++failures;
      continue;
    }
    bool missing = false;
    for (const std::string& needle : expected) {
      bool found = false;
      for (const std::string& family : families) {
        if (family == needle) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "%s: expected family '%s' not found\n",
                     path.c_str(), needle.c_str());
        missing = true;
      }
    }
    if (missing) {
      ++failures;
      continue;
    }
    std::printf("%s: ok (%zu families)\n", path.c_str(), families.size());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
