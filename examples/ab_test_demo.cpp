// A/B test demo (Sec 3, Figure 4): simulates the online experiment that
// compared ontology-category-matched recommendations (control) with
// SHOAL topic-matched recommendations (treatment) and reports the CTR
// lift. The paper observed +5% CTR over 3M users; here sessions are
// simulated against the planted intent model.
//
//   ./ab_test_demo --sessions=50000

#include <cstdio>

#include "baselines/ontology_recommender.h"
#include "baselines/topic_recommender.h"
#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "eval/ctr_sim.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

int Run(int argc, char** argv) {
  shoal::util::FlagParser flags;
  flags.AddInt64("entities", 2000, "number of item entities");
  flags.AddInt64("sessions", 50000, "simulated user sessions");
  flags.AddInt64("slate", 8, "recommendation slate size (Fig 4 grid)");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  shoal::data::DatasetOptions data_options;
  data_options.num_entities = static_cast<size_t>(flags.GetInt64("entities"));
  data_options.num_queries = data_options.num_entities;
  data_options.num_clicks = data_options.num_entities * 50;
  data_options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto dataset = shoal::data::GenerateDataset(data_options);
  SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();

  auto bundle = shoal::data::MakeShoalInput(*dataset);
  auto model = shoal::core::BuildShoal(bundle.View(),
                                       shoal::core::ShoalOptions{});
  SHOAL_CHECK(model.ok()) << model.status().ToString();

  // Arms.
  shoal::baselines::OntologyRecommender control(dataset->ontology,
                                                bundle.entity_categories);
  // Treatment blends topic matches with the category fallback so slates
  // stay full — the arms differ only in the topic-matched slots.
  shoal::baselines::TopicRecommender treatment(model->taxonomy(), &control);

  // Ground truth for the click model.
  std::vector<uint32_t> entity_intents = dataset->EntityIntentLabels();
  std::vector<uint32_t> intent_roots(dataset->intents.size());
  for (uint32_t i = 0; i < dataset->intents.size(); ++i) {
    intent_roots[i] = dataset->intents.RootOf(i);
  }

  shoal::eval::CtrSimOptions sim_options;
  sim_options.num_sessions = static_cast<size_t>(flags.GetInt64("sessions"));
  sim_options.slate_size = static_cast<size_t>(flags.GetInt64("slate"));
  sim_options.seed = static_cast<uint64_t>(flags.GetInt64("seed")) + 1;
  auto result = shoal::eval::RunCtrSimulation(
      control, treatment, entity_intents, bundle.entity_categories,
      intent_roots, sim_options);
  SHOAL_CHECK(result.ok()) << result.status().ToString();

  std::printf("A/B test over %zu paired sessions (slate size %zu):\n\n",
              sim_options.num_sessions, sim_options.slate_size);
  std::printf("  %-28s impressions %-10llu clicks %-8llu CTR %s\n",
              control.name(),
              static_cast<unsigned long long>(result->control.impressions),
              static_cast<unsigned long long>(result->control.clicks),
              shoal::util::FormatDouble(result->control.ctr(), 4).c_str());
  std::printf("  %-28s impressions %-10llu clicks %-8llu CTR %s\n",
              treatment.name(),
              static_cast<unsigned long long>(result->treatment.impressions),
              static_cast<unsigned long long>(result->treatment.clicks),
              shoal::util::FormatDouble(result->treatment.ctr(), 4).c_str());
  std::printf("\n  CTR lift: %+.2f%%  (paper reports +5%%)\n",
              result->Lift() * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
