// json_lint: strict JSON validator used by the observability smoke test
// (cmake/cli_obs_smoke.cmake) to prove that shoal_cli's --trace-out /
// --metrics-out artefacts parse. Exits 0 iff every argument is a
// well-formed JSON document; optionally asserts a substring is present.
//
//   json_lint file.json [file2.json ...]
//   json_lint --expect=shoal.build trace.json
//   json_lint --jsonl access.log        # every non-empty line parses

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/tsv.h"

namespace {

// Validates a JSONL file: every non-empty line must be a complete JSON
// document. Returns the number of parsed lines, or -1 on failure.
long LintJsonLines(const std::string& path, const std::string& text) {
  long lines = 0;
  size_t start = 0;
  size_t line_no = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;
    auto parsed = shoal::util::JsonValue::Parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_no,
                   parsed.status().ToString().c_str());
      return -1;
    }
    ++lines;
  }
  return lines;
}

int Run(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> expected;
  bool jsonl = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--expect=", 9) == 0) {
      expected.emplace_back(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: json_lint [--jsonl] [--expect=substring ...] "
                 "file.json ...\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : files) {
    auto text = shoal::util::ReadTextFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   text.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (jsonl) {
      const long lines = LintJsonLines(path, *text);
      if (lines < 0) {
        ++failures;
        continue;
      }
      bool line_missing = false;
      for (const std::string& needle : expected) {
        if (text->find(needle) == std::string::npos) {
          std::fprintf(stderr, "%s: expected substring '%s' not found\n",
                       path.c_str(), needle.c_str());
          line_missing = true;
        }
      }
      if (line_missing) {
        ++failures;
        continue;
      }
      std::printf("%s: ok (%ld JSONL lines)\n", path.c_str(), lines);
      continue;
    }
    auto parsed = shoal::util::JsonValue::Parse(*text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      ++failures;
      continue;
    }
    bool missing = false;
    for (const std::string& needle : expected) {
      if (text->find(needle) == std::string::npos) {
        std::fprintf(stderr, "%s: expected substring '%s' not found\n",
                     path.c_str(), needle.c_str());
        missing = true;
      }
    }
    if (missing) {
      ++failures;
      continue;
    }
    std::printf("%s: ok (%zu bytes)\n", path.c_str(), text->size());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
