// Category-to-category recommendation (Sec 2.4): mines correlations
// between ontology categories from the root topics of the extracted
// taxonomy and prints the correlation table plus a quality check against
// the planted ground truth.
//
//   ./category_recommender --entities=2000 --min_strength=2

#include <algorithm>
#include <cstdio>

#include "core/shoal.h"
#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

int Run(int argc, char** argv) {
  shoal::util::FlagParser flags;
  flags.AddInt64("entities", 2000, "number of item entities");
  flags.AddInt64("min_strength", 1, "correlation threshold (paper: 10)");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  shoal::data::DatasetOptions data_options;
  data_options.num_entities = static_cast<size_t>(flags.GetInt64("entities"));
  data_options.num_queries = data_options.num_entities;
  data_options.num_clicks = data_options.num_entities * 50;
  data_options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto dataset = shoal::data::GenerateDataset(data_options);
  SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();

  auto bundle = shoal::data::MakeShoalInput(*dataset);
  shoal::core::ShoalOptions options;
  options.correlation.min_strength =
      static_cast<uint32_t>(flags.GetInt64("min_strength"));
  auto model = shoal::core::BuildShoal(bundle.View(), options);
  SHOAL_CHECK(model.ok()) << model.status().ToString();

  const auto& correlations = model->correlations();
  std::printf("mined %zu correlated category pairs (threshold > %lld)\n\n",
              correlations.pairs().size(),
              static_cast<long long>(flags.GetInt64("min_strength")));

  // Top correlations with ground-truth verdicts.
  size_t shown = 0;
  size_t true_positives = 0;
  for (const auto& pair : correlations.pairs()) {
    bool truly_related = dataset->CategoriesRelated(pair.c1, pair.c2);
    if (truly_related) ++true_positives;
    if (shown < 15) {
      std::printf("  %-18s <-> %-18s strength %-4u %s\n",
                  dataset->ontology.node(pair.c1).name.c_str(),
                  dataset->ontology.node(pair.c2).name.c_str(),
                  pair.strength,
                  truly_related ? "[planted]" : "[spurious]");
      ++shown;
    }
  }
  if (!correlations.pairs().empty()) {
    std::printf(
        "\ncorrelation precision vs planted scenario structure: %s (%zu/%zu)\n",
        shoal::util::FormatDouble(
            static_cast<double>(true_positives) / correlations.pairs().size(),
            3)
            .c_str(),
        true_positives, correlations.pairs().size());
  }

  // Scenario (D) walk: show recommendations for a few categories.
  std::printf("\ncategory -> category recommendations:\n");
  size_t printed = 0;
  for (uint32_t leaf : dataset->ontology.leaves()) {
    auto related = correlations.Related(leaf);
    if (related.empty()) continue;
    std::printf("  %s:", dataset->ontology.node(leaf).name.c_str());
    for (size_t i = 0; i < related.size() && i < 4; ++i) {
      std::printf(" %s(%u)",
                  dataset->ontology.node(related[i].first).name.c_str(),
                  related[i].second);
    }
    std::printf("\n");
    if (++printed >= 6) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
