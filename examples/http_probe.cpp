// http_probe: a tiny assertion-bearing HTTP GET client for the smoke
// tests (cmake scripts cannot speak HTTP to a server they just forked).
// Fetches --target from --host:--port, requires --expect-status and
// every positional argument to appear as a substring of the body, and
// retries until --retries attempts are spent — which doubles as the
// wait-for-ready / wait-for-hot-reload primitive:
//
//   http_probe --port 18973 --target /readyz --retries 60
//       '"ready": true' '"index_version": 3'
//
// On success, optionally writes the body to --out (for json_lint) and
// exits 0; on failure prints the last response and exits 1.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/http_server.h"
#include "util/flags.h"
#include "util/tsv.h"

int main(int argc, char** argv) {
  using namespace shoal;
  util::FlagParser flags;
  flags.AddString("host", "127.0.0.1", "server address");
  flags.AddInt64("port", 8080, "server port");
  flags.AddString("target", "/healthz", "request target (path + query)");
  flags.AddInt64("expect-status", 200, "required HTTP status code");
  flags.AddInt64("retries", 1, "attempts before giving up");
  flags.AddInt64("retry-delay-ms", 500, "pause between attempts");
  flags.AddString("out", "", "write the successful body here (empty = off)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  const std::string& target = flags.GetString("target");
  const int want_status = static_cast<int>(flags.GetInt64("expect-status"));
  const int64_t retries = flags.GetInt64("retries");
  std::string last_error;
  for (int64_t attempt = 0; attempt < retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(flags.GetInt64("retry-delay-ms")));
    }
    auto fetched = serve::HttpFetch(
        flags.GetString("host"),
        static_cast<uint16_t>(flags.GetInt64("port")), target);
    if (!fetched.ok()) {
      last_error = fetched.status().ToString();
      continue;
    }
    if (fetched->status != want_status) {
      last_error = "status " + std::to_string(fetched->status) + " body:\n" +
                   fetched->body;
      continue;
    }
    const std::string* missing = nullptr;
    for (const std::string& needle : flags.positional()) {
      if (fetched->body.find(needle) == std::string::npos) {
        missing = &needle;
        break;
      }
    }
    if (missing != nullptr) {
      last_error = "body lacks '" + *missing + "':\n" + fetched->body;
      continue;
    }
    if (!flags.GetString("out").empty()) {
      auto wrote = util::WriteTextFile(flags.GetString("out"), fetched->body);
      if (!wrote.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n",
                     flags.GetString("out").c_str(),
                     wrote.ToString().c_str());
        return 1;
      }
    }
    std::printf("probe: GET %s -> %d (%zu bytes) ok\n", target.c_str(),
                fetched->status, fetched->body.size());
    return 0;
  }
  std::fprintf(stderr, "probe: GET %s failed after %lld attempt(s): %s\n",
               target.c_str(), static_cast<long long>(retries),
               last_error.c_str());
  return 1;
}
