// shoal_cli: run the SHOAL pipeline over TSV search logs — the
// "bring your own data" path a platform would use in production.
//
//   shoal_cli generate --out log_dir [--entities N --seed S]
//       write a synthetic search log (items/queries/clicks TSVs)
//   shoal_cli build --in log_dir --out taxonomy_dir [--alpha A ...]
//       import the log, build the taxonomy, persist it as TSVs
//   shoal_cli inspect --taxonomy taxonomy_dir [--top K]
//       summarise a persisted taxonomy
//   shoal_cli resume --in log_dir --out taxonomy_dir
//       --checkpoint-dir ckpt_dir
//       continue an interrupted build from its checkpoints; the
//       resulting taxonomy is byte-identical to an uninterrupted build
//
// generate -> build -> inspect round-trips entirely through files, so
// each step can run on a different machine or schedule. `build
// --checkpoint-dir` snapshots the entity graph once and the HAC state
// every --checkpoint-every rounds; after a crash (or kill -9), `resume`
// with the same flags picks up from the newest readable snapshot.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "ckpt/pipeline.h"
#include "core/shoal.h"
#include "core/taxonomy_io.h"
#include "data/dataset.h"
#include "data/log_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serving_index.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using namespace shoal;

// Registers the observability flags shared by subcommands.
void AddObservabilityFlags(util::FlagParser& flags) {
  flags.AddString("trace-out", "",
                  "write a Chrome trace-event JSON file (Perfetto loadable)");
  flags.AddString("metrics-out", "",
                  "write a metrics + build-stats JSON snapshot");
  flags.AddString("log-level", "info",
                  "log verbosity: debug, info, warning, error");
}

// Applies --log-level and turns on the tracer/metrics registry per
// --trace-out / --metrics-out before the pipeline runs. Returns false on
// an unrecognised level.
bool EnableObservability(const util::FlagParser& flags) {
  util::LogLevel level = util::LogLevel::kInfo;
  if (!util::ParseLogLevel(flags.GetString("log-level"), &level)) {
    std::fprintf(stderr, "unknown --log-level '%s'\n",
                 flags.GetString("log-level").c_str());
    return false;
  }
  util::SetLogLevel(level);
  if (!flags.GetString("trace-out").empty()) {
    obs::Tracer::Global().Enable();
  }
  if (!flags.GetString("metrics-out").empty()) {
    obs::MetricsRegistry::Global().Enable();
  }
  return true;
}

// Writes the trace / metrics files requested by flags; the metrics file
// bundles the registry snapshot with the per-build stats (including the
// per-round HAC merge trace) under one object.
int WriteObservability(const util::FlagParser& flags,
                       const core::ShoalBuildStats* build_stats) {
  const std::string& trace_path = flags.GetString("trace-out");
  if (!trace_path.empty()) {
    auto status = obs::Tracer::Global().WriteChromeJson(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote Chrome trace to %s (load in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  const std::string& metrics_path = flags.GetString("metrics-out");
  if (!metrics_path.empty()) {
    util::JsonValue out = util::JsonValue::Object();
    out.Set("metrics", obs::MetricsRegistry::Global().ToJson());
    if (build_stats != nullptr) {
      out.Set("build_stats", build_stats->ToJson());
    }
    auto status = util::WriteJsonFile(metrics_path, out);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write metrics: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  return 0;
}

int Generate(util::FlagParser& flags) {
  data::DatasetOptions options;
  options.num_entities = static_cast<size_t>(flags.GetInt64("entities"));
  options.num_queries = options.num_entities * 3 / 4;
  options.num_clicks = options.num_entities * 50;
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto dataset = data::GenerateDataset(options);
  SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();
  const std::string& dir = flags.GetString("out");
  auto status = data::ExportSearchLog(*dataset, dir);
  SHOAL_CHECK(status.ok()) << status.ToString();
  std::printf("wrote %zu items, %zu queries, %zu clicks to %s\n",
              dataset->entities.size(), dataset->queries.size(),
              dataset->clicks.size(), dir.c_str());
  return 0;
}

// Reads the clustering flags shared by `build` and `resume` into a
// ShoalOptions. Returns false (after printing) on an invalid value.
bool OptionsFromFlags(const util::FlagParser& flags,
                      core::ShoalOptions& options) {
  options.entity_graph.alpha = flags.GetDouble("alpha");
  const std::string& strategy = flags.GetString("candidate-strategy");
  if (strategy == "lsh") {
    options.entity_graph.candidate_strategy =
        core::CandidateStrategy::kMinHashLsh;
  } else if (strategy != "exact") {
    std::fprintf(stderr,
                 "--candidate-strategy must be 'exact' or 'lsh', got '%s'\n",
                 strategy.c_str());
    return false;
  }
  if (flags.GetInt64("lsh-bands") < 1 || flags.GetInt64("lsh-rows") < 1) {
    std::fprintf(stderr, "--lsh-bands and --lsh-rows must be >= 1\n");
    return false;
  }
  options.entity_graph.lsh.minhash.bands =
      static_cast<size_t>(flags.GetInt64("lsh-bands"));
  options.entity_graph.lsh.minhash.rows =
      static_cast<size_t>(flags.GetInt64("lsh-rows"));
  options.hac.hac.threshold = flags.GetDouble("threshold");
  options.correlation.min_strength =
      static_cast<uint32_t>(flags.GetInt64("min_strength"));
  if (flags.GetInt64("threads") < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return false;
  }
  if (flags.GetInt64("checkpoint-every") < 1) {
    std::fprintf(stderr, "--checkpoint-every must be >= 1\n");
    return false;
  }
  options.num_threads = static_cast<size_t>(flags.GetInt64("threads"));
  return true;
}

// Compiles and writes the online serving artefact when
// --serving-index-out is set. Reuses the build's input tensors so the
// serve-time dictionary is interned from exactly the queries the
// pipeline saw.
int MaybeWriteServingIndex(const util::FlagParser& flags,
                           const core::ShoalInput& input,
                           const core::ShoalModel& model) {
  const std::string& index_out = flags.GetString("serving-index-out");
  if (index_out.empty()) return 0;
  core::DescriberInput describe_input;
  describe_input.taxonomy = &model.taxonomy();
  describe_input.query_item_graph = input.query_item_graph;
  describe_input.query_words = input.query_words;
  describe_input.query_texts = input.query_texts;
  describe_input.entity_title_words = input.entity_title_words;
  serve::CompileOptions compile_options;
  compile_options.version =
      static_cast<uint64_t>(flags.GetInt64("serving-index-version"));
  auto index = serve::CompileServingIndex(
      model.taxonomy(), describe_input, core::DescriberOptions(),
      input.entity_categories, compile_options);
  if (!index.ok()) {
    std::fprintf(stderr, "cannot compile serving index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  auto status = serve::WriteServingIndexFile(index_out, *index);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write serving index: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("compiled serving index v%llu (%zu topics, %zu entities, "
              "%zu queries) to %s\n",
              static_cast<unsigned long long>(index->version),
              index->parent.size(), index->entity_topic.size(),
              index->query_text.size(), index_out.c_str());
  return 0;
}

// Prints the model summary and persists the taxonomy + observability
// artefacts; the shared tail of `build` and `resume`.
int FinishBuild(const util::FlagParser& flags,
                const core::ShoalInput& input,
                const core::ShoalModel& model) {
  std::printf("built %zu topics under %zu roots "
              "(%zu entity-graph edges, %zu merges)\n",
              model.taxonomy().num_topics(),
              model.taxonomy().roots().size(),
              model.entity_graph().num_edges(),
              model.stats().hac.total_merges);

  const std::string& out_dir = flags.GetString("out");
  auto status =
      core::SaveTaxonomy(model.taxonomy(), model.correlations(), out_dir);
  SHOAL_CHECK(status.ok()) << status.ToString();
  std::printf("persisted taxonomy to %s\n", out_dir.c_str());
  if (int rc = MaybeWriteServingIndex(flags, input, model); rc != 0) {
    return rc;
  }
  return WriteObservability(flags, &model.stats());
}

int Build(util::FlagParser& flags, bool resume) {
  const std::string& in_dir = flags.GetString("in");
  auto log = data::ImportSearchLog(in_dir);
  if (!log.ok()) {
    std::fprintf(stderr, "cannot import %s: %s\n", in_dir.c_str(),
                 log.status().ToString().c_str());
    return 1;
  }
  std::printf("imported %zu items, %zu queries, %zu clicks (vocab %zu)\n",
              log->items.size(), log->queries.size(), log->clicks.size(),
              log->vocab.size());

  auto bundle =
      data::MakeShoalInputFromLog(*log, flags.GetDouble("window_days"));
  core::ShoalOptions options;
  if (!OptionsFromFlags(flags, options)) return 1;
  const std::string& ckpt_dir = flags.GetString("checkpoint-dir");
  const size_t ckpt_every =
      static_cast<size_t>(flags.GetInt64("checkpoint-every"));

  util::Result<core::ShoalModel> model = [&] {
    if (resume) {
      // ResumeShoal loads the newest readable snapshots, re-attaches
      // checkpointing, and continues the pipeline.
      return ckpt::ResumeShoal(bundle.View(), options, ckpt_dir,
                               ckpt_every);
    }
    if (!ckpt_dir.empty()) {
      auto attached = ckpt::AttachCheckpointing(ckpt_dir, ckpt_every,
                                                /*resume=*/false, options);
      if (!attached.ok()) {
        return util::Result<core::ShoalModel>(attached);
      }
      std::printf("checkpointing to %s every %zu HAC rounds\n",
                  ckpt_dir.c_str(), ckpt_every);
    }
    return core::BuildShoal(bundle.View(), options);
  }();
  if (!model.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  return FinishBuild(flags, bundle.View(), *model);
}

int Inspect(util::FlagParser& flags) {
  const std::string& dir = flags.GetString("taxonomy");
  auto loaded = core::LoadTaxonomy(dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", dir.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto& taxonomy = loaded->taxonomy;
  std::printf("%s: %zu topics, %zu roots, %zu entities, %zu correlations\n",
              dir.c_str(), taxonomy.num_topics(), taxonomy.roots().size(),
              taxonomy.num_entities(), loaded->correlations.pairs().size());

  std::vector<uint32_t> roots = taxonomy.roots();
  std::sort(roots.begin(), roots.end(), [&](uint32_t a, uint32_t b) {
    return taxonomy.topic(a).entities.size() >
           taxonomy.topic(b).entities.size();
  });
  size_t top = static_cast<size_t>(flags.GetInt64("top"));
  for (size_t i = 0; i < roots.size() && i < top; ++i) {
    const auto& topic = taxonomy.topic(roots[i]);
    std::printf("  topic #%-5u %4zu items, %zu sub-topics%s%s\n", topic.id,
                topic.entities.size(), topic.children.size(),
                topic.description.empty() ? "" : "  — ",
                topic.description.empty()
                    ? ""
                    : topic.description.front().c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <generate|build|resume|inspect> [flags]\n"
                 "       %s <command> --help\n",
                 argv[0], argv[0]);
    return 1;
  }
  std::string command = argv[1];
  util::FlagParser flags;
  flags.AddInt64("entities", 2000, "entities for 'generate'");
  flags.AddInt64("seed", 2019, "seed for 'generate'");
  flags.AddString("out", "shoal_out", "output directory");
  flags.AddString("in", "shoal_log", "input log directory for 'build'");
  flags.AddString("taxonomy", "shoal_out",
                  "taxonomy directory for 'inspect'");
  flags.AddDouble("alpha", 0.7, "similarity mix (Eq. 3)");
  flags.AddString("candidate-strategy", "exact",
                  "entity-graph candidate generation: 'exact' (all co-click "
                  "pairs) or 'lsh' (MinHash/LSH, sub-quadratic)");
  flags.AddInt64("lsh-bands",
                 static_cast<int64_t>(core::MinHashConfig().bands),
                 "LSH bands (candidate-strategy=lsh)");
  flags.AddInt64("lsh-rows",
                 static_cast<int64_t>(core::MinHashConfig().rows),
                 "MinHash rows per band (candidate-strategy=lsh)");
  flags.AddDouble("threshold", 0.35, "HAC merge threshold");
  flags.AddDouble("window_days", 7.0, "sliding window length");
  flags.AddInt64("min_strength", 1, "correlation threshold (paper: 10)");
  flags.AddInt64("threads", 0,
                 "pipeline worker threads (0 = per-stage defaults)");
  flags.AddInt64("top", 10, "roots to print for 'inspect'");
  flags.AddString("checkpoint-dir", "",
                  "snapshot directory for crash-safe builds (empty = off; "
                  "required by 'resume')");
  flags.AddInt64("checkpoint-every", 5,
                 "HAC rounds between checkpoints");
  flags.AddString("serving-index-out", "",
                  "also compile the online serving index (empty = off); "
                  "serve it with shoal_serve --index");
  flags.AddInt64("serving-index-version", 1,
                 "version stamped into --serving-index-out");
  AddObservabilityFlags(flags);
  auto status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;
  if (!EnableObservability(flags)) return 1;
  // Arm fault injection from SHOAL_FAULT (CI crash-recovery smoke and
  // local kill-and-resume testing); unset means zero overhead.
  auto fault = util::FaultInjector::Global().ConfigureFromEnv();
  if (!fault.ok()) {
    std::fprintf(stderr, "bad SHOAL_FAULT: %s\n",
                 fault.ToString().c_str());
    return 1;
  }

  if (command == "generate") return Generate(flags);
  if (command == "build") return Build(flags, /*resume=*/false);
  if (command == "resume") {
    if (flags.GetString("checkpoint-dir").empty()) {
      std::fprintf(stderr, "resume requires --checkpoint-dir\n");
      return 1;
    }
    return Build(flags, /*resume=*/true);
  }
  if (command == "inspect") return Inspect(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
